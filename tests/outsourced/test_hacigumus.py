"""Tests for the Hacigümüş outsourced-database model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.outsourced.hacigumus import (
    OutsourcedDatabase,
    RangeBucketMap,
)

KEY = b"0123456789abcdef"


def make_db(num_buckets=8, seed=1) -> OutsourcedDatabase:
    rng = random.Random(seed)
    return OutsourcedDatabase(
        KEY,
        {
            "age": RangeBucketMap(0, 100, num_buckets, rng),
            "salary": RangeBucketMap(0, 10_000, num_buckets, rng),
        },
        rng=rng,
    )


def load_people(db: OutsourcedDatabase, count=200, seed=2):
    rng = random.Random(seed)
    people = [
        {"name": f"p{i}", "age": rng.randrange(0, 101),
         "salary": rng.randrange(0, 10_001)}
        for i in range(count)
    ]
    for person in people:
        db.insert(person)
    return people


class TestRangeBucketMap:
    def test_values_map_into_buckets(self):
        bucket_map = RangeBucketMap(0, 100, 4, random.Random(1))
        ids = {bucket_map.bucket_of(v) for v in range(0, 101)}
        assert ids == set(range(4))

    def test_adjacent_values_usually_share_buckets(self):
        bucket_map = RangeBucketMap(0, 100, 4, random.Random(2))
        changes = sum(
            1
            for v in range(100)
            if bucket_map.bucket_of(v) != bucket_map.bucket_of(v + 1)
        )
        assert changes == 3  # exactly the bucket boundaries

    def test_range_covers_overlapping_buckets(self):
        bucket_map = RangeBucketMap(0, 100, 4, random.Random(3))
        all_buckets = bucket_map.buckets_for_range(0, 100)
        assert sorted(all_buckets) == sorted(range(4))
        narrow = bucket_map.buckets_for_range(10, 12)
        assert len(narrow) in (1, 2)

    def test_ids_are_permuted(self):
        """Opaque ids must not reveal bucket order (over many seeds)."""
        ordered = 0
        for seed in range(20):
            bucket_map = RangeBucketMap(0, 100, 6, random.Random(seed))
            sequence = [bucket_map.bucket_of(v) for v in (5, 25, 45, 65, 85)]
            if sequence == sorted(sequence):
                ordered += 1
        assert ordered < 5  # ordered by chance only

    def test_validation(self):
        with pytest.raises(QueryError):
            RangeBucketMap(10, 10, 2, random.Random(0))
        with pytest.raises(QueryError):
            RangeBucketMap(0, 10, 0, random.Random(0))
        bucket_map = RangeBucketMap(0, 10, 2, random.Random(0))
        with pytest.raises(QueryError):
            bucket_map.bucket_of(11)
        with pytest.raises(QueryError):
            bucket_map.buckets_for_range(5, 2)


class TestOutsourcedQueries:
    def test_range_query_exact_after_postfilter(self):
        db = make_db()
        people = load_people(db)
        rows, cost = db.range_query("age", 30, 40)
        expected = sorted(
            p["name"] for p in people if 30 <= p["age"] <= 40
        )
        assert sorted(row["name"] for row in rows) == expected
        assert cost.rows_transferred >= cost.rows_matching

    def test_false_positives_shrink_with_buckets(self):
        ratios = {}
        for buckets in (2, 8, 32):
            db = make_db(num_buckets=buckets, seed=buckets)
            load_people(db, seed=9)
            _, cost = db.range_query("age", 50, 55)
            ratios[buckets] = cost.false_positive_ratio
        assert ratios[32] < ratios[2]

    def test_multiple_attributes_independent(self):
        db = make_db()
        load_people(db)
        rich, _ = db.range_query("salary", 9000, 10000)
        assert all(9000 <= row["salary"] <= 10000 for row in rich)

    def test_unbucketized_attribute_rejected(self):
        db = make_db()
        with pytest.raises(QueryError, match="not bucketized"):
            db.range_query("name", 0, 1)

    def test_insert_requires_bucketized_attributes(self):
        db = make_db()
        with pytest.raises(QueryError, match="lacks bucketized"):
            db.insert({"name": "x", "age": 30})


class TestServerView:
    def test_server_never_sees_plaintext(self):
        db = make_db()
        load_people(db, count=50)
        for bucket_ids, blob in db.server._rows:
            assert b'"name"' not in blob  # JSON structure is encrypted
            assert set(bucket_ids) == {"age", "salary"}

    def test_server_sees_bucket_histogram_only(self):
        db = make_db(num_buckets=4)
        load_people(db, count=100)
        histogram = db.server.observations.bucket_histogram
        # 4 buckets per attribute, 2 attributes.
        assert len(histogram) <= 8
        assert sum(
            count for (attr, _), count in histogram.items() if attr == "age"
        ) == 100

    def test_query_leak_is_bucket_ids(self):
        db = make_db()
        load_people(db, count=50)
        db.range_query("age", 20, 25)
        assert db.server.observations.queried_buckets  # pattern recorded
        # ...but the true range endpoints never reached the server: only
        # opaque ids did (there is no 20/25 anywhere in observations).
        seen = {
            b for buckets in db.server.observations.queried_buckets
            for b in buckets
        }
        assert seen <= set(range(8))


class TestProperties:
    @given(
        st.integers(0, 100), st.integers(0, 100), st.integers(2, 16),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_any_range_exact(self, a, b, buckets):
        low, high = min(a, b), max(a, b)
        db = make_db(num_buckets=buckets, seed=buckets)
        people = load_people(db, count=60, seed=4)
        rows, _ = db.range_query("age", low, high)
        expected = sorted(
            p["name"] for p in people if low <= p["age"] <= high
        )
        assert sorted(row["name"] for row in rows) == expected
