"""Unit tests for the communication-accounting layer (parties/channels)."""

from dataclasses import dataclass

import pytest

from repro.globalq.messages import EncryptedContribution
from repro.smc.parties import Channel, CommStats, CryptoOps, payload_bytes


class TestPayloadBytes:
    def test_none_is_zero(self):
        assert payload_bytes(None) == 0

    def test_bytes_like(self):
        assert payload_bytes(b"abcd") == 4
        assert payload_bytes(bytearray(b"abc")) == 3
        assert payload_bytes(memoryview(b"ab")) == 2
        assert payload_bytes(b"") == 0

    def test_bool_is_one_byte(self):
        # bool before int: True would otherwise size as a 1-bit integer.
        assert payload_bytes(True) == 1
        assert payload_bytes(False) == 1

    def test_int_sized_by_bit_length(self):
        assert payload_bytes(0) == 1
        assert payload_bytes(255) == 1
        assert payload_bytes(256) == 2
        assert payload_bytes(2**64) == 9
        assert payload_bytes(-300) == 2

    def test_float_is_eight_bytes(self):
        assert payload_bytes(3.14) == 8
        assert payload_bytes(0.0) == 8

    def test_str_utf8_length(self):
        assert payload_bytes("abc") == 3
        assert payload_bytes("é") == 2
        assert payload_bytes("") == 0

    def test_containers_sum_items(self):
        assert payload_bytes([b"ab", b"c"]) == 3
        assert payload_bytes((1.0, 2.0)) == 16
        assert payload_bytes({b"four"}) == 4
        assert payload_bytes(frozenset({b"four"})) == 4
        assert payload_bytes([]) == 0

    def test_dict_sums_keys_and_values(self):
        assert payload_bytes({"ab": 1.0}) == 2 + 8

    def test_nested_containers(self):
        assert payload_bytes([[b"ab"], {"c": [b"d", None]}]) == 4

    def test_dataclass_sums_fields(self):
        contribution = EncryptedContribution(
            blob=b"0123456789", group_tag=b"tag", bucket_id=None
        )
        assert payload_bytes(contribution) == 10 + 3

    def test_dataclass_with_all_fields(self):
        contribution = EncryptedContribution(
            blob=b"0123456789", group_tag=b"tag", bucket_id=7
        )
        assert payload_bytes(contribution) == 10 + 3 + 1

    def test_nested_dataclasses(self):
        @dataclass
        class Pair:
            left: EncryptedContribution
            right: EncryptedContribution

        contribution = EncryptedContribution(blob=b"abcd")
        assert payload_bytes(Pair(contribution, contribution)) == 8

    def test_dataclass_type_is_not_an_instance(self):
        with pytest.raises(TypeError, match="cannot size"):
            payload_bytes(EncryptedContribution)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError, match="cannot size"):
            payload_bytes(object())


class TestCommStats:
    def test_record_accumulates_edges(self):
        stats = CommStats()
        stats.record("a", "b", 10)
        stats.record("a", "b", 5)
        stats.record("b", "a", 1)
        assert stats.messages == 3
        assert stats.bytes == 16
        assert stats.by_edge[("a", "b")] == 15
        assert stats.by_edge[("b", "a")] == 1


class TestChannel:
    def test_send_accounts_and_returns_payload(self):
        channel = Channel()
        payload = {"k": b"value"}
        assert channel.send("a", "b", payload) is payload
        assert channel.stats.messages == 1
        assert channel.stats.bytes == payload_bytes(payload)
        assert channel.transcript == []

    def test_transcript_kept_on_request(self):
        channel = Channel(keep_transcript=True)
        channel.send("a", "b", b"x")
        assert channel.transcript == [("a", "b", b"x")]


class TestCryptoOps:
    def test_addition(self):
        total = CryptoOps(modexps=2, symmetric_ops=3) + CryptoOps(
            modexps=1, symmetric_ops=4
        )
        assert total.modexps == 3
        assert total.symmetric_ops == 7
