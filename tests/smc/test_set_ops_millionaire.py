"""Tests for the set primitives and Yao's millionaires' protocol."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import generate_keypair as paillier_keypair
from repro.crypto.rsa import generate_keypair as rsa_keypair
from repro.smc.millionaire import millionaires
from repro.smc.parties import Channel
from repro.smc.set_ops import (
    make_commutative_keys,
    secure_intersection_size,
    secure_scalar_product,
    secure_set_union,
)

PUB, PRIV = paillier_keypair(bits=256, rng=random.Random(5))
RSA_KEYS = rsa_keypair(bits=128, rng=random.Random(6))


class TestCommutativeCipher:
    def test_layers_commute(self):
        keys = make_commutative_keys(2, random.Random(1), prime_bits=48)
        element = 123456
        ab = keys[1].encrypt(keys[0].encrypt(element))
        ba = keys[0].encrypt(keys[1].encrypt(element))
        assert ab == ba


class TestSecureSetUnion:
    def test_union_of_overlapping_sets(self):
        sets = [{"flu", "cold"}, {"cold", "allergy"}, {"flu"}]
        keys = make_commutative_keys(3, random.Random(2), prime_bits=48)
        result = secure_set_union(sets, keys, Channel())
        assert result.items == {"flu", "cold", "allergy"}

    def test_disjoint_sets(self):
        sets = [{"a"}, {"b"}]
        keys = make_commutative_keys(2, random.Random(3), prime_bits=48)
        assert secure_set_union(sets, keys, Channel()).items == {"a", "b"}

    def test_crypto_cost_counts_layers(self):
        sets = [{"a", "b"}, {"c"}]
        keys = make_commutative_keys(2, random.Random(4), prime_bits=48)
        result = secure_set_union(sets, keys, Channel())
        # 3 items x 2 layers each.
        assert result.crypto.modexps == 6

    def test_key_count_mismatch(self):
        keys = make_commutative_keys(1, random.Random(5), prime_bits=48)
        with pytest.raises(ValueError):
            secure_set_union([{"a"}, {"b"}], keys, Channel())

    @given(
        st.lists(
            st.sets(st.sampled_from("abcdefgh"), max_size=5),
            min_size=2,
            max_size=4,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_property_equals_plain_union(self, sets):
        keys = make_commutative_keys(len(sets), random.Random(6), prime_bits=48)
        result = secure_set_union(sets, keys, Channel())
        assert result.items == set().union(*sets)


class TestIntersectionSize:
    def test_size_only(self):
        sets = [{"a", "b", "c"}, {"b", "c", "d"}, {"c", "b", "x"}]
        keys = make_commutative_keys(3, random.Random(7), prime_bits=48)
        size, _ = secure_intersection_size(sets, keys, Channel())
        assert size == 2

    def test_empty_intersection(self):
        keys = make_commutative_keys(2, random.Random(8), prime_bits=48)
        size, _ = secure_intersection_size([{"a"}, {"b"}], keys, Channel())
        assert size == 0


class TestScalarProduct:
    def test_basic(self):
        value, _ = secure_scalar_product(
            [1, 2, 3], [4, 5, 6], PUB, PRIV, Channel(), random.Random(1)
        )
        assert value == 32

    def test_negative_weights(self):
        value, _ = secure_scalar_product(
            [3, 1], [-2, 5], PUB, PRIV, Channel(), random.Random(2)
        )
        assert value == -1

    def test_empty_vectors(self):
        value, crypto = secure_scalar_product(
            [], [], PUB, PRIV, Channel(), random.Random(3)
        )
        assert value == 0
        assert crypto.modexps == 0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            secure_scalar_product([1], [1, 2], PUB, PRIV, Channel(), random.Random(4))

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=8),
        st.integers(),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_matches_dot(self, a, seed):
        rng = random.Random(seed)
        b = [rng.randrange(0, 50) for _ in a]
        value, _ = secure_scalar_product(a, b, PUB, PRIV, Channel(), rng)
        assert value == sum(x * y for x, y in zip(a, b))


class TestMillionaires:
    @pytest.mark.parametrize(
        "alice,bob,expected",
        [(5, 3, True), (3, 5, False), (4, 4, True), (1, 8, False), (8, 1, True)],
    )
    def test_comparisons(self, alice, bob, expected):
        result = millionaires(
            alice, bob, domain=8, channel=Channel(), rng=random.Random(alice * 10 + bob),
            keypair=RSA_KEYS,
        )
        assert result.alice_at_least_bob is expected

    def test_cost_proportional_to_domain(self):
        """The tutorial's complaint: decryptions == domain size."""
        small = millionaires(2, 3, 8, Channel(), random.Random(1), keypair=RSA_KEYS)
        large = millionaires(2, 3, 64, Channel(), random.Random(1), keypair=RSA_KEYS)
        assert small.decryptions == 8
        assert large.decryptions == 64
        assert large.crypto.modexps > small.crypto.modexps * 6

    def test_out_of_domain_rejected(self):
        with pytest.raises(ValueError):
            millionaires(0, 3, 8, Channel(), random.Random(1), keypair=RSA_KEYS)
        with pytest.raises(ValueError):
            millionaires(3, 9, 8, Channel(), random.Random(1), keypair=RSA_KEYS)

    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=16),
        st.integers(),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_correct_for_all_pairs(self, alice, bob, seed):
        result = millionaires(
            alice, bob, 16, Channel(), random.Random(seed), keypair=RSA_KEYS
        )
        assert result.alice_at_least_bob == (alice >= bob)
