"""Tests for garbled circuits, token-assisted OT and the comparator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.smc.garbled import (
    Circuit,
    Gate,
    comparator_circuit,
    evaluate,
    garble,
    garbled_millionaires,
)
from repro.smc.parties import Channel, CryptoOps


def and_circuit() -> Circuit:
    return Circuit(
        alice_inputs=[0], bob_inputs=[1],
        gates=[Gate("AND", 0, 1, 2)], outputs=[2],
    )


def run_garbled(circuit: Circuit, alice_bits, bob_bits, seed=0) -> list[int]:
    """Garble + evaluate helper (both sides in-process)."""
    crypto = CryptoOps()
    garbled = garble(circuit, random.Random(seed), crypto)
    select = garbled._select
    inputs = {}
    for wire, bit in zip(circuit.alice_inputs, alice_bits):
        inputs[wire] = (garbled.wire_labels[wire][bit], select[wire] ^ bit)
    for wire, bit in zip(circuit.bob_inputs, bob_bits):
        inputs[wire] = (garbled.wire_labels[wire][bit], select[wire] ^ bit)
    outputs = evaluate(garbled, inputs, crypto)
    return [outputs[wire] for wire in circuit.outputs]


class TestGates:
    def test_unknown_gate_rejected(self):
        with pytest.raises(ProtocolError, match="unknown gate"):
            Gate("NOR", 0, 1, 2)

    @pytest.mark.parametrize("op", ["AND", "OR", "XOR", "NAND", "XNOR", "ANDNOT"])
    def test_single_gate_truth_tables(self, op):
        circuit = Circuit(
            alice_inputs=[0], bob_inputs=[1],
            gates=[Gate(op, 0, 1, 2)], outputs=[2],
        )
        for a in (0, 1):
            for b in (0, 1):
                garbled_out = run_garbled(circuit, [a], [b], seed=a * 2 + b)
                assert garbled_out == circuit.evaluate_plain([a], [b])


class TestMultiGateCircuits:
    def test_chained_gates(self):
        # out = (a AND b) XOR a2
        circuit = Circuit(
            alice_inputs=[0, 1], bob_inputs=[2],
            gates=[Gate("AND", 0, 2, 3), Gate("XOR", 3, 1, 4)],
            outputs=[4],
        )
        for a0 in (0, 1):
            for a1 in (0, 1):
                for b in (0, 1):
                    assert run_garbled(circuit, [a0, a1], [b]) == (
                        circuit.evaluate_plain([a0, a1], [b])
                    )

    def test_garbling_randomized_but_result_stable(self):
        circuit = and_circuit()
        for seed in range(5):
            assert run_garbled(circuit, [1], [1], seed=seed) == [1]


class TestComparatorCircuit:
    def test_gate_count_linear_in_bits(self):
        small = comparator_circuit(4)
        large = comparator_circuit(8)
        assert len(large.gates) == len(small.gates) + 4 * 5

    def test_plain_evaluation_exhaustive_4bit(self):
        circuit = comparator_circuit(4)
        for a in range(16):
            for b in range(16):
                a_bits = [(a >> (3 - i)) & 1 for i in range(4)]
                b_bits = [(b >> (3 - i)) & 1 for i in range(4)]
                assert circuit.evaluate_plain(a_bits, b_bits) == [int(a >= b)]

    def test_zero_bits_rejected(self):
        with pytest.raises(ProtocolError):
            comparator_circuit(0)


class TestGarbledMillionaires:
    @pytest.mark.parametrize(
        "alice,bob,expected",
        [(9, 4, True), (4, 9, False), (7, 7, True), (0, 15, False), (15, 0, True)],
    )
    def test_comparisons(self, alice, bob, expected):
        result = garbled_millionaires(
            alice, bob, bits=4, channel=Channel(), rng=random.Random(alice * 16 + bob)
        )
        assert result.alice_at_least_bob is expected

    def test_cost_linear_not_exponential(self):
        """The token-assisted complexity-class gain of the slide."""
        costs = {}
        for bits in (4, 8, 16):
            result = garbled_millionaires(
                2**bits - 1, 2 ** (bits - 1), bits, Channel(), random.Random(1)
            )
            costs[bits] = result.crypto.symmetric_ops
            assert result.crypto.modexps == 0  # symmetric only!
            assert result.ot_transfers == bits
        # Doubling the bits roughly doubles (not squares) the work.
        assert costs[8] < costs[4] * 3
        assert costs[16] < costs[8] * 3

    def test_out_of_range_rejected(self):
        with pytest.raises(ProtocolError):
            garbled_millionaires(16, 3, bits=4, channel=Channel(), rng=random.Random(0))

    def test_ot_choice_validated(self):
        from repro.smc.garbled import TokenAssistedOT

        ot = TokenAssistedOT(Channel(), CryptoOps())
        with pytest.raises(ProtocolError):
            ot.transfer(0, b"a" * 16, b"b" * 16, 2, 0)

    @given(
        st.integers(0, 255), st.integers(0, 255), st.integers(),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_comparison(self, alice, bob, seed):
        result = garbled_millionaires(
            alice, bob, bits=8, channel=Channel(), rng=random.Random(seed)
        )
        assert result.alice_at_least_bob == (alice >= bob)
