"""Tests for privacy-preserving association-rule mining."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smc.association import (
    Rule,
    mine_centralized,
    mine_distributed,
)
from repro.smc.parties import Channel

MARKET = [
    {"bread", "butter"},
    {"bread", "butter", "milk"},
    {"bread", "milk"},
    {"butter", "milk"},
    {"bread", "butter", "jam"},
    {"bread", "butter"},
    {"milk"},
    {"bread", "jam"},
]


class TestCentralized:
    def test_known_rule_found(self):
        rules = mine_centralized(MARKET, min_support=0.3, min_confidence=0.7)
        keys = {rule.key() for rule in rules}
        assert (("butter",), ("bread",)) in keys

    def test_support_and_confidence_values(self):
        rules = mine_centralized(MARKET, min_support=0.3, min_confidence=0.7)
        butter_bread = next(
            rule for rule in rules if rule.key() == (("butter",), ("bread",))
        )
        assert butter_bread.support == pytest.approx(4 / 8)
        assert butter_bread.confidence == pytest.approx(4 / 5)

    def test_thresholds_prune(self):
        none = mine_centralized(MARKET, min_support=0.9, min_confidence=0.9)
        assert none == []

    def test_empty_transactions(self):
        assert mine_centralized([], 0.5, 0.5) == []

    def test_multi_item_antecedents(self):
        # {bread, butter, milk} appears once (support 1/8): admit it.
        rules = mine_centralized(MARKET, min_support=0.12, min_confidence=0.5)
        assert any(len(rule.antecedent) == 2 for rule in rules)


class TestDistributed:
    def split(self, transactions, parts):
        sites = [[] for _ in range(parts)]
        for index, transaction in enumerate(transactions):
            sites[index % parts].append(transaction)
        return sites

    def test_equals_centralized(self):
        central = mine_centralized(MARKET, 0.3, 0.7)
        report = mine_distributed(
            self.split(MARKET, 3), 0.3, 0.7, Channel(), random.Random(1)
        )
        assert [r.key() for r in report.rules] == [r.key() for r in central]
        for mined, reference in zip(report.rules, central):
            assert mined.support == pytest.approx(reference.support)
            assert mined.confidence == pytest.approx(reference.confidence)

    def test_local_counts_never_on_wire(self):
        """Only masked ring values cross the channel, never local counts."""
        channel = Channel(keep_transcript=True)
        sites = self.split(MARKET, 3)
        mine_distributed(sites, 0.3, 0.7, channel, random.Random(2))
        local_counts = set()
        for transactions in sites:
            for itemset in ({"bread"}, {"butter"}, {"bread", "butter"}):
                local_counts.add(
                    sum(1 for t in transactions if itemset <= t)
                )
        wire_values = {
            payload for _, _, payload in channel.transcript
            if isinstance(payload, int)
        }
        # Masked partial sums are ~uniform 64-bit values; tiny local counts
        # appearing verbatim would be a leak.
        assert not (wire_values & local_counts)

    def test_cost_one_secure_sum_per_candidate(self):
        report = mine_distributed(
            self.split(MARKET, 2), 0.3, 0.7, Channel(), random.Random(3)
        )
        assert report.secure_sums > 0
        assert report.comm_messages == report.secure_sums * 2  # ring of 2

    def test_single_site_rejected(self):
        with pytest.raises(ValueError):
            mine_distributed([MARKET], 0.3, 0.7, Channel(), random.Random(0))

    @given(st.integers(2, 4), st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_property_partitioning_invariant(self, parts, seed):
        """However transactions are split, the mined rules are identical."""
        rng = random.Random(seed)
        shuffled = list(MARKET)
        rng.shuffle(shuffled)
        central = mine_centralized(shuffled, 0.25, 0.6)
        report = mine_distributed(
            self.split(shuffled, parts), 0.25, 0.6, Channel(), rng
        )
        assert [r.key() for r in report.rules] == [r.key() for r in central]
