"""Tests for secure sum (ring and Paillier variants) and the channel."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import generate_keypair
from repro.smc.parties import Channel, payload_bytes
from repro.smc.secure_sum import (
    collude_against_site,
    paillier_secure_sum,
    ring_secure_sum,
)

PUB, PRIV = generate_keypair(bits=256, rng=random.Random(99))


class TestChannel:
    def test_bytes_and_messages_counted(self):
        channel = Channel()
        channel.send("a", "b", 255)
        channel.send("b", "c", b"xyz")
        assert channel.stats.messages == 2
        assert channel.stats.bytes == 1 + 3
        assert channel.stats.by_edge[("a", "b")] == 1

    def test_transcript_optional(self):
        channel = Channel(keep_transcript=True)
        channel.send("a", "b", "hello")
        assert channel.transcript == [("a", "b", "hello")]

    def test_payload_sizes(self):
        assert payload_bytes(0) == 1
        assert payload_bytes(2**16) == 3
        assert payload_bytes([1, b"ab", "cd"]) == 1 + 2 + 2
        assert payload_bytes({"k": 1.0}) == 1 + 8
        assert payload_bytes(True) == 1
        with pytest.raises(TypeError):
            payload_bytes(object())


class TestRingSecureSum:
    def test_correct_total(self):
        channel = Channel()
        result = ring_secure_sum([10, 20, 30, 40], channel, random.Random(1))
        assert result.total == 100

    def test_one_message_per_edge_plus_return(self):
        channel = Channel()
        ring_secure_sum([1] * 7, channel, random.Random(2))
        assert channel.stats.messages == 7  # 6 forwards + closing hop

    def test_no_modexp(self):
        result = ring_secure_sum([1, 2], Channel(), random.Random(3))
        assert result.crypto.modexps == 0

    def test_masked_values_on_wire(self):
        """The wire never carries a partial sum in the clear."""
        channel = Channel(keep_transcript=True)
        values = [5, 5, 5]
        ring_secure_sum(values, channel, random.Random(4))
        partials = {5, 10, 15}
        wire_values = {payload for _, _, payload in channel.transcript}
        assert not (wire_values & partials)  # overwhelming probability

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            ring_secure_sum([], Channel(), random.Random(0))
        with pytest.raises(ValueError):
            ring_secure_sum([-1], Channel(), random.Random(0))

    def test_collusion_recovers_target_value(self):
        """The toolkit's honest-majority caveat, demonstrated."""
        values = [11, 22, 33, 44, 55]
        assert collude_against_site(values, target=2) == 33

    def test_collusion_needs_interior_target(self):
        with pytest.raises(ValueError):
            collude_against_site([1, 2, 3], target=0)

    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=25))
    @settings(max_examples=50, deadline=None)
    def test_property_sum(self, values):
        result = ring_secure_sum(values, Channel(), random.Random(7))
        assert result.total == sum(values)


class TestPaillierSecureSum:
    def test_correct_total(self):
        channel = Channel()
        result = paillier_secure_sum(
            [100, 200, 300], PUB, PRIV, channel, random.Random(1)
        )
        assert result.total == 600

    def test_modexp_cost_linear_in_sites(self):
        few = paillier_secure_sum([1] * 3, PUB, PRIV, Channel(), random.Random(2))
        many = paillier_secure_sum([1] * 9, PUB, PRIV, Channel(), random.Random(2))
        assert few.crypto.modexps == 4  # 3 encryptions + 1 decryption
        assert many.crypto.modexps == 10

    def test_ciphertexts_unlinkable(self):
        channel = Channel(keep_transcript=True)
        paillier_secure_sum([7, 7, 7], PUB, PRIV, channel, random.Random(3))
        to_aggregator = [
            payload
            for _, receiver, payload in channel.transcript
            if receiver == "aggregator"
        ]
        assert len(set(to_aggregator)) == 3  # same value, distinct ciphertexts

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paillier_secure_sum([], PUB, PRIV, Channel(), random.Random(0))
