"""Unit tests for the search analyzer."""

from repro.search.analyzer import query_terms, term_frequencies, tokenize


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Doctor's Appointment 2014") == [
            "doctor",
            "s",
            "appointment",
            "2014",
        ]

    def test_removes_stopwords(self):
        assert tokenize("the doctor and the nurse") == ["doctor", "nurse"]

    def test_empty_text(self):
        assert tokenize("") == []
        assert tokenize("the and of") == []

    def test_punctuation_is_separator(self):
        assert tokenize("invoice#42,paid!") == ["invoice", "42", "paid"]


class TestTermFrequencies:
    def test_counts(self):
        tf = term_frequencies("pay pay invoice")
        assert tf == {"pay": 2, "invoice": 1}

    def test_stopwords_not_counted(self):
        assert "the" not in term_frequencies("the pay the")


class TestQueryTerms:
    def test_distinct_in_order(self):
        assert query_terms("doctor invoice doctor") == ["doctor", "invoice"]

    def test_empty_query(self):
        assert query_terms("") == []
