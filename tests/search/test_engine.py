"""Tests for the pipelined embedded search engine and its baseline.

The two load-bearing claims of Part II's first illustration:
1. the pipelined merge returns the same top-N as conventional evaluation;
2. its RAM footprint is one page per query keyword (+ the top-N heap),
   independent of corpus size — while the baseline grows with matches.
"""

import pytest

from repro.errors import RamBudgetExceeded, StorageError, TamperedTokenError
from repro.hardware.flash import FlashGeometry
from repro.hardware.profiles import HardwareProfile, smart_usb_token
from repro.hardware.ram import RamArena
from repro.hardware.token import SecurePortableToken
from repro.search.baseline import RamHungrySearch
from repro.search.engine import EmbeddedSearchEngine
from repro.search.inverted import Posting, SequentialInvertedIndex, pack_posting, unpack_posting
from repro.workloads.documents import DocumentCorpus


def make_token(ram_bytes: int = 64 * 1024) -> SecurePortableToken:
    base = smart_usb_token()
    profile = HardwareProfile(
        name="test-token",
        ram_bytes=ram_bytes,
        cpu_mhz=base.cpu_mhz,
        flash_geometry=FlashGeometry(page_size=512, pages_per_block=16, num_blocks=512),
        flash_cost=base.flash_cost,
        tamper_resistant=True,
    )
    return SecurePortableToken(profile=profile)


@pytest.fixture
def engine() -> EmbeddedSearchEngine:
    return EmbeddedSearchEngine(make_token(), num_buckets=16)


class TestPosting:
    def test_pack_roundtrip(self):
        posting = Posting("doctor", 42, 3.0)
        assert unpack_posting(pack_posting(posting)) == posting

    def test_long_term_rejected(self):
        with pytest.raises(StorageError, match="too long"):
            pack_posting(Posting("x" * 300, 1, 1.0))


class TestInvertedIndex:
    def test_docids_must_increase(self, engine):
        engine.add_document("doctor visit", docid=5)
        with pytest.raises(StorageError, match="not increasing"):
            engine.index.add_document(5, {"x": 1.0})

    def test_document_frequency(self, engine):
        engine.add_document("doctor nurse")
        engine.add_document("doctor doctor lab")
        engine.add_document("nurse")
        assert engine.index.document_frequency("doctor") == 2
        assert engine.index.document_frequency("nurse") == 2
        assert engine.index.document_frequency("absent") == 0

    def test_iter_term_descending(self, engine):
        for _ in range(10):
            engine.add_document("doctor report")
        docids = [p.docid for p in engine.index.iter_term("doctor")]
        assert docids == sorted(docids, reverse=True)

    def test_collisions_filtered(self):
        """With one bucket every term collides; iter_term must still filter."""
        token = make_token()
        index = SequentialInvertedIndex(token.allocator, num_buckets=1)
        index.add_document(0, {"alpha": 1.0, "beta": 2.0})
        index.add_document(1, {"beta": 3.0})
        assert [p.weight for p in index.iter_term("beta")] == [3.0, 2.0]
        assert [p.docid for p in index.iter_term("alpha")] == [0]


class TestSearch:
    def test_single_keyword_ranking(self, engine):
        engine.add_document("doctor")  # tf 1
        engine.add_document("doctor doctor doctor")  # tf 3
        engine.add_document("nurse")
        hits = engine.search("doctor", n=2)
        assert [hit.docid for hit in hits] == [1, 0]
        assert hits[0].score > hits[1].score

    def test_multi_keyword_prefers_docs_with_both(self, engine):
        engine.add_document("doctor invoice")
        engine.add_document("doctor doctor")
        engine.add_document("invoice")
        engine.add_document("unrelated words entirely")
        hits = engine.search("doctor invoice", n=1)
        assert hits[0].docid == 0

    def test_rare_terms_weighted_higher(self, engine):
        # 'rare' appears once, 'common' in every doc.
        engine.add_document("rare common")
        for _ in range(9):
            engine.add_document("common filler text")
        hits = engine.search("rare common", n=10)
        assert hits[0].docid == 0

    def test_no_results_for_absent_terms(self, engine):
        engine.add_document("doctor")
        assert engine.search("zebra") == []

    def test_empty_query_and_empty_index(self, engine):
        assert engine.search("") == []
        assert engine.search("doctor") == []  # nothing indexed yet

    def test_n_limits_results(self, engine):
        for _ in range(20):
            engine.add_document("doctor")
        assert len(engine.search("doctor", n=5)) == 5

    def test_tampered_token_refuses(self, engine):
        engine.add_document("doctor")
        engine.token.tamper()
        with pytest.raises(TamperedTokenError):
            engine.search("doctor")

    def test_ram_budget_enforced_for_wide_queries(self):
        tiny = EmbeddedSearchEngine(make_token(ram_bytes=2048), num_buckets=4)
        tiny.add_document("a1 b2 c3 d4 e5 f6 g7 h8")
        with pytest.raises(RamBudgetExceeded):
            tiny.search("a1 b2 c3 d4 e5 f6 g7 h8", n=10)


class TestAgainstBaseline:
    def test_same_results_as_ram_hungry_baseline(self):
        engine = EmbeddedSearchEngine(make_token(), num_buckets=16)
        for document in DocumentCorpus(seed=3).generate(150, words_per_doc=25):
            engine.add_document(document.text)
        engine.flush()
        baseline = RamHungrySearch(engine.index, RamArena(10**9))
        for query in ["doctor", "invoice payment", "meeting energy doctor"]:
            fast = engine.search(query, n=10)
            slow = baseline.search(query, n=10)
            assert [h.docid for h in fast] == [h.docid for h in slow]
            for f, s in zip(fast, slow):
                assert f.score == pytest.approx(s.score, rel=1e-9)

    def test_pipeline_ram_flat_while_baseline_grows(self):
        """E2's shape: engine RAM is corpus-size independent."""
        peaks_engine, peaks_baseline = [], []
        for num_docs in (50, 300):
            engine = EmbeddedSearchEngine(make_token(), num_buckets=16)
            for document in DocumentCorpus(seed=5).generate(num_docs, 20):
                engine.add_document(document.text)
            engine.flush()
            ram = engine.token.mcu.ram
            ram.reset_high_water()
            engine.search("doctor invoice meeting", n=10)
            peaks_engine.append(ram.high_water)

            baseline_ram = RamArena(10**9)
            RamHungrySearch(engine.index, baseline_ram).search(
                "doctor invoice meeting", n=10
            )
            peaks_baseline.append(baseline_ram.high_water)
        assert peaks_engine[0] == peaks_engine[1]  # flat
        assert peaks_baseline[1] > peaks_baseline[0]  # grows with corpus


class TestConjunctiveSearch:
    def build(self) -> EmbeddedSearchEngine:
        engine = EmbeddedSearchEngine(make_token(), num_buckets=16)
        engine.add_document("doctor invoice")        # 0: both
        engine.add_document("doctor doctor")         # 1: doctor only
        engine.add_document("invoice")               # 2: invoice only
        engine.add_document("doctor invoice doctor") # 3: both
        engine.flush()
        return engine

    def test_only_docs_with_all_keywords(self):
        engine = self.build()
        hits = engine.search("doctor invoice", n=10, require_all=True)
        assert sorted(hit.docid for hit in hits) == [0, 3]

    def test_disjunctive_superset(self):
        engine = self.build()
        or_hits = engine.search("doctor invoice", n=10)
        and_hits = engine.search("doctor invoice", n=10, require_all=True)
        assert {h.docid for h in and_hits} <= {h.docid for h in or_hits}

    def test_absent_keyword_empties_conjunction(self):
        engine = self.build()
        assert engine.search("doctor zebra", n=10, require_all=True) == []
        assert engine.search("doctor zebra", n=10) != []

    def test_matches_baseline(self):
        engine = EmbeddedSearchEngine(make_token(), num_buckets=16)
        for document in DocumentCorpus(seed=8).generate(120, words_per_doc=15):
            engine.add_document(document.text)
        engine.flush()
        baseline = RamHungrySearch(engine.index, RamArena(10**9))
        for query in ("doctor invoice", "meeting agenda doctor"):
            fast = engine.search(query, n=10, require_all=True)
            slow = baseline.search(query, n=10, require_all=True)
            assert [h.docid for h in fast] == [h.docid for h in slow]

    def test_single_keyword_conjunction_is_plain_search(self):
        engine = self.build()
        assert engine.search("doctor", require_all=True) == engine.search(
            "doctor"
        )


class TestPageCachedSearch:
    """The IDF double scan should pay flash IO once with a cache attached."""

    def build_pair(self, cache_pages: int):
        documents = DocumentCorpus(seed=11).generate(150, words_per_doc=20)
        cached = EmbeddedSearchEngine(make_token(), num_buckets=16)
        plain = EmbeddedSearchEngine(make_token(), num_buckets=16)
        for document in documents:
            cached.add_document(document.text)
            plain.add_document(document.text)
        cached.flush()
        plain.flush()
        cached.token.enable_page_cache(cache_pages)
        return cached, plain

    def test_results_identical_and_io_reduced(self):
        cached, plain = self.build_pair(cache_pages=32)
        for query in ("doctor invoice", "meeting agenda", "doctor"):
            assert cached.search(query, n=10) == plain.search(query, n=10)
            cached_stats = cached.last_search_stats
            plain_stats = plain.last_search_stats
            # Second chain scan (the merge pass) is served from RAM.
            assert cached_stats.flash_page_reads < plain_stats.flash_page_reads
            assert cached_stats.cache.hits > 0
            # Uncached token: the default stats are an all-zero CacheStats,
            # readable without a None guard.
            assert plain_stats.cache.lookups == 0

    def test_repeat_query_mostly_hits(self):
        cached, _ = self.build_pair(cache_pages=32)
        cached.search("doctor invoice", n=10)
        cached.search("doctor invoice", n=10)
        repeat = cached.last_search_stats
        assert repeat.cache.misses == 0
        assert repeat.flash_page_reads == 0

    def test_cache_zero_matches_uncached_flash_counts(self):
        cached, plain = self.build_pair(cache_pages=0)
        assert cached.search("doctor invoice", n=10) == plain.search(
            "doctor invoice", n=10
        )
        assert (
            cached.last_search_stats.flash_page_reads
            == plain.last_search_stats.flash_page_reads
        )

    def test_indexing_after_search_invalidates_correctly(self):
        cached, plain = self.build_pair(cache_pages=32)
        cached.search("doctor", n=10)
        for engine in (cached, plain):
            engine.add_document("doctor doctor appointment follow up")
            engine.flush()
        assert cached.search("doctor", n=10) == plain.search("doctor", n=10)
