"""Unit and property tests for backward-chained hash bucket logs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.ram import RamArena
from repro.storage.hashbucket import ChainedBucketLog, bucket_of


def make_allocator(page_size=64, blocks=32) -> BlockAllocator:
    flash = NandFlash(
        FlashGeometry(page_size=page_size, pages_per_block=4, num_blocks=blocks)
    )
    return BlockAllocator(flash)


class TestBucketOf:
    def test_deterministic(self):
        assert bucket_of("database", 16) == bucket_of("database", 16)

    def test_in_range(self):
        for word in ["a", "privacy", "token", "flash"]:
            assert 0 <= bucket_of(word, 7) < 7

    def test_spreads_keywords(self):
        buckets = {bucket_of(f"word{i}", 64) for i in range(200)}
        assert len(buckets) > 40  # decent spread


class TestAppendScan:
    def test_single_bucket_descending_order(self):
        log = ChainedBucketLog(make_allocator(), num_buckets=4)
        for docid in range(20):
            log.append(1, docid.to_bytes(4, "little"))
        log.flush_all()
        seen = [int.from_bytes(entry, "little") for entry in log.iter_bucket(1)]
        assert seen == sorted(seen, reverse=True)
        assert seen == list(range(19, -1, -1))

    def test_staged_entries_visible_before_flush(self):
        log = ChainedBucketLog(make_allocator(), num_buckets=4)
        log.append(0, b"\x01")
        log.append(0, b"\x02")
        assert list(log.iter_bucket(0)) == [b"\x02", b"\x01"]

    def test_buckets_are_isolated(self):
        log = ChainedBucketLog(make_allocator(), num_buckets=3)
        log.append(0, b"zero")
        log.append(2, b"two")
        log.flush_all()
        assert list(log.iter_bucket(0)) == [b"zero"]
        assert list(log.iter_bucket(1)) == []
        assert list(log.iter_bucket(2)) == [b"two"]

    def test_chain_grows_across_pages(self):
        log = ChainedBucketLog(make_allocator(), num_buckets=2)
        for docid in range(40):  # far more than fits one 64 B page
            log.append(0, docid.to_bytes(8, "little"))
        log.flush_all()
        assert log.chain_length(0) > 1
        seen = [int.from_bytes(entry, "little") for entry in log.iter_bucket(0)]
        assert seen == list(range(39, -1, -1))

    def test_entry_count(self):
        log = ChainedBucketLog(make_allocator(), num_buckets=2)
        for i in range(7):
            log.append(i % 2, bytes([i]))
        assert log.entry_count == 7

    def test_bad_bucket_rejected(self):
        log = ChainedBucketLog(make_allocator(), num_buckets=2)
        with pytest.raises(StorageError, match="out of range"):
            log.append(5, b"x")
        with pytest.raises(StorageError, match="out of range"):
            list(log.iter_bucket(-1))

    def test_oversized_entry_rejected(self):
        log = ChainedBucketLog(make_allocator(), num_buckets=1)
        with pytest.raises(StorageError, match="cannot fit"):
            log.append(0, b"z" * 60)

    def test_zero_buckets_rejected(self):
        with pytest.raises(StorageError):
            ChainedBucketLog(make_allocator(), num_buckets=0)


class TestRamAndDrop:
    def test_ram_directory_accounted(self):
        ram = RamArena(4096)
        log = ChainedBucketLog(make_allocator(), num_buckets=8, ram=ram)
        assert ram.in_use == 4 * 8 + 64
        log.drop()
        assert ram.in_use == 0

    def test_drop_resets_state(self):
        log = ChainedBucketLog(make_allocator(), num_buckets=2)
        for i in range(20):
            log.append(0, bytes([i]) * 4)
        log.drop()
        assert log.entry_count == 0
        assert list(log.iter_bucket(0)) == []


class TestProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.binary(min_size=1, max_size=8)),
            max_size=120,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_every_bucket_replays_its_entries_reversed(self, items):
        log = ChainedBucketLog(make_allocator(blocks=64), num_buckets=4)
        per_bucket: dict[int, list[bytes]] = {b: [] for b in range(4)}
        for bucket, entry in items:
            log.append(bucket, entry)
            per_bucket[bucket].append(entry)
        for bucket in range(4):
            assert list(log.iter_bucket(bucket)) == per_bucket[bucket][::-1]
