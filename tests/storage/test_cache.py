"""Unit tests for the RAM-charged LRU page cache."""

import pytest

from repro.errors import RamBudgetExceeded, StorageError
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.ram import RamArena
from repro.storage import pager
from repro.storage.cache import SLOT_OVERHEAD_BYTES, CacheStats, PageCache
from repro.storage.log import PageLog, RecordLog

PAGE_SIZE = 64


@pytest.fixture
def flash() -> NandFlash:
    return NandFlash(
        FlashGeometry(page_size=PAGE_SIZE, pages_per_block=4, num_blocks=16)
    )


def program_pages(flash: NandFlash, count: int, block: int = 0) -> list[int]:
    """Program ``count`` distinct pages and return their page numbers."""
    pages = []
    for i in range(count):
        page_no = flash.geometry.first_page_of(block + i // 4) + i % 4
        flash.program_page(page_no, bytes([i]) * 8)
        pages.append(page_no)
    return pages


class TestHitsMissesEviction:
    def test_miss_then_hit(self, flash):
        (page,) = program_pages(flash, 1)
        cache = PageCache(flash, capacity_pages=4)
        reads_before = flash.stats.page_reads
        assert cache.read_page(page) == bytes([0]) * 8
        assert cache.read_page(page) == bytes([0]) * 8
        assert flash.stats.page_reads == reads_before + 1  # one real IO
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self, flash):
        pages = program_pages(flash, 3)
        cache = PageCache(flash, capacity_pages=2)
        cache.read_page(pages[0])
        cache.read_page(pages[1])
        cache.read_page(pages[0])  # refresh 0 -> LRU victim is 1
        cache.read_page(pages[2])
        assert pages[1] not in cache
        assert pages[0] in cache and pages[2] in cache
        assert cache.stats.evictions == 1

    def test_capacity_zero_is_pure_passthrough(self, flash):
        pages = program_pages(flash, 2)
        baseline = NandFlash(flash.geometry)
        for i, page_no in enumerate(pages):
            baseline.program_page(page_no, bytes([i]) * 8)
        cache = PageCache(flash, capacity_pages=0)
        for _ in range(3):
            for page_no in pages:
                assert cache.read_page(page_no) == baseline.read_page(page_no)
        # Every read reached the chip: FlashStats identical to uncached.
        assert flash.stats.page_reads == baseline.stats.page_reads
        assert cache.stats.hits == 0 and cache.stats.misses == 6
        assert cache.cached_pages == 0


class TestRamCharging:
    def test_capacity_charged_and_freed(self, flash):
        ram = RamArena(1024)
        cache = PageCache(flash, capacity_pages=4, ram=ram)
        assert ram.in_use == 4 * (PAGE_SIZE + SLOT_OVERHEAD_BYTES)
        cache.close()
        assert ram.in_use == 0

    def test_over_budget_rejected(self, flash):
        ram = RamArena(128)
        with pytest.raises(RamBudgetExceeded):
            PageCache(flash, capacity_pages=4, ram=ram)

    def test_zero_capacity_charges_nothing(self, flash):
        ram = RamArena(16)
        PageCache(flash, capacity_pages=0, ram=ram)
        assert ram.in_use == 0


class TestPinning:
    def test_pinned_pages_survive_eviction_pressure(self, flash):
        pages = program_pages(flash, 4)
        cache = PageCache(flash, capacity_pages=2)
        cache.pin(pages[0])
        cache.read_page(pages[1])
        cache.read_page(pages[2])
        cache.read_page(pages[3])
        assert pages[0] in cache
        cache.unpin(pages[0])
        assert cache.stats.pinned_high_water == 1

    def test_all_pinned_reads_through_without_caching(self, flash):
        pages = program_pages(flash, 3)
        cache = PageCache(flash, capacity_pages=2)
        cache.pin(pages[0])
        cache.pin(pages[1])
        assert cache.read_page(pages[2]) == bytes([2]) * 8
        assert pages[2] not in cache  # served, not cached, nothing evicted
        assert cache.stats.evictions == 0

    def test_unpin_without_pin_rejected(self, flash):
        (page,) = program_pages(flash, 1)
        cache = PageCache(flash, capacity_pages=2)
        cache.read_page(page)
        with pytest.raises(StorageError, match="not pinned"):
            cache.unpin(page)

    def test_pins_nest(self, flash):
        (page,) = program_pages(flash, 1)
        cache = PageCache(flash, capacity_pages=2)
        cache.pin(page)
        cache.pin(page)
        cache.unpin(page)
        assert cache.pinned_pages == 1
        cache.unpin(page)
        assert cache.pinned_pages == 0


class TestInvalidation:
    def test_erase_invalidates_cached_pages(self, flash):
        pages = program_pages(flash, 2)
        cache = PageCache(flash, capacity_pages=4)
        for page_no in pages:
            cache.read_page(page_no)
        flash.erase_block(0)
        assert all(page_no not in cache for page_no in pages)
        assert cache.stats.invalidations == 2
        # Reprogram the recycled pages: reads serve the NEW content.
        flash.program_page(pages[0], b"fresh!")
        assert cache.read_page(pages[0]) == b"fresh!"

    def test_program_invalidates_cached_erased_read(self, flash):
        cache = PageCache(flash, capacity_pages=4)
        assert cache.read_page(0) == b""  # erased page cached as empty
        flash.program_page(0, b"written")
        assert cache.read_page(0) == b"written"

    def test_invalidating_pinned_page_is_loud(self, flash):
        program_pages(flash, 1)
        cache = PageCache(flash, capacity_pages=4)
        cache.pin(0)
        with pytest.raises(StorageError, match="while pinned"):
            flash.erase_block(0)

    def test_clear_drops_unpinned_only(self, flash):
        pages = program_pages(flash, 2)
        cache = PageCache(flash, capacity_pages=4)
        cache.read_page(pages[0])
        cache.pin(pages[1])
        cache.clear()
        assert pages[0] not in cache and pages[1] in cache
        cache.unpin(pages[1])

    def test_close_detaches_from_flash(self, flash):
        program_pages(flash, 1)
        cache = PageCache(flash, capacity_pages=4)
        cache.read_page(0)
        cache.close()
        flash.erase_block(0)  # must not raise / touch the closed cache
        assert cache.stats.invalidations == 0


class TestDecodedReads:
    def test_read_records_decodes_once_per_residency(self, flash, monkeypatch):
        allocator = BlockAllocator(flash)
        log = RecordLog(allocator)
        for i in range(3):
            log.append(f"r{i}".encode())
        log.flush()
        cache = PageCache(flash, capacity_pages=4)
        allocator.attach_cache(cache)

        calls = {"n": 0}
        real_unpack = pager.unpack_records

        def counting_unpack(page):
            calls["n"] += 1
            return real_unpack(page)

        monkeypatch.setattr(
            "repro.storage.cache.pager.unpack_records", counting_unpack
        )
        for _ in range(5):
            assert log.read(_addr(0, 1)) == b"r1"
        assert calls["n"] == 1  # hot page decoded exactly once

    def test_stats_delta(self):
        before = CacheStats(hits=2, misses=3, evictions=1, invalidations=0)
        after = CacheStats(
            hits=10, misses=5, evictions=2, invalidations=4, pinned_high_water=3
        )
        delta = after.delta(before)
        assert (delta.hits, delta.misses, delta.evictions) == (8, 2, 1)
        assert delta.invalidations == 4
        assert delta.pinned_high_water == 3  # level, not counter


def _addr(position: int, slot: int):
    from repro.storage.log import RecordAddress

    return RecordAddress(position, slot)


class TestPageLogIntegration:
    def test_log_reads_served_from_cache(self, flash):
        allocator = BlockAllocator(flash)
        cache = PageCache(flash, capacity_pages=8)
        allocator.attach_cache(cache)
        log = PageLog(allocator)
        for i in range(6):
            log.append_page(bytes([i]) * 8)
        reads_before = flash.stats.page_reads
        for _ in range(4):
            for position in range(6):
                assert log.read_page(position) == bytes([position]) * 8
        assert flash.stats.page_reads == reads_before + 6  # 18 hits, 6 misses
        assert cache.stats.hits == 18

    def test_drop_invalidates_via_block_erase(self, flash):
        allocator = BlockAllocator(flash)
        cache = PageCache(flash, capacity_pages=8)
        allocator.attach_cache(cache)
        log = PageLog(allocator, name="victim")
        for i in range(4):
            log.append_page(bytes([i]) * 8)
        for position in range(4):
            log.read_page(position)
        assert cache.cached_pages == 4
        log.drop()
        assert cache.cached_pages == 0
        # A new log recycling the same physical block reads its own data.
        fresh = PageLog(allocator, name="fresh")
        fresh.append_page(b"new content")
        assert fresh.read_page(0) == b"new content"
