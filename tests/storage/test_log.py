"""Unit tests for sequential page/record logs."""

import pytest

from repro.errors import LogSealedError, StorageError
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.ram import RamArena
from repro.storage.log import PageLog, RecordAddress, RecordLog


@pytest.fixture
def allocator() -> BlockAllocator:
    flash = NandFlash(FlashGeometry(page_size=64, pages_per_block=4, num_blocks=16))
    return BlockAllocator(flash)


class TestPageLog:
    def test_append_read_roundtrip(self, allocator):
        log = PageLog(allocator)
        positions = [log.append_page(bytes([i]) * 8) for i in range(6)]
        assert positions == list(range(6))
        assert log.read_page(3) == bytes([3]) * 8

    def test_grows_by_blocks(self, allocator):
        log = PageLog(allocator)
        for i in range(5):  # 4 pages/block -> needs 2 blocks
            log.append_page(b"p")
        assert log.num_blocks == 2
        assert allocator.allocated_blocks == 2

    def test_iter_pages_in_order(self, allocator):
        log = PageLog(allocator)
        for i in range(7):
            log.append_page(bytes([i]))
        assert [page[0] for page in log.iter_pages()] == list(range(7))

    def test_out_of_range_read(self, allocator):
        log = PageLog(allocator)
        with pytest.raises(StorageError, match="out of range"):
            log.read_page(0)

    def test_seal_blocks_appends(self, allocator):
        log = PageLog(allocator)
        log.append_page(b"a")
        log.seal()
        with pytest.raises(LogSealedError):
            log.append_page(b"b")

    def test_drop_reclaims_blocks(self, allocator):
        log = PageLog(allocator)
        for _ in range(5):
            log.append_page(b"x")
        free_before = allocator.free_blocks
        log.drop()
        assert allocator.free_blocks == free_before + 2
        with pytest.raises(StorageError, match="dropped"):
            log.read_page(0)

    def test_writes_are_strictly_sequential(self, allocator):
        """The log never triggers a FlashViolation: it is seq-write by design."""
        log = PageLog(allocator)
        for i in range(40):
            log.append_page(bytes([i]))
        assert allocator.flash.stats.page_programs == 40
        assert allocator.flash.stats.block_erases == 0


class TestRecordLog:
    def test_append_and_read(self, allocator):
        log = RecordLog(allocator)
        addresses = [log.append(f"r{i}".encode()) for i in range(10)]
        for i, address in enumerate(addresses):
            assert log.read(address) == f"r{i}".encode()

    def test_scan_in_append_order(self, allocator):
        log = RecordLog(allocator)
        payloads = [f"rec-{i}".encode() for i in range(25)]
        for payload in payloads:
            log.append(payload)
        assert [record for _, record in log.scan()] == payloads

    def test_addresses_order_like_append_order(self, allocator):
        log = RecordLog(allocator)
        addresses = [log.append(b"x" * 10) for _ in range(30)]
        assert addresses == sorted(addresses)

    def test_buffer_flushes_when_page_full(self, allocator):
        log = RecordLog(allocator)
        # 64 B pages; each 20 B record costs 22 B packed + 2 B header.
        log.append(b"a" * 20)
        log.append(b"b" * 20)
        assert log.page_count == 0  # both fit buffered
        log.append(b"c" * 20)  # would overflow -> first page flushed
        assert log.page_count == 1

    def test_oversized_record_rejected(self, allocator):
        log = RecordLog(allocator)
        with pytest.raises(StorageError, match="cannot fit"):
            log.append(b"z" * 63)

    def test_read_from_buffer_before_flush(self, allocator):
        log = RecordLog(allocator)
        address = log.append(b"pending")
        assert log.read(address) == b"pending"

    def test_missing_record(self, allocator):
        log = RecordLog(allocator)
        log.append(b"only")
        with pytest.raises(StorageError, match="no record"):
            log.read(RecordAddress(position=0, slot=5))

    def test_negative_slot_rejected(self, allocator):
        """slot=-1 must not silently serve the last record of the page."""
        log = RecordLog(allocator)
        for i in range(3):
            log.append(f"r{i}".encode())
        log.flush()
        with pytest.raises(StorageError, match="negative"):
            log.read(RecordAddress(position=0, slot=-1))

    def test_negative_position_rejected(self, allocator):
        log = RecordLog(allocator)
        log.append(b"x")
        log.flush()
        with pytest.raises(StorageError, match="negative"):
            log.read(RecordAddress(position=-1, slot=0))

    def test_negative_slot_in_buffer_rejected(self, allocator):
        log = RecordLog(allocator)
        log.append(b"buffered")
        with pytest.raises(StorageError, match="negative"):
            log.read(RecordAddress(position=0, slot=-2))

    def test_ram_buffer_accounted_and_released(self, allocator):
        ram = RamArena(1024)
        log = RecordLog(allocator, name="t", ram=ram)
        assert ram.in_use == 64  # one page buffer
        log.append(b"x")
        log.seal()
        assert ram.in_use == 0

    def test_scan_pages_excludes_buffer(self, allocator):
        log = RecordLog(allocator)
        for i in range(6):
            log.append(b"a" * 20)
        flushed = sum(len(page) for page in log.scan_pages())
        assert flushed < 6
        log.flush()
        assert sum(len(page) for page in log.scan_pages()) == 6

    def test_len_counts_buffered(self, allocator):
        log = RecordLog(allocator)
        for _ in range(3):
            log.append(b"r")
        assert len(log) == 3
