"""Unit and property tests for Bloom filters (no false negatives, FPR)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.bloom import BloomFilter, optimal_hash_count


class TestBasics:
    def test_added_keys_always_found(self):
        bloom = BloomFilter.for_capacity(100)
        keys = [f"key-{i}".encode() for i in range(100)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_empty_filter_rejects(self):
        bloom = BloomFilter.for_capacity(10)
        assert b"anything" not in bloom
        assert bloom.expected_fpr() == 0.0

    def test_len_counts_adds(self):
        bloom = BloomFilter.for_capacity(10)
        bloom.add(b"a")
        bloom.add(b"a")
        assert len(bloom) == 2

    def test_invalid_params(self):
        with pytest.raises(StorageError):
            BloomFilter(0, 1)
        with pytest.raises(StorageError):
            BloomFilter(8, 0)

    def test_optimal_hash_count(self):
        assert optimal_hash_count(16.0) == 11  # 16 ln2 = 11.09
        assert optimal_hash_count(0.5) == 1  # floor at one hash


class TestFalsePositiveRate:
    def test_measured_fpr_near_analytic(self):
        bits_per_key = 10.0
        bloom = BloomFilter.from_keys(
            [f"member-{i}".encode() for i in range(2000)], bits_per_key
        )
        probes = 20_000
        false_hits = sum(
            1 for i in range(probes) if f"absent-{i}".encode() in bloom
        )
        measured = false_hits / probes
        analytic = bloom.expected_fpr()
        assert measured == pytest.approx(analytic, abs=0.01)

    def test_more_bits_fewer_false_positives(self):
        keys = [f"k{i}".encode() for i in range(500)]
        small = BloomFilter.from_keys(keys, bits_per_key=4.0)
        large = BloomFilter.from_keys(keys, bits_per_key=20.0)
        probes = [f"p{i}".encode() for i in range(5000)]
        fp_small = sum(1 for probe in probes if probe in small)
        fp_large = sum(1 for probe in probes if probe in large)
        assert fp_large < fp_small


class TestSerialization:
    def test_roundtrip_preserves_membership(self):
        bloom = BloomFilter.from_keys([b"x", b"y", b"z"], bits_per_key=12.0)
        clone = BloomFilter.deserialize(bloom.serialize())
        assert b"x" in clone and b"y" in clone and b"z" in clone
        assert len(clone) == 3
        assert clone.serialize() == bloom.serialize()

    def test_truncated_data_rejected(self):
        with pytest.raises(StorageError, match="truncated"):
            BloomFilter.deserialize(b"\x01\x02")

    def test_corrupt_bitmap_length_rejected(self):
        data = BloomFilter.from_keys([b"a"]).serialize()
        with pytest.raises(StorageError, match="does not match"):
            BloomFilter.deserialize(data + b"\x00\x00")

    def test_size_tracks_bits_per_key(self):
        keys = [f"k{i}".encode() for i in range(128)]
        two_bytes_per_key = BloomFilter.from_keys(keys, bits_per_key=16.0)
        # The tutorial quotes ~2 B/key summaries: 16 bits/key + header.
        assert two_bytes_per_key.size_bytes() == pytest.approx(
            2 * len(keys), abs=16
        )


class TestProperties:
    @given(st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_no_false_negatives(self, keys):
        bloom = BloomFilter.from_keys(keys, bits_per_key=8.0)
        assert all(key in bloom for key in keys)

    @given(
        st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=50),
        st.floats(min_value=2.0, max_value=24.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_serialization_roundtrip(self, keys, bits_per_key):
        bloom = BloomFilter.from_keys(keys, bits_per_key)
        clone = BloomFilter.deserialize(bloom.serialize())
        assert all(key in clone for key in keys)
        assert clone.num_bits == bloom.num_bits
        assert clone.num_hashes == bloom.num_hashes
