"""Tests for the PDS document store: log-backed reads + deserialization cache."""

import pytest

from repro.pds import server as server_module
from repro.pds.datamodel import PersonalDocument, bill, medical_note
from repro.pds.server import PersonalDataServer


@pytest.fixture
def pds() -> PersonalDataServer:
    server = PersonalDataServer(owner="bob")
    server.ingest_all(
        [
            medical_note("annual checkup fine", "healthy"),
            bill("water invoice april", 30.0, "veolia"),
            PersonalDocument(kind="email", text="picnic saturday plan"),
        ]
    )
    return server


class TestDeserializationCache:
    def test_hot_get_does_not_json_roundtrip(self, pds, monkeypatch):
        doc_id = pds.documents_of_kind("bill")[0].doc_id
        calls = {"n": 0}
        real = server_module._deserialize_document

        def counting(data):
            calls["n"] += 1
            return real(data)

        monkeypatch.setattr(server_module, "_deserialize_document", counting)
        for _ in range(5):
            assert pds.read(pds.owner, doc_id).kind == "bill"
        assert calls["n"] == 0  # ingested docs are cached from the start

    def test_evicted_documents_reload_from_log(self, pds, monkeypatch):
        monkeypatch.setattr(server_module, "DOC_CACHE_CAPACITY", 1)
        extra = [
            PersonalDocument(kind="note", text=f"note number {i}")
            for i in range(4)
        ]
        ids = pds.ingest_all(extra)
        # Capacity 1: earlier documents were evicted; reads must rebuild
        # identical documents from the log bytes.
        for i, doc_id in enumerate(ids):
            document = pds.read(pds.owner, doc_id)
            assert document.text == f"note number {i}"
            assert document.doc_id == doc_id
        assert len(pds._doc_cache) == 1

    def test_reload_preserves_attributes(self, pds, monkeypatch):
        monkeypatch.setattr(server_module, "DOC_CACHE_CAPACITY", 1)
        original = pds.documents_of_kind("bill")[0]
        pds.ingest(PersonalDocument(kind="filler", text="evict the bill"))
        reloaded = pds.read(pds.owner, original.doc_id)
        assert reloaded == original


class TestForget:
    def test_forget_removes_document(self, pds):
        doc_id = pds.documents_of_kind("email")[0].doc_id
        count_before = pds.document_count
        pds.forget(doc_id)
        assert pds.document_count == count_before - 1
        with pytest.raises(KeyError):
            pds.read(pds.owner, doc_id)

    def test_forget_unknown_rejected(self, pds):
        with pytest.raises(KeyError):
            pds.forget(999_999)

    def test_forgotten_document_never_surfaces_in_search(self, pds):
        doc_id = pds.documents_of_kind("email")[0].doc_id
        assert any(
            document.doc_id == doc_id
            for _, document in pds.search(pds.owner, "picnic saturday")
        )
        pds.forget(doc_id)
        assert not any(
            document.doc_id == doc_id
            for _, document in pds.search(pds.owner, "picnic saturday")
        )

    def test_forget_is_audited(self, pds):
        doc_id = pds.documents_of_kind("bill")[0].doc_id
        pds.forget(doc_id)
        entries = [entry for entry in pds.audit.entries() if entry.action == "forget"]
        assert entries and entries[-1].target == f"doc:{doc_id}"
