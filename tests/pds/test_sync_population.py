"""Tests for disconnected sync and full-PDS populations."""

import random

import pytest

from repro.errors import ProtocolError
from repro.globalq.protocol import TokenFleet
from repro.globalq.queries import AggregateQuery, plaintext_answer
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.pds.acl import AccessRule, PrivacyPolicy, Subject
from repro.pds.datamodel import medical_note
from repro.pds.population import PdsPopulation
from repro.pds.sync import ReplicaState, SmartBadge, badge_sync

QUERIER = Subject("insee", "querier")


class TestReplicaState:
    def test_local_counters_monotonic(self):
        replica = ReplicaState("home")
        first = replica.add_local("patient", medical_note("a", "flu"))
        second = replica.add_local("patient", medical_note("b", "flu"))
        assert (first.counter, second.counter) == (0, 1)

    def test_integrate_idempotent(self):
        replica = ReplicaState("central")
        stamped = ReplicaState("home").add_local("p", medical_note("a", "flu"))
        assert replica.integrate(stamped)
        assert not replica.integrate(stamped)
        assert len(replica) == 1

    def test_missing_from_vector(self):
        replica = ReplicaState("home")
        for i in range(4):
            replica.add_local("p", medical_note(f"n{i}", "flu"))
        missing = replica.missing_from({"p": 1})
        assert [s.counter for s in missing] == [2, 3]


class TestSmartBadgeSync:
    def test_round_trip_converges(self):
        fleet = TokenFleet(seed=1)
        home, central = ReplicaState("home"), ReplicaState("central")
        for i in range(3):
            home.add_local("patient", medical_note(f"home-{i}", "flu"))
        for i in range(2):
            central.add_local("hospital", medical_note(f"lab-{i}", "flu"))
        to_central, to_home = badge_sync(fleet, home, central)
        assert (to_central, to_home) == (3, 2)
        assert home.converged_with(central)

    def test_no_data_reentered_on_second_sync(self):
        fleet = TokenFleet(seed=2)
        home, central = ReplicaState("home"), ReplicaState("central")
        home.add_local("patient", medical_note("x", "flu"))
        badge_sync(fleet, home, central)
        to_central, to_home = badge_sync(fleet, home, central)
        assert (to_central, to_home) == (0, 0)

    def test_three_way_convergence_via_central(self):
        """Practitioner badges hop home -> central -> other home."""
        fleet = TokenFleet(seed=3)
        home_a, central, home_b = (
            ReplicaState("a"), ReplicaState("central"), ReplicaState("b"),
        )
        home_a.add_local("doctor", medical_note("visit-a", "flu"))
        home_b.add_local("nurse", medical_note("visit-b", "flu"))
        badge_sync(fleet, home_a, central)
        badge_sync(fleet, home_b, central)
        badge_sync(fleet, home_a, central)
        assert home_a.converged_with(central)
        assert len(home_a) == 2

    def test_badge_carries_ciphertext(self):
        fleet = TokenFleet(seed=4)
        home = ReplicaState("home")
        home.add_local("patient", medical_note("secret diagnosis", "flu"))
        badge = SmartBadge(fleet)
        badge.load_delta(home, {})
        assert badge.carried_documents == 1
        # The sealed blob must not contain the plaintext.
        assert b"secret diagnosis" not in badge._sealed

    def test_empty_badge_refuses_delivery(self):
        badge = SmartBadge(TokenFleet(seed=5))
        with pytest.raises(ProtocolError, match="empty"):
            badge.deliver(ReplicaState("x"))


class TestPdsPopulation:
    def test_population_builds_full_servers(self):
        population = PdsPopulation(12, seed=5)
        assert len(population) == 12
        assert all(server.document_count >= 2 for server in population.servers)

    def test_global_query_through_policies(self):
        """End-to-end Part I + III: policies filter, protocol aggregates."""
        population = PdsPopulation(25, seed=6)
        nodes = population.nodes_for(QUERIER)
        query = AggregateQuery.count(
            group_by="city", where=(("kind", "profile"),)
        )
        report = SecureAggregationProtocol(
            population.fleet, rng=random.Random(1)
        ).run(nodes, query)
        assert sum(report.result.values()) == 25

    def test_restrictive_policies_shrink_contributions(self):
        def energy_only() -> PrivacyPolicy:
            return PrivacyPolicy(
                [AccessRule(role="querier", action="aggregate", kind="energy")]
            )

        open_pop = PdsPopulation(10, seed=7)
        closed_pop = PdsPopulation(10, seed=7, policy_factory=energy_only)
        open_records = sum(len(n.records) for n in open_pop.nodes_for(QUERIER))
        closed_records = sum(
            len(n.records) for n in closed_pop.nodes_for(QUERIER)
        )
        assert closed_records < open_records

    def test_aggregation_is_audited_on_every_server(self):
        population = PdsPopulation(5, seed=8)
        population.nodes_for(QUERIER)
        for server in population.servers:
            entries = server.audit.entries()
            assert entries and entries[-1].action == "aggregate"
