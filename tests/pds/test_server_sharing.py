"""Tests for the PersonalDataServer and secure sharing."""

import pytest

from repro.errors import AccessDenied
from repro.globalq.protocol import TokenFleet
from repro.pds.acl import AccessRule, PrivacyPolicy, Subject
from repro.pds.datamodel import PersonalDocument, bill, energy_reading, medical_note
from repro.pds.server import PersonalDataServer
from repro.pds.sharing import (
    CertificationAuthority,
    ShareReader,
    UsagePolicy,
    create_share,
)

DOCTOR = Subject("dr-b", "doctor")
FAMILY = Subject("mom", "family")
QUERIER = Subject("insee", "querier")


@pytest.fixture
def pds() -> PersonalDataServer:
    server = PersonalDataServer(owner="alice")
    server.ingest_all(
        [
            medical_note("blood pressure checkup normal", "healthy"),
            medical_note("flu diagnosis prescribed rest", "flu"),
            bill("electricity invoice march", 84.5, "edf"),
            energy_reading(kwh=320, month=3),
            PersonalDocument(kind="email", text="meeting agenda project review"),
        ]
    )
    return server


class TestIngestAndRead:
    def test_document_count(self, pds):
        assert pds.document_count == 5

    def test_owner_reads_everything(self, pds):
        for document in pds.documents_of_kind("bill"):
            assert pds.read(pds.owner, document.doc_id).kind == "bill"

    def test_doctor_reads_medical_only(self, pds):
        medical = pds.documents_of_kind("medical")[0]
        email = pds.documents_of_kind("email")[0]
        assert pds.read(DOCTOR, medical.doc_id).kind == "medical"
        with pytest.raises(AccessDenied):
            pds.read(DOCTOR, email.doc_id)

    def test_unknown_doc(self, pds):
        with pytest.raises(KeyError):
            pds.read(pds.owner, 10**9)

    def test_reads_are_audited_even_when_denied(self, pds):
        email = pds.documents_of_kind("email")[0]
        before = pds.audit.count
        with pytest.raises(AccessDenied):
            pds.read(DOCTOR, email.doc_id)
        assert pds.audit.count == before + 1
        assert pds.audit.entries()[-1].allowed is False
        assert pds.audit.verify_chain()


class TestGuardedSearch:
    def test_owner_search_finds_documents(self, pds):
        results = pds.search(pds.owner, "flu diagnosis")
        assert results
        assert results[0][1].kind == "medical"

    def test_doctor_search_sees_only_medical(self, pds):
        results = pds.search(DOCTOR, "invoice flu meeting")
        assert results
        assert all(document.kind == "medical" for _, document in results)

    def test_family_blind_to_medical(self, pds):
        results = pds.search(FAMILY, "flu diagnosis")
        assert results == []


class TestAggregationBridge:
    def test_querier_gets_flat_records(self, pds):
        records = pds.records_for_aggregation(QUERIER)
        assert len(records) == 5
        kinds = {record["kind"] for record in records}
        assert "medical" in kinds and "energy" in kinds

    def test_restrictive_policy_filters_contributions(self):
        policy = PrivacyPolicy(
            [AccessRule(role="querier", action="aggregate", kind="energy")]
        )
        server = PersonalDataServer(owner="bob", policy=policy)
        server.ingest_all(
            [medical_note("x", "flu"), energy_reading(kwh=100, month=1)]
        )
        records = server.records_for_aggregation(QUERIER)
        assert [record["kind"] for record in records] == ["energy"]


class TestSecureSharing:
    def make_reader(self, fleet, authority, role="doctor", expires=100):
        credential = authority.issue(Subject("dr-b", role), expires_at=expires)
        return ShareReader(fleet, authority, credential)

    def test_share_and_open(self, pds):
        fleet = TokenFleet(seed=1)
        authority = CertificationAuthority(fleet)
        medical = pds.documents_of_kind("medical")
        envelope = create_share(
            pds, fleet, [d.doc_id for d in medical], "doctor", UsagePolicy(max_reads=2)
        )
        reader = self.make_reader(fleet, authority)
        documents = reader.open(envelope, now=0)
        assert len(documents) == 2
        assert {d.kind for d in documents} == {"medical"}

    def test_read_budget_enforced(self, pds):
        fleet = TokenFleet(seed=2)
        authority = CertificationAuthority(fleet)
        doc_id = pds.documents_of_kind("bill")[0].doc_id
        envelope = create_share(
            pds, fleet, [doc_id], "doctor", UsagePolicy(max_reads=1)
        )
        reader = self.make_reader(fleet, authority)
        reader.open(envelope, now=0)
        with pytest.raises(AccessDenied, match="budget exhausted"):
            reader.open(envelope, now=0)

    def test_expiry_enforced(self, pds):
        fleet = TokenFleet(seed=3)
        authority = CertificationAuthority(fleet)
        doc_id = pds.documents_of_kind("bill")[0].doc_id
        envelope = create_share(
            pds, fleet, [doc_id], "doctor", UsagePolicy(max_reads=5, expires_at=10)
        )
        reader = self.make_reader(fleet, authority)
        with pytest.raises(AccessDenied, match="expired"):
            reader.open(envelope, now=11)

    def test_wrong_role_rejected(self, pds):
        fleet = TokenFleet(seed=4)
        authority = CertificationAuthority(fleet)
        doc_id = pds.documents_of_kind("bill")[0].doc_id
        envelope = create_share(pds, fleet, [doc_id], "doctor", UsagePolicy())
        family_reader = self.make_reader(fleet, authority, role="family")
        with pytest.raises(AccessDenied, match="role"):
            family_reader.open(envelope, now=0)

    def test_expired_credential_rejected(self, pds):
        fleet = TokenFleet(seed=5)
        authority = CertificationAuthority(fleet)
        doc_id = pds.documents_of_kind("bill")[0].doc_id
        envelope = create_share(pds, fleet, [doc_id], "doctor", UsagePolicy())
        reader = self.make_reader(fleet, authority, expires=5)
        with pytest.raises(AccessDenied, match="credential"):
            reader.open(envelope, now=50)

    def test_forged_credential_rejected(self, pds):
        fleet = TokenFleet(seed=6)
        authority = CertificationAuthority(fleet)
        credential = authority.issue(Subject("mallory", "doctor"), expires_at=100)
        credential.proof = b"\x00" * 32
        reader = ShareReader(fleet, authority, credential)
        doc_id = pds.documents_of_kind("bill")[0].doc_id
        envelope = create_share(pds, fleet, [doc_id], "doctor", UsagePolicy())
        with pytest.raises(AccessDenied, match="credential"):
            reader.open(envelope, now=0)

    def test_share_is_audited(self, pds):
        fleet = TokenFleet(seed=7)
        doc_id = pds.documents_of_kind("bill")[0].doc_id
        before = pds.audit.count
        create_share(pds, fleet, [doc_id], "doctor", UsagePolicy())
        # one read audit + one share audit
        assert pds.audit.count == before + 2
        assert pds.audit.entries()[-1].action == "share"

    def test_usage_policy_validation(self):
        with pytest.raises(Exception):
            UsagePolicy(max_reads=0)
