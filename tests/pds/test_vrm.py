"""Tests for the VRM terms-of-service agent."""

import pytest

from repro.errors import AccessDenied
from repro.pds.datamodel import bill, energy_reading, medical_note
from repro.pds.server import PersonalDataServer
from repro.pds.vrm import DataRequest, Terms, VrmAgent, evaluate


def standard_terms() -> Terms:
    terms = Terms()
    terms.allow(
        "energy",
        purposes=["tariff-optimization", "research"],
        max_retention_days=90,
        price_per_document=0.5,
    )
    terms.allow(
        "bill",
        purposes=["credit-scoring"],
        max_retention_days=30,
        price_per_document=2.0,
        anonymized_only=True,
    )
    return terms


def loaded_pds() -> PersonalDataServer:
    pds = PersonalDataServer(owner="alice")
    pds.ingest_all(
        [
            energy_reading(kwh=300, month=1),
            energy_reading(kwh=280, month=2),
            bill("electricity", 84.0, "edf"),
            medical_note("checkup", "healthy"),
        ]
    )
    return pds


class TestEvaluate:
    def test_granted_when_all_conditions_met(self):
        decision = evaluate(
            standard_terms(),
            DataRequest(
                vendor="grid-co",
                kinds=("energy",),
                purpose="tariff-optimization",
                retention_days=30,
                offered_price_per_document=1.0,
            ),
        )
        assert decision.granted_kinds == ["energy"]
        assert decision.refused == {}
        assert decision.price_per_document["energy"] == 0.5

    def test_unoffered_kind_refused(self):
        decision = evaluate(
            standard_terms(),
            DataRequest("snoop", ("medical",), "research", 1, 100.0),
        )
        assert "medical" in decision.refused
        assert not decision.any_granted

    def test_wrong_purpose_refused(self):
        decision = evaluate(
            standard_terms(),
            DataRequest("adtech", ("energy",), "advertising", 1, 100.0),
        )
        assert "purpose" in decision.refused["energy"]

    def test_excessive_retention_refused(self):
        decision = evaluate(
            standard_terms(),
            DataRequest("grid-co", ("energy",), "research", 365, 100.0),
        )
        assert "retention" in decision.refused["energy"]

    def test_lowball_offer_refused(self):
        decision = evaluate(
            standard_terms(),
            DataRequest("cheapskate", ("energy",), "research", 30, 0.01),
        )
        assert "below asking price" in decision.refused["energy"]

    def test_anonymized_only_needs_vendor_acceptance(self):
        refused = evaluate(
            standard_terms(),
            DataRequest("bank", ("bill",), "credit-scoring", 10, 5.0),
        )
        assert "anonymized" in refused.refused["bill"]
        granted = evaluate(
            standard_terms(),
            DataRequest(
                "bank", ("bill",), "credit-scoring", 10, 5.0,
                accepts_anonymized=True,
            ),
        )
        assert granted.anonymize_kinds == ["bill"]

    def test_partial_grants(self):
        decision = evaluate(
            standard_terms(),
            DataRequest(
                "mixed", ("energy", "medical"), "research", 30, 1.0
            ),
        )
        assert decision.granted_kinds == ["energy"]
        assert "medical" in decision.refused


class TestVrmAgent:
    def test_release_and_revenue(self):
        pds = loaded_pds()
        agent = VrmAgent(pds, standard_terms())
        release = agent.handle(
            DataRequest("grid-co", ("energy",), "research", 30, 1.0)
        )
        assert len(release.documents) == 2
        assert release.revenue == pytest.approx(2 * 0.5)
        assert agent.total_revenue == pytest.approx(1.0)

    def test_anonymized_release_exposes_counts_only(self):
        pds = loaded_pds()
        agent = VrmAgent(pds, standard_terms())
        release = agent.handle(
            DataRequest(
                "bank", ("bill",), "credit-scoring", 10, 5.0,
                accepts_anonymized=True,
            )
        )
        assert release.documents == []
        assert release.anonymized_counts == {"bill": 1}
        assert release.revenue == pytest.approx(2.0)

    def test_fully_refused_request_raises_and_audits(self):
        pds = loaded_pds()
        agent = VrmAgent(pds, standard_terms())
        before = pds.audit.count
        with pytest.raises(AccessDenied):
            agent.handle(
                DataRequest("adtech", ("medical",), "advertising", 1, 99.0)
            )
        assert pds.audit.count == before + 1
        assert pds.audit.entries()[-1].allowed is False
        assert agent.total_revenue == 0.0

    def test_grants_are_audited(self):
        pds = loaded_pds()
        agent = VrmAgent(pds, standard_terms())
        agent.handle(DataRequest("grid-co", ("energy",), "research", 30, 1.0))
        entry = pds.audit.entries()[-1]
        assert entry.role == "vendor"
        assert "granted=['energy']" in entry.target
        assert pds.audit.verify_chain()

    def test_terms_validation(self):
        terms = Terms()
        with pytest.raises(ValueError):
            terms.allow("x", ["p"], max_retention_days=-1, price_per_document=1.0)
        with pytest.raises(ValueError):
            terms.allow("x", ["p"], max_retention_days=1, price_per_document=-0.5)
