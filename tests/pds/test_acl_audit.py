"""Tests for privacy policies and the tamper-evident audit log."""

import pytest

from repro.errors import AccessDenied
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.pds.acl import (
    ANY,
    AccessRule,
    PrivacyPolicy,
    Subject,
    default_policy,
)
from repro.pds.audit import AuditLog
from repro.pds.datamodel import PersonalDocument, medical_note


def doc(kind="email", **attrs) -> PersonalDocument:
    return PersonalDocument(kind=kind, attributes=attrs)


OWNER = Subject("alice", "owner")
DOCTOR = Subject("dr-b", "doctor")
APP = Subject("fitapp", "app")
QUERIER = Subject("insee", "querier")


class TestAccessRule:
    def test_matching(self):
        rule = AccessRule(role="doctor", action="read", kind="medical")
        assert rule.matches(DOCTOR, "read", "medical")
        assert not rule.matches(DOCTOR, "read", "email")
        assert not rule.matches(APP, "read", "medical")

    def test_wildcards(self):
        rule = AccessRule(role=ANY, action=ANY, kind=ANY)
        assert rule.matches(APP, "share", "photo")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            AccessRule(role="doctor", action="delete")


class TestPrivacyPolicy:
    def test_default_deny(self):
        policy = PrivacyPolicy()
        assert not policy.allows(APP, "read", doc())

    def test_owner_always_allowed(self):
        policy = PrivacyPolicy()
        assert policy.allows(OWNER, "read", doc())
        assert policy.allows(OWNER, "share", doc(kind="medical"))

    def test_first_match_wins(self):
        policy = PrivacyPolicy(
            [
                AccessRule(role="app", action="read", kind="energy", allow=False),
                AccessRule(role="app", action="read", kind=ANY, allow=True),
            ]
        )
        assert not policy.allows(APP, "read", doc(kind="energy"))
        assert policy.allows(APP, "read", doc(kind="bill"))

    def test_sealed_documents_resist_even_owner_reads(self):
        """'A user does not have all the privileges over her PDS data.'"""
        policy = PrivacyPolicy()
        sealed = doc(kind="medical", sealed=True)
        assert not policy.allows(OWNER, "read", sealed)
        assert policy.allows(OWNER, "search", sealed)

    def test_check_raises(self):
        with pytest.raises(AccessDenied, match="may not read"):
            PrivacyPolicy().check(APP, "read", doc())

    def test_default_policy_shape(self):
        policy = default_policy()
        assert policy.allows(DOCTOR, "read", medical_note("x", "flu"))
        assert not policy.allows(DOCTOR, "read", doc(kind="bill"))
        assert policy.allows(QUERIER, "aggregate", doc(kind="bill"))
        assert not policy.allows(QUERIER, "read", doc(kind="bill"))


class TestAuditLog:
    def make_log(self) -> AuditLog:
        flash = NandFlash(FlashGeometry(page_size=512, pages_per_block=8, num_blocks=64))
        return AuditLog(BlockAllocator(flash))

    def test_records_and_replays(self):
        log = self.make_log()
        log.record("dr-b", "doctor", "read", "doc:1", True)
        log.record("app", "app", "read", "doc:2", False)
        entries = log.entries()
        assert len(entries) == 2
        assert entries[0].subject == "dr-b"
        assert entries[1].allowed is False

    def test_chain_verifies(self):
        log = self.make_log()
        for i in range(20):
            log.record("s", "role", "read", f"doc:{i}", True)
        assert log.verify_chain(expected_count=20)

    def test_chain_links_prev_digest(self):
        log = self.make_log()
        first = log.record("a", "r", "read", "t", True)
        second = log.record("b", "r", "read", "t", True)
        assert second.prev_digest == first.digest()

    def test_length_mismatch_detected(self):
        log = self.make_log()
        log.record("a", "r", "read", "t", True)
        assert not log.verify_chain(expected_count=5)

    def test_head_digest_changes_per_entry(self):
        log = self.make_log()
        before = log.head_digest
        log.record("a", "r", "read", "t", True)
        assert log.head_digest != before
