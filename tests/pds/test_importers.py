"""Tests for the data-federation importers."""

import pytest

from repro.pds.importers import (
    ImportError_,
    federate,
    import_bank_csv,
    import_mbox,
    import_meter_csv,
)
from repro.pds.server import PersonalDataServer

MBOX = """From alice@example.org Mon Mar 10 10:00:00 2014
From: doctor@clinic.fr
Subject: appointment confirmation

Your appointment is confirmed for Tuesday.

From billing@edf.fr Tue Mar 11 09:00:00 2014
From: billing@edf.fr
Subject: march invoice

Amount due: 84.50 EUR
"""

BANK_CSV = """date,label,amount
2014-03-01,EDF ELECTRICITY,84.50
2014-03-03,SNCF TICKETS,45.00
garbage line without commas
2014-03-07,PHARMACY,not-a-number
2014-03-09,SUPERMARKET,122.30
"""

METER_CSV = """month,kwh
1,312
2,290
3,335
bad,row
"""


class TestMbox:
    def test_messages_parsed(self):
        report = import_mbox(MBOX)
        assert report.imported == 2
        first, second = report.documents
        assert first.kind == "email"
        assert first.attributes["subject"] == "appointment confirmation"
        assert "confirmed for Tuesday" in first.text
        assert second.attributes["from"] == "billing@edf.fr"

    def test_garbage_rejected(self):
        with pytest.raises(ImportError_):
            import_mbox("this is not a mail spool")

    def test_empty_input(self):
        assert import_mbox("").imported == 0


class TestBankCsv:
    def test_rows_parsed_and_bad_rows_reported(self):
        report = import_bank_csv(BANK_CSV)
        assert report.imported == 3
        assert len(report.skipped_lines) == 2
        amounts = [doc.attributes["amount"] for doc in report.documents]
        assert amounts == [84.50, 45.00, 122.30]
        assert all(doc.kind == "bill" for doc in report.documents)

    def test_header_skipped_silently(self):
        report = import_bank_csv("date,label,amount\n")
        assert report.imported == 0
        assert report.skipped_lines == []


class TestMeterCsv:
    def test_readings(self):
        report = import_meter_csv(METER_CSV)
        assert report.imported == 3
        assert report.documents[0].attributes == {"month": 1, "kwh": 312}
        assert len(report.skipped_lines) == 1


class TestFederate:
    def test_multi_source_ingestion(self):
        pds = PersonalDataServer(owner="alice")
        reports = federate(
            pds,
            {"mbox": MBOX, "bank-csv": BANK_CSV, "meter-csv": METER_CSV},
        )
        assert pds.document_count == 2 + 3 + 3
        assert reports["bank-csv"].imported == 3
        # Imported documents are immediately searchable.
        hits = pds.search(pds.owner, "invoice")
        assert hits
        kinds = {doc.kind for _, doc in hits}
        assert kinds <= {"email", "bill"}

    def test_unknown_format(self):
        pds = PersonalDataServer(owner="bob")
        with pytest.raises(ImportError_, match="unknown source format"):
            federate(pds, {"vcard": "..."})
