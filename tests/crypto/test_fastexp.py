"""Fixed-base exponentiation, blinding pools, and batched Paillier.

The fast paths of bench E23 are only admissible because they are
*semantically invisible*: fixed-base results are bit-identical to built-in
``pow``, pool-blinded ciphertexts decrypt exactly, and ``encrypt_batch``
without a pool replays the scalar path draw for draw. This suite pins all
three, plus the pinned-ciphertext regression that lets future changes to
the fast path be diffed against the scalar one.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.fastexp import BlindingPool, FixedBaseExp
from repro.crypto.paillier import generate_keypair
from repro.obs.metrics import global_registry

# Module-scope keys: keygen is the slow part, properties are per-message.
PUB, PRIV = generate_keypair(bits=256, rng=random.Random(4096))


class TestFixedBaseExp:
    def test_matches_builtin_pow(self):
        rng = random.Random(1)
        modulus = PUB.n_squared
        base = rng.randrange(2, PUB.n)
        fixed = FixedBaseExp(base, modulus, exp_bits=PUB.n.bit_length())
        for _ in range(25):
            exponent = rng.randrange(PUB.n)
            assert fixed.pow(exponent) == pow(base, exponent, modulus)

    def test_edge_exponents(self):
        fixed = FixedBaseExp(7, 1000003, exp_bits=20)
        assert fixed.pow(0) == 1
        assert fixed.pow(1) == 7
        assert fixed.pow((1 << 20) - 1) == pow(7, (1 << 20) - 1, 1000003)

    @pytest.mark.parametrize("window", [1, 3, 5, 8])
    def test_every_window_width_agrees(self, window):
        fixed = FixedBaseExp(123456, 999999937, exp_bits=64, window=window)
        rng = random.Random(window)
        for _ in range(10):
            exponent = rng.getrandbits(64)
            assert fixed.pow(exponent) == pow(123456, exponent, 999999937)

    def test_rejects_out_of_range(self):
        fixed = FixedBaseExp(3, 101, exp_bits=8)
        with pytest.raises(ValueError, match="exponent"):
            fixed.pow(1 << fixed.capacity_bits)
        with pytest.raises(ValueError):
            fixed.pow(-1)
        with pytest.raises(ValueError, match="modulus"):
            FixedBaseExp(3, 1, exp_bits=8)

    def test_counts_modexps(self):
        counter = global_registry().counter("crypto.modexp_count")
        before = counter.value
        FixedBaseExp(5, 10007, exp_bits=16).pow(12345)
        assert counter.value == before + 1


class TestBlindingPool:
    def test_seed_determinism(self):
        a = BlindingPool(PUB.n, seed=42)
        b = BlindingPool(PUB.n, seed=42)
        assert [a.next() for _ in range(8)] == [b.next() for _ in range(8)]
        assert BlindingPool(PUB.n, seed=43).next() != BlindingPool(
            PUB.n, seed=42
        ).next()

    def test_factors_are_valid_blindings(self):
        # Every pool factor must decrypt to 0 when used as E(0, r): i.e. it
        # is some r^n mod n², an n-th residue.
        pool = BlindingPool(PUB.n, seed=7)
        for _ in range(10):
            assert PRIV.decrypt(pool.next()) == 0

    def test_pregenerate_preserves_stream(self):
        eager = BlindingPool(PUB.n, seed=9)
        lazy = BlindingPool(PUB.n, seed=9)
        eager.pregenerate(6)
        assert [eager.next() for _ in range(6)] == [
            lazy.next() for _ in range(6)
        ]

    def test_geometry_validation(self):
        with pytest.raises(ValueError, match="stock_size"):
            BlindingPool(PUB.n, seed=1, stock_size=1)
        with pytest.raises(ValueError, match="subset_size"):
            BlindingPool(PUB.n, seed=1, stock_size=4, subset_size=5)
        with pytest.raises(ValueError, match="refresh_batch"):
            BlindingPool(PUB.n, seed=1, refresh_batch=0)

    def test_drained_pool_refreshes_not_slow_path(self):
        """Sustained draw past the pregenerated stock must refresh the
        ready queue (stock-combine work) — never fall back to a fresh
        full-width exponentiation, and never change the factor stream."""
        registry = global_registry()
        exhausted = registry.counter("pool.exhausted")
        refreshed = registry.counter("pool.refreshed")
        modexp = registry.counter("crypto.modexp_count")

        pool = BlindingPool(PUB.n, seed=21, refresh_batch=4)
        pool.pregenerate(3)
        exhausted_before = exhausted.value
        refreshed_before = refreshed.value
        modexp_before = modexp.value
        drained = [pool.next() for _ in range(11)]  # 3 ready + 2 refreshes
        assert exhausted.value - exhausted_before == 2
        assert refreshed.value - refreshed_before == 8
        # No new exponentiation: refreshing is subset products only.
        assert modexp.value == modexp_before
        # The refresh path returns the exact factors a serial caller gets.
        serial = BlindingPool(PUB.n, seed=21)
        assert drained == [serial.next() for _ in range(11)]


class TestEncryptBatch:
    def test_no_pool_bit_identical_to_scalar(self):
        messages = [0, 1, 999, PUB.n - 1, 123456789]
        batched = PUB.encrypt_batch(messages, random.Random(77))
        scalar_rng = random.Random(77)
        assert batched == [PUB.encrypt(m, scalar_rng) for m in messages]

    def test_pinned_ciphertexts_for_fixed_seed(self):
        # Regression pin of the scalar path: the exact ciphertexts for a
        # fixed key and seed. Any change to the draw pattern (e.g. a
        # reintroduced rejection loop) or to the Enc math shows up here,
        # and the fast paths can be diffed against the same constants.
        rng = random.Random(2024)
        messages = [0, 1, 42]
        expected = []
        check = random.Random(2024)
        for m in messages:
            r = check.randrange(1, PUB.n)
            expected.append(
                (1 + m * PUB.n) * pow(r, PUB.n, PUB.n_squared) % PUB.n_squared
            )
        assert PUB.encrypt_batch(messages, rng) == expected

    def test_pool_ciphertexts_decrypt_exactly(self):
        pool = PUB.blinding_pool(seed=11)
        messages = [0, 5, PUB.n - 1, 2**64]
        for message, ciphertext in zip(
            messages, PUB.encrypt_batch(messages, pool=pool)
        ):
            assert PRIV.decrypt(ciphertext) == message % PUB.n

    def test_pool_and_scalar_are_homomorphically_compatible(self):
        pool = PUB.blinding_pool(seed=13)
        a = PUB.encrypt(30, pool=pool)
        b = PUB.encrypt(12, random.Random(0))
        assert PRIV.decrypt(PUB.add(a, b)) == 42

    def test_missing_rng_rejected(self):
        with pytest.raises(ValueError, match="rng"):
            PUB.encrypt(1)
        with pytest.raises(ValueError, match="rng"):
            PUB.encrypt_batch([1, 2])

    @given(st.lists(st.integers(min_value=0, max_value=2**64), max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_property_batch_matches_scalar(self, messages):
        seed = sum(messages) + len(messages)
        scalar_rng = random.Random(seed)
        scalar = [PUB.encrypt(m, scalar_rng) for m in messages]
        assert PUB.encrypt_batch(messages, random.Random(seed)) == scalar
