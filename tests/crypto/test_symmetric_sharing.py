"""Tests for symmetric ciphers and additive secret sharing."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sharing import reconstruct, reconstruct_signed, split
from repro.crypto.symmetric import DeterministicCipher, NondeterministicCipher
from repro.errors import IntegrityError

KEY = b"0123456789abcdef"


class TestDeterministicCipher:
    def test_roundtrip(self):
        cipher = DeterministicCipher(KEY)
        for plaintext in (b"", b"x", b"tuple|HOUSEHOLD|42", b"\x00" * 100):
            assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    def test_equal_plaintexts_equal_ciphertexts(self):
        cipher = DeterministicCipher(KEY)
        assert cipher.encrypt(b"HOUSEHOLD") == cipher.encrypt(b"HOUSEHOLD")

    def test_different_plaintexts_differ(self):
        cipher = DeterministicCipher(KEY)
        assert cipher.encrypt(b"A") != cipher.encrypt(b"B")

    def test_tampering_detected(self):
        cipher = DeterministicCipher(KEY)
        ciphertext = bytearray(cipher.encrypt(b"secret"))
        ciphertext[-1] ^= 1
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(ciphertext))

    def test_truncated_rejected(self):
        with pytest.raises(IntegrityError):
            DeterministicCipher(KEY).decrypt(b"short")

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            DeterministicCipher(b"tiny")

    @given(st.binary(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, plaintext):
        cipher = DeterministicCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext


class TestNondeterministicCipher:
    def test_roundtrip(self):
        cipher = NondeterministicCipher(KEY, rng=random.Random(1))
        for plaintext in (b"", b"x", b"tuple|HOUSEHOLD|42"):
            assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    def test_equal_plaintexts_unlinkable(self):
        cipher = NondeterministicCipher(KEY, rng=random.Random(2))
        assert cipher.encrypt(b"HOUSEHOLD") != cipher.encrypt(b"HOUSEHOLD")

    def test_tampering_detected(self):
        cipher = NondeterministicCipher(KEY, rng=random.Random(3))
        ciphertext = bytearray(cipher.encrypt(b"secret"))
        ciphertext[20] ^= 0xFF
        with pytest.raises(IntegrityError):
            cipher.decrypt(bytes(ciphertext))

    def test_cross_key_decryption_fails(self):
        a = NondeterministicCipher(KEY, rng=random.Random(4))
        b = NondeterministicCipher(b"another-16-byte-key!", rng=random.Random(4))
        with pytest.raises(IntegrityError):
            b.decrypt(a.encrypt(b"msg"))

    @given(st.binary(max_size=200), st.integers())
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, plaintext, seed):
        cipher = NondeterministicCipher(KEY, rng=random.Random(seed))
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext


class TestSecretSharing:
    def test_split_reconstruct(self):
        rng = random.Random(1)
        shares = split(123456, 5, rng)
        assert len(shares) == 5
        assert reconstruct(shares) == 123456

    def test_single_share(self):
        assert reconstruct(split(42, 1, random.Random(0))) == 42

    def test_partial_shares_reveal_nothing_structural(self):
        """Any n-1 shares are uniform: reconstructing them misses the secret."""
        rng = random.Random(2)
        shares = split(999, 4, rng)
        assert reconstruct(shares[:-1]) != 999 or shares[-1] == 0

    def test_signed_reconstruction(self):
        rng = random.Random(3)
        shares = split(-77, 3, rng)
        assert reconstruct_signed(shares) == -77

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            split(1, 0, random.Random(0))
        with pytest.raises(ValueError):
            split(1, 2, random.Random(0), modulus=1)
        with pytest.raises(ValueError):
            reconstruct([])

    @given(
        st.integers(min_value=0, max_value=2**63),
        st.integers(min_value=1, max_value=20),
        st.integers(),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, value, num_shares, seed):
        shares = split(value, num_shares, random.Random(seed))
        assert reconstruct(shares) == value
