"""Tests for Paillier (additive HE) and RSA (multiplicative HE)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import generate_keypair as paillier_keypair
from repro.crypto.rsa import generate_keypair as rsa_keypair

# Module-scope keys: keygen is the slow part, properties are per-message.
PUB, PRIV = paillier_keypair(bits=256, rng=random.Random(2024))
RSA_PUB, RSA_PRIV = rsa_keypair(bits=256, rng=random.Random(2024))


class TestPaillier:
    def test_encrypt_decrypt_roundtrip(self):
        rng = random.Random(1)
        for message in (0, 1, 12345, PUB.n - 1):
            assert PRIV.decrypt(PUB.encrypt(message, rng)) == message

    def test_nondeterministic(self):
        rng = random.Random(2)
        assert PUB.encrypt(42, rng) != PUB.encrypt(42, rng)

    def test_additive_homomorphism(self):
        rng = random.Random(3)
        c = PUB.add(PUB.encrypt(100, rng), PUB.encrypt(23, rng))
        assert PRIV.decrypt(c) == 123

    def test_add_plain(self):
        rng = random.Random(4)
        c = PUB.add_plain(PUB.encrypt(10, rng), 32, rng)
        assert PRIV.decrypt(c) == 42

    def test_multiply_plain(self):
        rng = random.Random(5)
        c = PUB.multiply_plain(PUB.encrypt(7, rng), 6)
        assert PRIV.decrypt(c) == 42

    def test_addition_wraps_mod_n(self):
        rng = random.Random(6)
        c = PUB.add(PUB.encrypt(PUB.n - 1, rng), PUB.encrypt(2, rng))
        assert PRIV.decrypt(c) == 1

    def test_decrypt_signed(self):
        rng = random.Random(7)
        c = PUB.add(PUB.encrypt(5, rng), PUB.encrypt(-8 % PUB.n, rng))
        assert PRIV.decrypt_signed(c) == -3

    @given(
        st.integers(min_value=0, max_value=2**48),
        st.integers(min_value=0, max_value=2**48),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_sum_of_any_pair(self, a, b):
        rng = random.Random(a ^ b)
        c = PUB.add(PUB.encrypt(a, rng), PUB.encrypt(b, rng))
        assert PRIV.decrypt(c) == a + b

    def test_keypair_distinct_primes(self):
        # n must not be a perfect square (p != q).
        root = int(PUB.n**0.5)
        assert root * root != PUB.n


class TestPaillierProperties:
    """Round-trip properties of the homomorphic API and the CRT decrypt."""

    @given(
        st.integers(min_value=0, max_value=2**48),
        st.integers(min_value=-(2**32), max_value=2**32),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_add_plain_roundtrip(self, a, b):
        rng = random.Random(a ^ b)
        ciphertext = PUB.add_plain(PUB.encrypt(a, rng), b)
        assert PRIV.decrypt(ciphertext) == (a + b) % PUB.n

    def test_add_plain_equivalent_to_encrypt_and_add(self):
        # The (1 + b·n) shortcut and a full encryption of b land on the
        # same plaintext (the ciphertexts differ only in blinding).
        rng = random.Random(8)
        base = PUB.encrypt(100, rng)
        shortcut = PUB.add_plain(base, 23)
        full = PUB.add(base, PUB.encrypt(23, rng))
        assert PRIV.decrypt(shortcut) == PRIV.decrypt(full) == 123

    @given(
        st.integers(min_value=0, max_value=2**40),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_multiply_plain_roundtrip(self, a, k):
        rng = random.Random(a + k)
        ciphertext = PUB.multiply_plain(PUB.encrypt(a, rng), k)
        assert PRIV.decrypt(ciphertext) == (a * k) % PUB.n

    def test_decrypt_signed_boundary_at_half_n(self):
        rng = random.Random(9)
        half = PUB.n // 2
        # Values up to n//2 stay positive; the first value past it is the
        # most negative representable.
        assert PRIV.decrypt_signed(PUB.encrypt(half, rng)) == half
        assert (
            PRIV.decrypt_signed(PUB.encrypt(half + 1, rng))
            == half + 1 - PUB.n
        )
        assert PRIV.decrypt_signed(PUB.encrypt(PUB.n - 1, rng)) == -1
        assert PRIV.decrypt_signed(PUB.encrypt(0, rng)) == 0

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_property_crt_equals_plain_across_random_keys(self, seed):
        public, private = paillier_keypair(bits=128, rng=random.Random(seed))
        assert private.p and private.q  # generated keys carry factors
        rng = random.Random(seed + 1)
        for message in (0, 1, seed % public.n, public.n - 1):
            ciphertext = public.encrypt(message, rng)
            assert private.decrypt(ciphertext) == private.decrypt_plain(
                ciphertext
            )

    def test_factorless_key_still_decrypts(self):
        from repro.crypto.paillier import PaillierPrivateKey

        legacy = PaillierPrivateKey(public=PUB, lam=PRIV.lam, mu=PRIV.mu)
        ciphertext = PUB.encrypt(4321, random.Random(10))
        assert legacy.decrypt(ciphertext) == 4321


class TestNegationSignedSeam:
    """The delta-maintenance seam: ``Enc(-x)`` composed with
    ``decrypt_signed``'s ``n // 2`` convention must round-trip exactly —
    via plaintext negation (``n - x``), ciphertext inversion
    (:meth:`negate`) and ``multiply_plain(-1)`` alike."""

    def test_negate_inverts_a_ciphertext(self):
        rng = random.Random(11)
        for x in (0, 1, 12345, PUB.n // 2):
            assert PRIV.decrypt_signed(PUB.negate(PUB.encrypt(x, rng))) == (
                -x if x <= PUB.n // 2 else x
            )

    def test_three_negation_routes_agree(self):
        rng = random.Random(12)
        x = 987654321
        routes = (
            PUB.encrypt(-x, rng),  # plaintext negation: -x ≡ n - x
            PUB.negate(PUB.encrypt(x, rng)),  # ciphertext inverse
            PUB.multiply_plain(PUB.encrypt(x, rng), -1),  # exponent n - 1
        )
        assert [PRIV.decrypt_signed(c) for c in routes] == [-x] * 3

    def test_delta_identity_enc_new_times_enc_old_inverse(self):
        """``Enc(new) · Enc(old)^-1`` decrypts (signed) to ``new - old``."""
        rng = random.Random(13)
        for new, old in ((0, 7), (7, 0), (5, 5), (3, 2**40), (2**40, 3)):
            delta = PUB.add(
                PUB.encrypt(new, rng), PUB.negate(PUB.encrypt(old, rng))
            )
            assert PRIV.decrypt_signed(delta) == new - old

    @given(
        st.lists(
            st.integers(min_value=-(2**40), max_value=2**40),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_property_signed_delta_folds_exactly(self, deltas):
        """A fold of signed deltas decrypts to the exact integer sum —
        the window-state invariant of the standing-query protocol."""
        rng = random.Random(len(deltas))
        folded = 1  # Enc(0) with blinding 1: the fold identity
        for delta in deltas:
            folded = PUB.add(folded, PUB.encrypt(delta, rng))
        assert PRIV.decrypt_signed(folded) == sum(deltas)

    @given(st.integers(min_value=0, max_value=2**48))
    @settings(max_examples=25, deadline=None)
    def test_property_retraction_cancels_exactly(self, x):
        """Contribute then forget: the fold returns to exactly Enc(0)."""
        rng = random.Random(x)
        folded = PUB.add(PUB.encrypt(x, rng), PUB.encrypt(-x, rng))
        assert PRIV.decrypt(folded) == 0
        assert PRIV.decrypt_signed(folded) == 0

    def test_signed_boundary_of_a_fold(self):
        """Folds landing exactly on ±n//2 keep their sign convention."""
        rng = random.Random(14)
        half = PUB.n // 2
        up = PUB.add(PUB.encrypt(half - 1, rng), PUB.encrypt(1, rng))
        assert PRIV.decrypt_signed(up) == half
        down = PUB.add(PUB.encrypt(-half, rng), PUB.encrypt(0, rng))
        assert PRIV.decrypt_signed(down) == -half
        # One past the positive boundary wraps negative — the documented
        # cliff of the n//2 convention (n is odd: the range is symmetric).
        over = PUB.add(PUB.encrypt(half, rng), PUB.encrypt(1, rng))
        assert PRIV.decrypt_signed(over) == half + 1 - PUB.n

    def test_add_plain_negative_matches_signed_decrypt(self):
        rng = random.Random(15)
        c = PUB.add_plain(PUB.encrypt(10, rng), -32)
        assert PRIV.decrypt_signed(c) == -22


class TestRsa:
    def test_roundtrip(self):
        for message in (0, 1, 123456789):
            assert RSA_PRIV.decrypt(RSA_PUB.encrypt(message)) == message

    def test_deterministic(self):
        assert RSA_PUB.encrypt(42) == RSA_PUB.encrypt(42)

    def test_multiplicative_homomorphism(self):
        """The slide's identity: E(p1) x E(p2) = E(p1 x p2)."""
        c = RSA_PUB.multiply(RSA_PUB.encrypt(6), RSA_PUB.encrypt(7))
        assert RSA_PRIV.decrypt(c) == 42

    def test_message_range_checked(self):
        with pytest.raises(ValueError):
            RSA_PUB.encrypt(RSA_PUB.n)
        with pytest.raises(ValueError):
            RSA_PUB.encrypt(-1)

    @given(
        st.integers(min_value=1, max_value=2**32),
        st.integers(min_value=1, max_value=2**32),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_product_of_any_pair(self, a, b):
        c = RSA_PUB.multiply(RSA_PUB.encrypt(a), RSA_PUB.encrypt(b))
        assert RSA_PRIV.decrypt(c) == a * b


class TestElGamal:
    from repro.crypto.elgamal import generate_keypair as _gen

    EG_PUB, EG_PRIV = _gen(bits=96, rng=random.Random(7))

    def test_roundtrip_on_subgroup_elements(self):
        rng = random.Random(1)
        for value in (2, 77, 12345):
            element = self.EG_PUB.encode(value)
            assert self.EG_PRIV.decrypt(self.EG_PUB.encrypt(element, rng)) == element

    def test_probabilistic(self):
        rng = random.Random(2)
        element = self.EG_PUB.encode(42)
        assert self.EG_PUB.encrypt(element, rng) != self.EG_PUB.encrypt(element, rng)

    def test_multiplicative_homomorphism(self):
        rng = random.Random(3)
        a, b = self.EG_PUB.encode(6), self.EG_PUB.encode(7)
        product = self.EG_PUB.multiply(
            self.EG_PUB.encrypt(a, rng), self.EG_PUB.encrypt(b, rng)
        )
        assert self.EG_PRIV.decrypt(product) == (a * b) % self.EG_PUB.p

    def test_encode_range_checked(self):
        with pytest.raises(ValueError):
            self.EG_PUB.encode(0)
        with pytest.raises(ValueError):
            self.EG_PUB.encode(self.EG_PUB.q + 1)

    @given(
        st.integers(min_value=2, max_value=10_000),
        st.integers(min_value=2, max_value=10_000),
        st.integers(),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_products(self, a, b, seed):
        rng = random.Random(seed)
        ea = self.EG_PUB.encrypt(self.EG_PUB.encode(a), rng)
        eb = self.EG_PUB.encrypt(self.EG_PUB.encode(b), rng)
        expected = (self.EG_PUB.encode(a) * self.EG_PUB.encode(b)) % self.EG_PUB.p
        assert self.EG_PRIV.decrypt(self.EG_PUB.multiply(ea, eb)) == expected
