"""Tests for Paillier (additive HE) and RSA (multiplicative HE)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import generate_keypair as paillier_keypair
from repro.crypto.rsa import generate_keypair as rsa_keypair

# Module-scope keys: keygen is the slow part, properties are per-message.
PUB, PRIV = paillier_keypair(bits=256, rng=random.Random(2024))
RSA_PUB, RSA_PRIV = rsa_keypair(bits=256, rng=random.Random(2024))


class TestPaillier:
    def test_encrypt_decrypt_roundtrip(self):
        rng = random.Random(1)
        for message in (0, 1, 12345, PUB.n - 1):
            assert PRIV.decrypt(PUB.encrypt(message, rng)) == message

    def test_nondeterministic(self):
        rng = random.Random(2)
        assert PUB.encrypt(42, rng) != PUB.encrypt(42, rng)

    def test_additive_homomorphism(self):
        rng = random.Random(3)
        c = PUB.add(PUB.encrypt(100, rng), PUB.encrypt(23, rng))
        assert PRIV.decrypt(c) == 123

    def test_add_plain(self):
        rng = random.Random(4)
        c = PUB.add_plain(PUB.encrypt(10, rng), 32, rng)
        assert PRIV.decrypt(c) == 42

    def test_multiply_plain(self):
        rng = random.Random(5)
        c = PUB.multiply_plain(PUB.encrypt(7, rng), 6)
        assert PRIV.decrypt(c) == 42

    def test_addition_wraps_mod_n(self):
        rng = random.Random(6)
        c = PUB.add(PUB.encrypt(PUB.n - 1, rng), PUB.encrypt(2, rng))
        assert PRIV.decrypt(c) == 1

    def test_decrypt_signed(self):
        rng = random.Random(7)
        c = PUB.add(PUB.encrypt(5, rng), PUB.encrypt(-8 % PUB.n, rng))
        assert PRIV.decrypt_signed(c) == -3

    @given(
        st.integers(min_value=0, max_value=2**48),
        st.integers(min_value=0, max_value=2**48),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_sum_of_any_pair(self, a, b):
        rng = random.Random(a ^ b)
        c = PUB.add(PUB.encrypt(a, rng), PUB.encrypt(b, rng))
        assert PRIV.decrypt(c) == a + b

    def test_keypair_distinct_primes(self):
        # n must not be a perfect square (p != q).
        root = int(PUB.n**0.5)
        assert root * root != PUB.n


class TestRsa:
    def test_roundtrip(self):
        for message in (0, 1, 123456789):
            assert RSA_PRIV.decrypt(RSA_PUB.encrypt(message)) == message

    def test_deterministic(self):
        assert RSA_PUB.encrypt(42) == RSA_PUB.encrypt(42)

    def test_multiplicative_homomorphism(self):
        """The slide's identity: E(p1) x E(p2) = E(p1 x p2)."""
        c = RSA_PUB.multiply(RSA_PUB.encrypt(6), RSA_PUB.encrypt(7))
        assert RSA_PRIV.decrypt(c) == 42

    def test_message_range_checked(self):
        with pytest.raises(ValueError):
            RSA_PUB.encrypt(RSA_PUB.n)
        with pytest.raises(ValueError):
            RSA_PUB.encrypt(-1)

    @given(
        st.integers(min_value=1, max_value=2**32),
        st.integers(min_value=1, max_value=2**32),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_product_of_any_pair(self, a, b):
        c = RSA_PUB.multiply(RSA_PUB.encrypt(a), RSA_PUB.encrypt(b))
        assert RSA_PRIV.decrypt(c) == a * b


class TestElGamal:
    from repro.crypto.elgamal import generate_keypair as _gen

    EG_PUB, EG_PRIV = _gen(bits=96, rng=random.Random(7))

    def test_roundtrip_on_subgroup_elements(self):
        rng = random.Random(1)
        for value in (2, 77, 12345):
            element = self.EG_PUB.encode(value)
            assert self.EG_PRIV.decrypt(self.EG_PUB.encrypt(element, rng)) == element

    def test_probabilistic(self):
        rng = random.Random(2)
        element = self.EG_PUB.encode(42)
        assert self.EG_PUB.encrypt(element, rng) != self.EG_PUB.encrypt(element, rng)

    def test_multiplicative_homomorphism(self):
        rng = random.Random(3)
        a, b = self.EG_PUB.encode(6), self.EG_PUB.encode(7)
        product = self.EG_PUB.multiply(
            self.EG_PUB.encrypt(a, rng), self.EG_PUB.encrypt(b, rng)
        )
        assert self.EG_PRIV.decrypt(product) == (a * b) % self.EG_PUB.p

    def test_encode_range_checked(self):
        with pytest.raises(ValueError):
            self.EG_PUB.encode(0)
        with pytest.raises(ValueError):
            self.EG_PUB.encode(self.EG_PUB.q + 1)

    @given(
        st.integers(min_value=2, max_value=10_000),
        st.integers(min_value=2, max_value=10_000),
        st.integers(),
    )
    @settings(max_examples=20, deadline=None)
    def test_property_products(self, a, b, seed):
        rng = random.Random(seed)
        ea = self.EG_PUB.encrypt(self.EG_PUB.encode(a), rng)
        eb = self.EG_PUB.encrypt(self.EG_PUB.encode(b), rng)
        expected = (self.EG_PUB.encode(a) * self.EG_PUB.encode(b)) % self.EG_PUB.p
        assert self.EG_PRIV.decrypt(self.EG_PUB.multiply(ea, eb)) == expected
