"""Tests for primality testing and prime generation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primes import (
    generate_prime,
    generate_safe_prime,
    is_prime,
    lcm,
    modinv,
)

KNOWN_PRIMES = [2, 3, 5, 7, 97, 65537, 2**127 - 1, 2**521 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 91, 561, 65536, 2**128 - 1, 3**100]
CARMICHAELS = [561, 1105, 1729, 2465, 2821, 6601, 8911]


class TestIsPrime:
    @pytest.mark.parametrize("n", KNOWN_PRIMES)
    def test_known_primes(self, n):
        assert is_prime(n)

    @pytest.mark.parametrize("n", KNOWN_COMPOSITES)
    def test_known_composites(self, n):
        assert not is_prime(n)

    @pytest.mark.parametrize("n", CARMICHAELS)
    def test_carmichael_numbers_rejected(self, n):
        assert not is_prime(n)

    def test_negative(self):
        assert not is_prime(-7)

    @given(st.integers(min_value=2, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_matches_trial_division(self, n):
        trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_prime(n) == trial


class TestGenerate:
    def test_requested_bit_length(self):
        rng = random.Random(1)
        for bits in (16, 64, 128):
            p = generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert is_prime(p)

    def test_deterministic_given_seed(self):
        assert generate_prime(64, random.Random(5)) == generate_prime(
            64, random.Random(5)
        )

    def test_too_few_bits(self):
        with pytest.raises(ValueError):
            generate_prime(1, random.Random(0))

    def test_safe_prime(self):
        p = generate_safe_prime(32, random.Random(3))
        assert is_prime(p)
        assert is_prime((p - 1) // 2)


class TestArithmetic:
    def test_lcm(self):
        assert lcm(4, 6) == 12
        assert lcm(7, 13) == 91

    def test_modinv(self):
        assert (3 * modinv(3, 11)) % 11 == 1

    def test_modinv_nonexistent(self):
        with pytest.raises(ValueError):
            modinv(6, 9)
