"""Model-based (stateful) property tests for the storage engines.

Hypothesis drives long random operation sequences against a Python-dict /
set model; any divergence is shrunk to a minimal failing trace. These catch
ordering/interleaving bugs that example-based tests structurally miss.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.ram import RamArena
from repro.keyvalue.kv import LogKeyValueStore
from repro.pds.datamodel import PersonalDocument
from repro.pds.sync import ReplicaState, badge_sync
from repro.globalq.protocol import TokenFleet

KEYS = [b"alpha", b"beta", b"gamma", b"delta"]


def _allocator() -> BlockAllocator:
    flash = NandFlash(
        FlashGeometry(page_size=128, pages_per_block=8, num_blocks=4096)
    )
    return BlockAllocator(flash)


class KvMachine(RuleBasedStateMachine):
    """The KV store must behave exactly like a dict, always."""

    def __init__(self) -> None:
        super().__init__()
        self.store = LogKeyValueStore(_allocator(), bits_per_key=10.0)
        self.model: dict[bytes, bytes] = {}

    @rule(key=st.sampled_from(KEYS), value=st.binary(min_size=1, max_size=12))
    def put(self, key, value):
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key):
        self.store.delete(key)
        self.model.pop(key, None)

    @rule()
    def flush(self):
        self.store.flush()

    @rule()
    def compact(self):
        self.store = self.store.compact(
            RamArena(64 * 1024), sort_buffer_bytes=512
        )
        # After compaction the new store replaces the old generation.

    @invariant()
    def gets_match_model(self):
        for key in KEYS:
            assert self.store.get(key) == self.model.get(key)

    @invariant()
    def items_match_model(self):
        assert self.store.items() == self.model


KvMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestKvStateful = KvMachine.TestCase


class SyncMachine(RuleBasedStateMachine):
    """Badge sync must be idempotent, monotone and convergent."""

    def __init__(self) -> None:
        super().__init__()
        self.fleet = TokenFleet(seed=1)
        self.replicas = [ReplicaState(f"r{i}") for i in range(3)]
        self.model: set[tuple[str, int]] = set()
        self._counter = 0

    @rule(
        replica=st.integers(0, 2),
        source=st.sampled_from(["doctor", "nurse", "patient"]),
    )
    def author(self, replica, source):
        stamped = self.replicas[replica].add_local(
            f"{source}@r{replica}",
            PersonalDocument(kind="medical", text=f"note-{self._counter}"),
        )
        self._counter += 1
        self.model.add(stamped.key())

    @rule(left=st.integers(0, 2), right=st.integers(0, 2))
    def sync(self, left, right):
        if left == right:
            return
        badge_sync(self.fleet, self.replicas[left], self.replicas[right])

    @invariant()
    def replicas_never_invent_documents(self):
        for replica in self.replicas:
            held = {stamped.key() for stamped in replica.documents()}
            assert held <= self.model

    @invariant()
    def per_source_counters_are_dense(self):
        """A replica holding (s, n) holds every (s, m) for m < n... only at
        the source replica; couriers carry whole suffixes, so what each
        replica holds per source is always a prefix-contiguous range."""
        for replica in self.replicas:
            per_source: dict[str, list[int]] = {}
            for stamped in replica.documents():
                per_source.setdefault(stamped.source, []).append(
                    stamped.counter
                )
            for counters in per_source.values():
                counters.sort()
                assert counters == list(range(len(counters)))

    def teardown(self):
        # Final convergence check: a full round of syncs equalizes all.
        for left in range(3):
            for right in range(left + 1, 3):
                badge_sync(self.fleet, self.replicas[left], self.replicas[right])
        badge_sync(self.fleet, self.replicas[0], self.replicas[1])
        keys = [
            {stamped.key() for stamped in replica.documents()}
            for replica in self.replicas
        ]
        assert keys[0] == keys[1] == keys[2] == self.model


SyncMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
TestSyncStateful = SyncMachine.TestCase


class RamMachine(RuleBasedStateMachine):
    """The RAM arena's accounting can never drift or go negative."""

    handles = Bundle("handles")

    def __init__(self) -> None:
        super().__init__()
        self.ram = RamArena(10_000)
        self.model: dict[int, int] = {}

    @rule(target=handles, size=st.integers(0, 2000))
    def allocate(self, size):
        from repro.errors import RamBudgetExceeded

        try:
            handle = self.ram.allocate(size, tag="stateful")
        except RamBudgetExceeded:
            assert sum(self.model.values()) + size > 10_000
            return None
        self.model[handle] = size
        return handle

    @rule(handle=handles)
    def free(self, handle):
        if handle is None or handle not in self.model:
            return
        self.ram.free(handle)
        del self.model[handle]

    @rule(handle=handles, new_size=st.integers(0, 2000))
    def resize(self, handle, new_size):
        from repro.errors import RamBudgetExceeded

        if handle is None or handle not in self.model:
            return
        try:
            self.ram.resize(handle, new_size)
        except RamBudgetExceeded:
            grow = new_size - self.model[handle]
            assert sum(self.model.values()) + grow > 10_000
            return
        self.model[handle] = new_size

    @invariant()
    def in_use_matches_model(self):
        assert self.ram.in_use == sum(self.model.values())
        assert 0 <= self.ram.in_use <= 10_000
        assert self.ram.high_water >= self.ram.in_use


RamMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestRamStateful = RamMachine.TestCase
