"""Tests for generalization, k-anonymity and the distributed variant."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError, QueryError
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.ppdp.generalize import (
    QuasiIdentifier,
    RangeHierarchy,
    TreeHierarchy,
    age_hierarchy,
    city_hierarchy,
    generalize_record,
    lattice_levels,
)
from repro.ppdp.kanon import (
    anonymize_centralized,
    anonymize_with_tokens,
    equivalence_classes,
    is_k_anonymous,
    l_diversity,
)
from repro.ppdp.metrics import (
    average_class_ratio,
    discernibility,
    generalization_height,
)
from repro.workloads.people import PersonRecord, generate_population

QIS = [
    QuasiIdentifier("age", age_hierarchy()),
    QuasiIdentifier("city", city_hierarchy()),
]


def profile_records(num_people: int, seed: int = 3) -> list[PersonRecord]:
    population = generate_population(num_people, seed=seed)
    return [records[1] for records in population]  # health records


class TestHierarchies:
    def test_age_levels(self):
        h = age_hierarchy()
        assert h.generalize(37, 0) == "37"
        assert h.generalize(37, 1) == "35-39"
        assert h.generalize(37, 2) == "30-39"
        assert h.generalize(37, 3) == "25-49"
        assert h.generalize(37, 4) == "*"

    def test_city_levels(self):
        h = city_hierarchy()
        assert h.generalize("lyon", 0) == "lyon"
        assert h.generalize("lyon", 1) == "south"
        assert h.generalize("lille", 1) == "north"
        assert h.generalize("lyon", 2) == "*"

    def test_level_bounds_checked(self):
        with pytest.raises(QueryError, match="out of range"):
            age_hierarchy().generalize(30, 9)

    def test_range_hierarchy_validation(self):
        with pytest.raises(QueryError):
            RangeHierarchy("x", widths=[2, 4])
        with pytest.raises(QueryError):
            RangeHierarchy("x", widths=[1, 5, 5])

    def test_tree_unknown_value(self):
        h = TreeHierarchy("t", levels=[{"a": "top"}])
        with pytest.raises(QueryError, match="no level-1 ancestor"):
            h.generalize("zzz", 1)

    def test_lattice_order_most_precise_first(self):
        vectors = lattice_levels(QIS)
        assert vectors[0] == (0, 0)
        assert vectors[-1] == (4, 2)
        sums = [sum(v) for v in vectors]
        assert sums == sorted(sums)


class TestKAnonymityCore:
    def test_equivalence_classes_and_check(self):
        records = [
            PersonRecord({"age": 30, "city": "lyon", "diagnosis": "flu"}),
            PersonRecord({"age": 31, "city": "lyon", "diagnosis": "cold"}),
            PersonRecord({"age": 32, "city": "nice", "diagnosis": "flu"}),
        ]
        exact = equivalence_classes(records, QIS, (0, 0))
        assert not is_k_anonymous(exact, 2)
        coarse = equivalence_classes(records, QIS, (3, 1))
        assert is_k_anonymous(coarse, 3)  # all south, 25-49

    def test_l_diversity(self):
        records = [
            PersonRecord({"age": 30, "city": "lyon", "diagnosis": "flu"}),
            PersonRecord({"age": 31, "city": "lyon", "diagnosis": "flu"}),
        ]
        assert l_diversity(records, QIS, (4, 2), "diagnosis") == 1
        records.append(
            PersonRecord({"age": 33, "city": "lyon", "diagnosis": "cold"})
        )
        assert l_diversity(records, QIS, (4, 2), "diagnosis") == 2


class TestCentralized:
    def test_result_is_k_anonymous(self):
        records = profile_records(60)
        for k in (2, 5, 10):
            result = anonymize_centralized(records, QIS, "diagnosis", k)
            assert result.k_of() >= k
            assert len(result.records) == len(records)

    def test_minimality_in_lattice_order(self):
        """No vector earlier in the lattice order satisfies k."""
        records = profile_records(50)
        result = anonymize_centralized(records, QIS, "diagnosis", 4)
        for levels in lattice_levels(QIS):
            if levels == result.levels:
                break
            assert not is_k_anonymous(
                equivalence_classes(records, QIS, levels), 4
            )

    def test_higher_k_more_general(self):
        records = profile_records(80)
        low = anonymize_centralized(records, QIS, "diagnosis", 2)
        high = anonymize_centralized(records, QIS, "diagnosis", 20)
        assert generalization_height(high, QIS) >= generalization_height(low, QIS)

    def test_impossible_k_raises(self):
        records = profile_records(5)
        with pytest.raises(ProtocolError, match="no generalization"):
            anonymize_centralized(records, QIS, "diagnosis", 10)

    def test_invalid_k(self):
        with pytest.raises(ProtocolError):
            anonymize_centralized(profile_records(5), QIS, "diagnosis", 0)


class TestDistributedEqualsCentralized:
    def test_same_table_and_levels(self):
        records = profile_records(40, seed=9)
        nodes = [PdsNode(i, [record]) for i, record in enumerate(records)]
        fleet = TokenFleet(seed=4)
        central = anonymize_centralized(records, QIS, "diagnosis", 5)
        distributed = anonymize_with_tokens(
            nodes, fleet, QIS, "diagnosis", 5, rng=random.Random(1)
        )
        assert distributed.levels == central.levels
        assert distributed.records == central.records
        assert distributed.equivalence_classes == central.equivalence_classes

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=5, deadline=None)
    def test_property_distributed_k_holds(self, k):
        records = profile_records(30, seed=11)
        nodes = [PdsNode(i, [record]) for i, record in enumerate(records)]
        result = anonymize_with_tokens(
            nodes, TokenFleet(seed=5), QIS, "diagnosis", k,
            rng=random.Random(2),
        )
        assert result.k_of() >= k


class TestMetrics:
    def test_height_bounds(self):
        records = profile_records(60)
        result = anonymize_centralized(records, QIS, "diagnosis", 2)
        assert 0.0 <= generalization_height(result, QIS) <= 1.0

    def test_discernibility_grows_with_k(self):
        records = profile_records(80)
        low = anonymize_centralized(records, QIS, "diagnosis", 2)
        high = anonymize_centralized(records, QIS, "diagnosis", 20)
        assert discernibility(high) >= discernibility(low)

    def test_average_class_ratio(self):
        records = profile_records(60)
        result = anonymize_centralized(records, QIS, "diagnosis", 3)
        assert average_class_ratio(result, 3) >= 1.0


class TestLDiversityEnforcement:
    def test_enforced_result_is_l_diverse(self):
        records = profile_records(80)
        result = anonymize_centralized(records, QIS, "diagnosis", k=3, l=3)
        achieved = l_diversity(records, QIS, result.levels, "diagnosis")
        assert achieved >= 3
        assert result.k_of() >= 3

    def test_l_can_force_extra_generalization(self):
        records = profile_records(80)
        plain = anonymize_centralized(records, QIS, "diagnosis", k=2)
        diverse = anonymize_centralized(records, QIS, "diagnosis", k=2, l=4)
        plain_l = l_diversity(records, QIS, plain.levels, "diagnosis")
        if plain_l < 4:  # only then must the recoding move up the lattice
            assert sum(diverse.levels) > sum(plain.levels)
        assert l_diversity(records, QIS, diverse.levels, "diagnosis") >= 4

    def test_impossible_l_raises(self):
        # Only one distinct sensitive value in the data: l=2 unreachable.
        records = [
            PersonRecord({"age": 20 + i, "city": "lyon", "diagnosis": "flu"})
            for i in range(10)
        ]
        with pytest.raises(ProtocolError):
            anonymize_centralized(records, QIS, "diagnosis", k=2, l=2)

    def test_invalid_l(self):
        with pytest.raises(ProtocolError):
            anonymize_centralized(profile_records(10), QIS, "diagnosis", 2, l=0)
