"""The async driver's correctness anchor: same answers as the synchronous
[TNP14] drivers, on the same seeds, over a lossy churning network.

Exactly-once collection (retransmit + SSI dedup) plus deterministic
per-partition aggregation plus commutative merging means the asynchronous
answer must *equal* the synchronous one — message loss, node churn and
token walkaways included. COUNT answers are compared exactly (integer-valued
floats survive any summation order); SUM/AVG use approx.
"""

import random

import pytest

from repro.errors import ProtocolError
from repro.globalq.async_protocol import (
    FAMILIES,
    HISTOGRAM_BASED,
    NOISE_BASED,
    SECURE_AGGREGATION,
    AsyncGlobalQuery,
)
from repro.globalq.histogram import EquiDepthBucketizer, HistogramProtocol
from repro.globalq.noise import WHITE_NOISE, NoisePlan, NoiseProtocol
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery, plaintext_answer
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.globalq.ssi import SsiBehavior
from repro.net import ChurnModel, LinkProfile
from repro.workloads.people import CITIES, generate_population

COUNT_QUERY = AggregateQuery.count(group_by="city", where=(("kind", "profile"),))
NOISE = NoisePlan(WHITE_NOISE, 1.0, tuple(CITIES))
LOSSY = LinkProfile(latency_ms=10.0, jitter_ms=5.0, loss=0.05)
CHURNY = ChurnModel(offline_fraction=0.10, mean_online=0.03)


def make_nodes(num_pds: int, seed: int = 41):
    population = generate_population(num_pds, seed=seed, skew=1.1)
    return population, [
        PdsNode(i, records) for i, records in enumerate(population)
    ]


def prior():
    return {city: 1.0 / (rank + 1) for rank, city in enumerate(CITIES)}


def async_driver(family: str, **overrides) -> AsyncGlobalQuery:
    kwargs = dict(
        noise=NOISE if family == NOISE_BASED else None,
        bucketizer=(
            EquiDepthBucketizer(prior(), 3)
            if family == HISTOGRAM_BASED
            else None
        ),
        rng=random.Random(1),
        link=LOSSY,
        churn=CHURNY,
        token_failure_rate=0.1,
    )
    kwargs.update(overrides)
    return AsyncGlobalQuery(family, TokenFleet(3), **kwargs)


def sync_protocol(family: str):
    if family == NOISE_BASED:
        return NoiseProtocol(TokenFleet(3), noise=NOISE, rng=random.Random(1))
    if family == HISTOGRAM_BASED:
        return HistogramProtocol(
            TokenFleet(3), EquiDepthBucketizer(prior(), 3),
            rng=random.Random(1),
        )
    return SecureAggregationProtocol(TokenFleet(3), rng=random.Random(1))


class TestAsyncEqualsSync:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_count_exact_under_loss_and_churn(self, family):
        population, nodes = make_nodes(120)
        sync_report = sync_protocol(family).run(nodes, COUNT_QUERY)
        report = async_driver(family).run_sync(nodes, COUNT_QUERY)
        assert report.result == sync_report.result
        assert report.result == plaintext_answer(population, COUNT_QUERY)
        assert report.protocol.startswith(f"async-{family}")

    @pytest.mark.parametrize(
        "query",
        [
            AggregateQuery.sum(
                "kwh", group_by="city", where=(("kind", "energy"),)
            ),
            AggregateQuery.avg("age", where=(("kind", "profile"),)),
        ],
    )
    def test_sum_avg_match_plaintext(self, query):
        population, nodes = make_nodes(100)
        report = async_driver(SECURE_AGGREGATION).run_sync(nodes, query)
        expected = plaintext_answer(population, query)
        assert report.result.keys() == expected.keys()
        for group, value in expected.items():
            assert report.result[group] == pytest.approx(value)

    def test_perfect_network_no_drops_no_retries(self):
        population, nodes = make_nodes(60)
        report = async_driver(
            NOISE_BASED,
            link=LinkProfile(),
            churn=None,
            token_failure_rate=0.0,
        ).run_sync(nodes, COUNT_QUERY)
        assert report.result == plaintext_answer(population, COUNT_QUERY)
        metrics = report.net_metrics
        assert metrics.frames_dropped == 0
        assert report.aggregator_retries == 0

    def test_acceptance_scale_2000_nodes(self):
        """The PR's acceptance bar: 2000 nodes, 5% loss, 10% churn —
        the async answer equals the synchronous answer exactly."""
        population, nodes = make_nodes(2000)
        sync_report = NoiseProtocol(
            TokenFleet(3), noise=NOISE, rng=random.Random(1)
        ).run(nodes, COUNT_QUERY)
        report = async_driver(
            NOISE_BASED, num_tokens=16, deadline=120.0
        ).run_sync(nodes, COUNT_QUERY)
        assert report.result == sync_report.result
        assert report.result == plaintext_answer(population, COUNT_QUERY)
        assert report.num_pds == 2000
        metrics = report.net_metrics
        # The lossy churning network really did lose traffic...
        assert metrics.drops["loss"] > 0
        assert metrics.drops["offline"] > 0
        # ...and every retransmission is visible in the send counters.
        assert metrics.frames_sent > metrics.frames_delivered


class TestNetworkEffects:
    def test_loss_costs_retransmissions(self):
        _, nodes = make_nodes(80)
        clean = async_driver(
            NOISE_BASED, link=LinkProfile(), churn=None,
            token_failure_rate=0.0,
        ).run_sync(nodes, COUNT_QUERY)
        lossy = async_driver(
            NOISE_BASED, link=LinkProfile(loss=0.2), churn=None,
            token_failure_rate=0.0, rng=random.Random(1),
        ).run_sync(nodes, COUNT_QUERY)
        assert lossy.result == clean.result
        assert (
            lossy.net_metrics.frames_sent > clean.net_metrics.frames_sent
        )

    def test_token_walkaways_force_reassignment(self):
        _, nodes = make_nodes(80)
        report = async_driver(
            SECURE_AGGREGATION,
            link=LinkProfile(),
            churn=None,
            token_failure_rate=0.6,
            partition_size=8,
            assign_timeout=0.05,
        ).run_sync(nodes, COUNT_QUERY)
        assert report.aggregator_retries > 0
        assert report.result == plaintext_answer(
            generate_population(80, seed=41, skew=1.1), COUNT_QUERY
        )

    def test_comm_accounting_flows_into_report(self):
        _, nodes = make_nodes(50)
        report = async_driver(NOISE_BASED).run_sync(nodes, COUNT_QUERY)
        metrics = report.net_metrics
        assert report.comm_bytes == metrics.comm.bytes > 0
        assert report.comm_messages == metrics.comm.messages > 0
        assert metrics.latency_by_phase["collection"].count > 0

    def test_deadline_enforced(self):
        _, nodes = make_nodes(30)
        driver = async_driver(
            NOISE_BASED, num_tokens=1, token_failure_rate=0.0,
            deadline=0.001,
        )
        with pytest.raises((ProtocolError, TimeoutError)):
            driver.run_sync(nodes, COUNT_QUERY)


class TestWeaklyMaliciousSsi:
    def test_forgeries_detected_query_completes(self):
        """A covert SSI injecting forged blobs cannot break completion,
        and every forgery fails authentication inside a token."""
        _, nodes = make_nodes(60)
        report = async_driver(
            SECURE_AGGREGATION,
            ssi_behavior=SsiBehavior(forge_count=5),
            token_failure_rate=0.0,
        ).run_sync(nodes, COUNT_QUERY)
        assert report.integrity_failures == 5

    def test_drops_shrink_the_answer_but_never_hang(self):
        population, nodes = make_nodes(60)
        report = async_driver(
            NOISE_BASED,
            ssi_behavior=SsiBehavior(drop_fraction=0.3),
            token_failure_rate=0.0,
        ).run_sync(nodes, COUNT_QUERY)
        truth = plaintext_answer(population, COUNT_QUERY)
        assert sum(report.result.values()) < sum(truth.values())

    def test_duplicates_detected(self):
        _, nodes = make_nodes(60)
        report = async_driver(
            SECURE_AGGREGATION,
            ssi_behavior=SsiBehavior(duplicate_fraction=0.5),
            token_failure_rate=0.0,
        ).run_sync(nodes, COUNT_QUERY)
        assert report.duplicates_detected > 0


class TestDriverValidation:
    def test_unknown_family(self):
        with pytest.raises(ProtocolError, match="unknown protocol family"):
            AsyncGlobalQuery("quantum", TokenFleet(3))

    def test_histogram_needs_bucketizer(self):
        with pytest.raises(ProtocolError, match="bucketizer"):
            AsyncGlobalQuery(HISTOGRAM_BASED, TokenFleet(3))

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            AsyncGlobalQuery(
                NOISE_BASED, TokenFleet(3), token_failure_rate=1.0
            )
        with pytest.raises(ValueError):
            AsyncGlobalQuery(NOISE_BASED, TokenFleet(3), num_tokens=0)
