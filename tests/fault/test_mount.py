"""Crash-recovery unit tests: power_cycle, mount scan, and structure remounts."""

import pytest

from repro.errors import PowerLossError, RecoveryError, StorageError
from repro.fault import FaultPlan
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.ram import RamArena
from repro.pds.audit import AuditLog
from repro.relational import KeyIndex, reorganize_durably, remount_index
from repro.storage.cache import PageCache
from repro.storage.hashbucket import ChainedBucketLog
from repro.storage.log import PageLog, RecordAddress, RecordLog
from repro.storage.recovery import Manifest, mount

GEOM = FlashGeometry(page_size=128, pages_per_block=4, num_blocks=64, spare_size=64)


def fresh() -> tuple[NandFlash, BlockAllocator]:
    flash = NandFlash(GEOM)
    return flash, BlockAllocator(flash)


class TestPowerCycle:
    def test_silicon_survives_volatile_state_dies(self):
        flash, allocator = fresh()
        log = PageLog(allocator, "keep")
        for i in range(5):
            log.append_page(bytes([i]) * 16)
        allocator.free(log._blocks[0])  # wear one block
        fired = []
        flash.subscribe(on_program=fired.append, on_erase=fired.append)
        stats_before = flash.stats.snapshot()
        erase_counts = [flash.erase_count(b) for b in range(GEOM.num_blocks)]

        flash.power_cycle()

        assert [flash.erase_count(b) for b in range(GEOM.num_blocks)] == erase_counts
        assert flash.stats.snapshot() == stats_before  # the meter is hardware
        # Observers are RAM: reprogramming after the cycle fires nothing.
        flash.program_page(GEOM.first_page_of(10), b"post" * 4)
        assert fired == []

    def test_write_cursor_recomputed_from_pages(self):
        flash, allocator = fresh()
        log = PageLog(allocator, "cursor")
        log.append_page(b"a" * 8)
        log.append_page(b"b" * 8)
        block = log._blocks[0]
        flash.power_cycle()
        assert flash.next_free_page(block) == 2

    def test_programmed_empty_page_is_not_erased(self):
        """Regression: erased and programmed-empty pages both read b""."""
        flash, allocator = fresh()
        log = PageLog(allocator, "empties")
        log.append_page(b"")  # legitimate empty log page
        log.append_page(b"tail")
        page_no = log._page_numbers[0]
        flash.power_cycle()
        assert not flash.is_erased(page_no)
        assert flash.read_page(page_no) == b""
        # The cursor must land *after* both pages, not on the empty one.
        assert flash.next_free_page(GEOM.block_of(page_no)) == 2

    def test_programmed_empty_page_survives_remount(self):
        flash, allocator = fresh()
        log = PageLog(allocator, "empties")
        log.append_page(b"")
        log.append_page(b"tail")
        flash.power_cycle()
        session = mount(flash)
        recovered = session.claim_page_log("empties")
        assert len(recovered) == 2
        assert recovered.read_page(0) == b""
        assert recovered.read_page(1) == b"tail"
        recovered.append_page(b"more")  # continues in the same block
        assert recovered.read_page(2) == b"more"
        assert recovered.num_blocks == 1


class TestMountScan:
    def test_page_log_roundtrip_with_meta(self):
        flash, allocator = fresh()
        log = PageLog(allocator, "pages")
        for i in range(6):  # spans two blocks
            log.append_page(bytes([i]) * 20, meta=i * 3)
        flash.power_cycle()
        session = mount(flash)
        recovered = session.claim_page_log("pages")
        assert len(recovered) == 6
        assert [recovered.read_page(i)[0] for i in range(6)] == list(range(6))
        assert [recovered.page_meta(i) for i in range(6)] == [i * 3 for i in range(6)]

    def test_mount_costs_one_read_per_programmed_page(self):
        flash, allocator = fresh()
        log = PageLog(allocator, "cost")
        for i in range(7):
            log.append_page(bytes([i]) * 8)
        flash.power_cycle()
        before = flash.stats.page_reads
        session = mount(flash)
        assert flash.stats.page_reads - before == 7
        assert session.report.flash_reads == 7
        assert session.report.pages_scanned == 7

    def test_record_log_remount_drops_buffered_tail(self):
        flash, allocator = fresh()
        log = RecordLog(allocator, "records")
        addresses = [log.append(b"r%02d" % i) for i in range(30)]
        log.flush()
        log.append(b"never-durable")  # stays in the RAM write buffer
        flash.power_cycle()
        session = mount(flash)
        recovered = session.claim_record_log("records")
        assert len(recovered) == 30
        # Addresses are stable across the crash: position i is position i.
        for i, address in enumerate(addresses):
            assert recovered.read(address) == b"r%02d" % i
        assert sum(
            recovered.records_on_page(p) for p in range(recovered.page_count)
        ) == 30

    def test_torn_tail_is_truncated_and_append_continues(self):
        flash, allocator = fresh()
        log = RecordLog(allocator, "torn")
        for i in range(10):
            log.append(b"keep%02d" % i)
        log.flush()
        durable_pages = log.page_count
        FaultPlan(kill_at=0, seed=11).attach(flash)
        log.append(b"doomed-record-that-fills-enough-bytes" * 2)
        with pytest.raises(PowerLossError):
            log.flush()
        flash.power_cycle()
        session = mount(flash)
        assert session.report.torn_pages == 1
        recovered = session.claim_record_log("torn")
        assert recovered.page_count == durable_pages
        assert [r for _, r in recovered.scan()] == [
            b"keep%02d" % i for i in range(10)
        ]
        # Appends skip the junk slot the torn page occupies.
        recovered.append(b"after-crash")
        recovered.flush()
        assert [r for _, r in recovered.scan()][-1] == b"after-crash"

    def test_corrupt_page_truncates_to_durable_prefix(self):
        flash, allocator = fresh()
        log = PageLog(allocator, "crc")
        for i in range(4):
            log.append_page(bytes([65 + i]) * 12)
        victim = log._page_numbers[2]
        flash.power_cycle()
        # Silent corruption of page 2's payload: CRC must catch it.
        flash._pages[victim] = bytes([0xFF]) + flash._pages[victim][1:]
        session = mount(flash)
        assert session.report.corrupt_pages == 1
        assert session.report.truncated_pages == 1  # valid page 3 is gapped
        recovered = session.claim_page_log("crc")
        assert len(recovered) == 2
        assert recovered.read_page(1) == b"B" * 12

    def test_bit_flips_are_detected_by_mount(self):
        flash, allocator = fresh()
        FaultPlan(bit_flip_rate=1.0, seed=21).attach(flash)
        log = PageLog(allocator, "flips")
        for i in range(3):
            log.append_page(bytes(range(30)))
        flash.power_cycle()
        session = mount(flash)
        assert session.report.corrupt_pages == 3
        assert session.claim_page_log("flips").num_blocks == 0

    def test_next_seq_resumes_above_truncated_pages(self):
        flash, allocator = fresh()
        log = PageLog(allocator, "seq")
        for i in range(3):
            log.append_page(bytes([i]) * 8)
        victim = log._page_numbers[1]
        flash.power_cycle()
        flash._pages[victim] = b"\x00" + flash._pages[victim][1:]
        session = mount(flash)
        recovered = session.claim_page_log("seq")
        assert len(recovered) == 1
        # Re-appended pages must not collide with the stranded seq-2 page.
        assert recovered._next_seq == 3

    def test_finish_reclaims_unclaimed_blocks(self):
        flash, allocator = fresh()
        keep = RecordLog(allocator, "keep")
        debris = RecordLog(allocator, "debris")
        for i in range(6):
            keep.append(b"k%d" % i)
            debris.append(b"d%d" % i)
        keep.flush()
        debris.flush()
        flash.power_cycle()
        session = mount(flash)
        session.claim_record_log("keep")
        free_before = session.allocator.free_blocks
        report = session.finish()
        assert report.reclaimed_blocks == 1
        assert session.allocator.free_blocks == free_before + 1
        assert session.allocator.allocated_blocks == 1
        with pytest.raises(RecoveryError):
            session.claim("late")

    def test_second_mount_sees_only_claimed_logs(self):
        flash, allocator = fresh()
        keep = RecordLog(allocator, "keep")
        debris = RecordLog(allocator, "debris")
        keep.append(b"k")
        debris.append(b"d")
        keep.flush()
        debris.flush()
        flash.power_cycle()
        session = mount(flash)
        session.claim_record_log("keep")
        session.finish()
        again = mount(flash)
        assert again.epochs_of("keep") == [0]
        assert again.epochs_of("debris") == []


class TestRecordLogDrop:
    def test_drop_resets_per_page_tallies(self):
        """Regression: drop() used to leave _records_per_page populated."""
        flash, allocator = fresh()
        log = RecordLog(allocator, "reuse")
        stale = [log.append(b"x%02d" % i) for i in range(30)]
        log.flush()
        assert log.page_count >= 2
        log.drop()
        assert log._records_per_page == []
        with pytest.raises(StorageError):
            log.records_on_page(0)
        with pytest.raises(StorageError):
            log.read(stale[0])

    def test_drop_then_reuse_name_remounts_cleanly(self):
        flash, allocator = fresh()
        log = RecordLog(allocator, "cycle")
        for i in range(20):
            log.append(b"old%02d" % i)
        log.flush()
        log.drop()
        log = RecordLog(allocator, "cycle")
        log.append(b"new")
        log.flush()
        flash.power_cycle()
        session = mount(flash)
        recovered = session.claim_record_log("cycle")
        assert [r for _, r in recovered.scan()] == [b"new"]
        assert recovered.records_on_page(0) == 1


class TestWearLevelling:
    def test_allocator_seeds_priorities_from_real_wear(self):
        flash = NandFlash(FlashGeometry(page_size=64, pages_per_block=2, num_blocks=8))
        for _ in range(3):
            flash.erase_block(0)
        allocator = BlockAllocator(flash)
        order = [allocator.allocate() for _ in range(8)]
        assert order[-1] == 0  # the worn block is handed out last

    def test_lazy_refresh_requeues_stale_priorities(self):
        """Regression: a block worn while sitting in the free heap must not
        be allocated at its stale (lower) priority."""
        flash = NandFlash(FlashGeometry(page_size=64, pages_per_block=2, num_blocks=8))
        allocator = BlockAllocator(flash)
        for _ in range(4):
            flash.erase_block(5)  # wears behind the allocator's back
        order = [allocator.allocate() for _ in range(8)]
        assert order[-1] == 5

    def test_churn_keeps_wear_spread_tight(self):
        flash = NandFlash(FlashGeometry(page_size=64, pages_per_block=2, num_blocks=8))
        allocator = BlockAllocator(flash)
        for _ in range(5 * 8):
            block = allocator.allocate()
            flash.program_page(flash.geometry.first_page_of(block), b"w")
            allocator.free(block)
        low, high = allocator.wear_spread()
        assert high - low <= 1


class TestCacheAcrossPowerCycle:
    def test_cache_never_serves_stale_after_power_cycle(self):
        flash, allocator = fresh()
        ram = RamArena(64 * 1024)
        cache = PageCache(flash, 4, ram=ram)
        allocator.attach_cache(cache)
        log = PageLog(allocator, "hot")
        log.append_page(b"old-bytes")
        page_no = log._page_numbers[0]
        assert cache.read_page(page_no) == b"old-bytes"
        assert cache.cached_pages == 1
        ram_before = ram.in_use

        flash.power_cycle()

        assert cache.cached_pages == 0
        assert not cache.enabled  # no invalidation feed -> self-disabled
        assert ram.in_use < ram_before  # frames returned to the arena
        # The same physical page now holds different bytes; a read through
        # the dead cache must reach the chip, never RAM.
        flash.erase_block(GEOM.block_of(page_no))
        flash.program_page(page_no, b"new-bytes")
        assert cache.read_page(page_no) == b"new-bytes"

    def test_pins_evaporate_with_power(self):
        flash, _ = fresh()
        cache = PageCache(flash, 4)
        flash.program_page(0, b"pinned")
        cache.pin(0)
        assert cache.pinned_pages == 1
        flash.power_cycle()
        assert cache.pinned_pages == 0
        with pytest.raises(StorageError):
            cache.unpin(0)


class TestManifest:
    def test_records_survive_crash(self):
        flash, allocator = fresh()
        manifest = Manifest.create(allocator)
        manifest.append("reorg-commit", name="age", epoch=1)
        manifest.append("search-checkpoint", docs=12)
        flash.power_cycle()
        session = mount(flash)
        recovered = Manifest.remount(session)
        assert recovered.committed_epoch("age") == 1
        assert recovered.last("search-checkpoint") == {
            "docs": 12,
            "kind": "search-checkpoint",
        }
        recovered.append("reorg-commit", name="age", epoch=2)
        assert recovered.committed_epoch("age") == 2

    def test_torn_commit_record_is_invisible(self):
        flash, allocator = fresh()
        manifest = Manifest.create(allocator)
        manifest.append("search-checkpoint", docs=5)
        FaultPlan(kill_at=0, seed=13).attach(flash)
        with pytest.raises(PowerLossError):
            manifest.append("reorg-commit", name="age", epoch=1)
        flash.power_cycle()
        session = mount(flash)
        recovered = Manifest.remount(session)
        assert recovered.committed_epoch("age") == 0
        assert [r["kind"] for r in recovered.records()] == ["search-checkpoint"]
        # The manifest stays appendable past the torn slot.
        recovered.append("reorg-commit", name="age", epoch=1)
        assert recovered.committed_epoch("age") == 1


class TestChainedBucketRemount:
    def test_chains_and_counts_survive(self):
        flash, allocator = fresh()
        buckets = ChainedBucketLog(allocator, 4, name="chains")
        entries = {b: [b"e-%d-%d" % (b, i) for i in range(9)] for b in range(4)}
        for b, items in entries.items():
            for item in items:
                buckets.append(b, item)
        buckets.flush_all()
        expected = {b: list(buckets.iter_bucket(b)) for b in range(4)}
        flash.power_cycle()
        session = mount(flash)
        recovered = ChainedBucketLog.remount(session, 4, name="chains")
        assert recovered.entry_count == buckets.entry_count
        for b in range(4):
            assert list(recovered.iter_bucket(b)) == expected[b]

    def test_oversized_bucket_meta_rejected(self):
        flash, allocator = fresh()
        buckets = ChainedBucketLog(allocator, 8, name="chains")
        buckets.append(7, b"entry")
        buckets.flush_all()
        flash.power_cycle()
        session = mount(flash)
        with pytest.raises(RecoveryError, match="claims bucket"):
            ChainedBucketLog.remount(session, 4, name="chains")


class TestKeyIndexRemount:
    def test_lost_summaries_are_recomputed(self):
        """Keys pages durable, their Bloom summaries still in RAM: the
        remount must re-derive the summaries, not lose the pages."""
        flash, allocator = fresh()
        index = KeyIndex("age", allocator, bits_per_key=8.0)
        for i in range(30):
            index.insert(i % 5, i)
        index.keys.flush()  # summaries stay staged: crash before their flush
        expected = {v: index.lookup(v) for v in range(5)}
        flash.power_cycle()
        session = mount(flash)
        recovered = KeyIndex.remount(session, "age", bits_per_key=8.0)
        session.finish()
        assert {v: recovered.lookup(v) for v in range(5)} == expected

    def test_stale_summary_never_probes_past_durable_keys(self):
        """A flushed summary can outlive its (corrupted) keys page; the
        lookup must skip it instead of probing a truncated position."""
        flash, allocator = fresh()
        index = KeyIndex("age", allocator, bits_per_key=8.0)
        for i in range(30):
            index.insert(i % 5, i)
        index.flush()
        victim = index.keys.pages._page_numbers[-1]
        flash.power_cycle()
        flash._pages[victim] = b"\x00" + flash._pages[victim][1:]
        session = mount(flash)
        assert session.report.corrupt_pages == 1
        recovered = KeyIndex.remount(session, "age", bits_per_key=8.0)
        session.finish()
        durable = recovered.entry_count
        assert durable < 30  # the corrupted tail page really lost entries
        for v in range(5):
            assert recovered.lookup(v) == [
                r for r in range(durable) if r % 5 == v
            ]


class TestDurableReorganization:
    def test_commit_then_crash_mid_drop_lands_on_new_epoch(self):
        flash, allocator = fresh()
        ram = RamArena(1 << 20)
        manifest = Manifest.create(allocator)
        index = KeyIndex("age", allocator, bits_per_key=8.0)
        for i in range(40):
            index.insert(i % 7, i)
        index.flush()
        expected = {v: index.lookup(v) for v in range(7)}

        # First find out how many IOs the reorganization performs.
        probe_flash = NandFlash(GEOM)
        probe_alloc = BlockAllocator(probe_flash)
        probe_manifest = Manifest.create(probe_alloc)
        probe = KeyIndex("age", probe_alloc, bits_per_key=8.0)
        for i in range(40):
            probe.insert(i % 7, i)
        probe.flush()
        before = probe_flash.stats.page_programs + probe_flash.stats.block_erases
        reorganize_durably(probe, probe_alloc, RamArena(1 << 20), probe_manifest,
                           sort_buffer_bytes=256)
        total = (probe_flash.stats.page_programs + probe_flash.stats.block_erases
                 - before)

        # Kill on the very last erase: the commit is durable, the source
        # drop is interrupted halfway.
        FaultPlan(kill_at=total - 1, seed=3).attach(flash)
        with pytest.raises(PowerLossError):
            reorganize_durably(index, allocator, ram, manifest,
                               sort_buffer_bytes=256)

        flash.power_cycle()
        session = mount(flash)
        manifest2 = Manifest.remount(session)
        assert manifest2.committed_epoch("age") == 1
        sorted_index, delta = remount_index(session, manifest2, "age",
                                            bits_per_key=8.0)
        session.finish()
        assert sorted_index is not None and sorted_index.epoch == 1
        assert delta.epoch == 1
        got = {v: sorted(sorted_index.lookup(v) + delta.lookup(v))
               for v in range(7)}
        assert got == expected
        # Exactly one incarnation of the keys log survives the cleanup.
        again = mount(flash)
        assert again.epochs_of("age:keys") == []  # fresh delta never flushed
        assert again.epochs_of("age:sorted") == [1]

    def test_crash_before_commit_keeps_old_epoch(self):
        flash, allocator = fresh()
        manifest = Manifest.create(allocator)
        index = KeyIndex("age", allocator, bits_per_key=8.0)
        for i in range(40):
            index.insert(i % 7, i)
        index.flush()
        expected = {v: index.lookup(v) for v in range(7)}
        FaultPlan(kill_at=4, seed=3).attach(flash)
        with pytest.raises(PowerLossError):
            reorganize_durably(index, allocator, RamArena(1 << 20), manifest,
                               sort_buffer_bytes=256)
        flash.power_cycle()
        session = mount(flash)
        manifest2 = Manifest.remount(session)
        assert manifest2.committed_epoch("age") == 0
        sorted_index, delta = remount_index(session, manifest2, "age",
                                            bits_per_key=8.0)
        report = session.finish()
        assert sorted_index is None
        assert {v: delta.lookup(v) for v in range(7)} == expected
        assert report.reclaimed_blocks >= 1  # the half-built run logs


class TestAuditLogRemount:
    def test_chain_survives_and_extends(self):
        flash, allocator = fresh()
        audit = AuditLog(allocator)
        for i in range(12):
            audit.record("alice", "owner", "read", f"doc:{i}", True)
        audit.flush()
        audit.record("alice", "owner", "read", "doc:lost", True)  # buffered
        head = audit.head_digest
        flash.power_cycle()
        session = mount(flash)
        recovered = AuditLog.remount(session)
        session.finish()
        assert recovered.count == 12
        assert recovered.head_digest != head  # the buffered entry is gone
        assert recovered.verify_chain(expected_count=12)
        recovered.record("alice", "owner", "read", "doc:new", True)
        recovered.flush()
        assert recovered.verify_chain(expected_count=13)
