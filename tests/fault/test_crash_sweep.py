"""The headline crash-recovery property: unplug at EVERY IO, lose nothing.

A mixed insert/query/reorganize workload runs against a small chip while a
silicon-level recorder tracks, after every program and erase, exactly which
records are durable. The sweep then re-runs the workload once per IO index
``k`` with a :class:`FaultPlan` that kills power at op ``k``, remounts from
flash alone, and asserts:

* no committed (page-flushed) record is lost,
* no torn record is visible,
* lookups are bit-identical to the durable subset of a never-crashed run,
* exactly one index epoch survives, and
* no flash block leaks (everything is claimed or reclaimed).

``FAULT_SMOKE=1`` (the CI fault-smoke job) samples every 7th crash point;
the full suite sweeps every single one.
"""

import dataclasses
import json
import os

import pytest

from repro.errors import PowerLossError
from repro.fault import FaultPlan
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.profiles import smart_usb_token
from repro.hardware.ram import RamArena
from repro.hardware.token import SecurePortableToken
from repro.pds.datamodel import PersonalDocument
from repro.pds.server import PersonalDataServer
from repro.relational import KeyIndex, remount_index, reorganize_durably
from repro.storage import pager
from repro.storage.log import RecordLog
from repro.storage.pager import PageHeader
from repro.storage.recovery import Manifest, mount

STRIDE = 7 if os.environ.get("FAULT_SMOKE") else 1

# ---------------------------------------------------------------------------
# Relational sweep: inserts + flushes + durable reorganization + delta.
# ---------------------------------------------------------------------------
GEOM = FlashGeometry(page_size=128, pages_per_block=4, num_blocks=160, spare_size=64)
KEYS = 7
PRE_INSERTS = [(i % KEYS, i) for i in range(40)]
DELTA_INSERTS = [(i % KEYS, i) for i in range(40, 60)]
DOCS = [b"doc-%02d" % i for i in range(60)]


class DurabilityRecorder:
    """Reconstructs, from silicon alone, what is durable after every IO.

    Subscribed to the chip's program/erase notifications, it decodes each
    freshly programmed page's spare header and accumulates, per log, the
    durable record counts — snapshotted after every op, so snapshot ``k-1``
    is exactly the durable state a crash at op ``k`` must recover.
    """

    def __init__(self, flash: NandFlash) -> None:
        self.flash = flash
        self._keys_id = pager.log_id_of("age:keys")
        self._docs_id = pager.log_id_of("documents")
        self._manifest_id = pager.log_id_of("manifest")
        self.keys_flushed: dict[int, int] = {}  # epoch -> durable entries
        self.docs_flushed = 0
        self.committed_epoch = 0
        self.snapshots: list[tuple[dict[int, int], int, int]] = []
        flash.subscribe(on_program=self._on_program, on_erase=self._on_erase)

    def _on_program(self, page_no: int) -> None:
        data = self.flash._pages[page_no]
        header = PageHeader.unpack(self.flash._spares[page_no])
        if header is not None:
            if header.log_id == self._keys_id:
                self.keys_flushed[header.epoch] = self.keys_flushed.get(
                    header.epoch, 0
                ) + len(pager.unpack_records(data))
            elif header.log_id == self._docs_id:
                self.docs_flushed += len(pager.unpack_records(data))
            elif header.log_id == self._manifest_id:
                record = json.loads(data)
                if record["kind"] == "reorg-commit" and record["name"] == "age":
                    self.committed_epoch = record["epoch"]
        self._snap()

    def _on_erase(self, block_no: int) -> None:
        self._snap()

    def _snap(self) -> None:
        self.snapshots.append(
            (dict(self.keys_flushed), self.docs_flushed, self.committed_epoch)
        )


def run_workload(flash: NandFlash):
    """Mixed workload: batched inserts, a durable reorg, delta inserts."""
    allocator = BlockAllocator(flash)
    manifest = Manifest.create(allocator)
    index = KeyIndex("age", allocator, bits_per_key=8.0)
    docs = RecordLog(allocator, "documents")
    for n, (value, rowid) in enumerate(PRE_INSERTS):
        index.insert(value, rowid)
        docs.append(DOCS[rowid])
        if n % 7 == 6:
            index.flush()
            docs.flush()
    index.flush()
    docs.flush()
    sorted_index, delta = reorganize_durably(
        index, allocator, RamArena(1 << 20), manifest, sort_buffer_bytes=256
    )
    for n, (value, rowid) in enumerate(DELTA_INSERTS):
        delta.insert(value, rowid)
        docs.append(DOCS[rowid])
        if n % 5 == 4:
            delta.flush()
            docs.flush()
    delta.flush()
    docs.flush()
    return sorted_index, delta, docs, manifest


def expected_lookups(snapshot) -> dict[int, list[int]]:
    """Durable query answers implied by one recorder snapshot."""
    keys_flushed, _, committed = snapshot
    if committed:
        entries = list(PRE_INSERTS) + DELTA_INSERTS[: keys_flushed.get(committed, 0)]
    else:
        entries = PRE_INSERTS[: keys_flushed.get(0, 0)]
    return {
        value: sorted(rowid for key, rowid in entries if key == value)
        for value in range(KEYS)
    }


@pytest.fixture(scope="module")
def reference():
    """One never-crashed run: op count, final answers, durability timeline."""
    flash = NandFlash(GEOM)
    recorder = DurabilityRecorder(flash)
    sorted_index, delta, docs, _ = run_workload(flash)
    final = {
        value: sorted(sorted_index.lookup(value) + delta.lookup(value))
        for value in range(KEYS)
    }
    return {
        "total_ops": len(recorder.snapshots),
        "final": final,
        "snapshots": recorder.snapshots,
    }


def crash_and_verify(k: int) -> None:
    flash = NandFlash(GEOM)
    recorder = DurabilityRecorder(flash)
    plan = FaultPlan(kill_at=k, seed=k).attach(flash)
    with pytest.raises(PowerLossError):
        run_workload(flash)
    assert plan.kills == 1, k
    snapshot = recorder.snapshots[-1] if k else ({}, 0, 0)
    flash.power_cycle()

    session = mount(flash)
    manifest = Manifest.remount(session)
    sorted_index, delta = remount_index(session, manifest, "age", bits_per_key=8.0)
    docs = session.claim_record_log("documents")
    report = session.finish()
    assert report.torn_pages <= 1, k

    # No committed record lost, no torn record visible: the recovered
    # documents log is byte-for-byte the durable prefix.
    keys_flushed, docs_flushed, committed = snapshot
    assert [record for _, record in docs.scan()] == DOCS[:docs_flushed], k

    # Exactly one consistent epoch.
    if committed:
        assert sorted_index is not None and sorted_index.epoch == committed, k
        assert delta.epoch == committed, k
    else:
        assert sorted_index is None, k
        assert delta.epoch == 0, k

    # Query results bit-identical to the durable subset of the clean run.
    expected = expected_lookups(snapshot)
    for value in range(KEYS):
        if sorted_index is None:
            got = delta.lookup(value)
        else:
            got = sorted(sorted_index.lookup(value) + delta.lookup(value))
        assert got == expected[value], (k, value)

    # No block leaks: after reclamation, every allocated block belongs to a
    # claimed log.
    expected_blocks = (
        manifest.pages.num_blocks
        + docs.pages.num_blocks
        + delta.keys.pages.num_blocks
        + delta.summaries.pages.num_blocks
    )
    if sorted_index is not None:
        expected_blocks += (
            sorted_index.sorted_log.num_blocks + sorted_index.tree_log.num_blocks
        )
    assert session.allocator.allocated_blocks == expected_blocks, k

    # A second mount must see only the claimed incarnations — the losing
    # epoch and every temp run log are gone from the silicon.
    again = mount(flash)
    live = committed
    wanted = [live] if keys_flushed.get(live, 0) else []
    assert again.epochs_of("age:keys") == wanted, k
    assert again.epochs_of("age:sorted") == ([live] if committed else []), k
    for temp in ("age:run0", "age:run1", "age:run2", "age:run3", "age:pass0"):
        assert again.epochs_of(temp) == [], (k, temp)


class TestCrashAtEveryIO:
    def test_clean_remount_is_bit_identical(self, reference):
        flash = NandFlash(GEOM)
        run_workload(flash)
        programmed = flash.stats.page_programs
        flash.power_cycle()
        before = flash.stats.page_reads
        session = mount(flash)
        # Mount cost: exactly one read per programmed page, never more.
        assert flash.stats.page_reads - before == session.report.pages_scanned
        assert session.report.pages_scanned <= programmed
        manifest = Manifest.remount(session)
        sorted_index, delta = remount_index(
            session, manifest, "age", bits_per_key=8.0
        )
        session.finish()
        got = {
            value: sorted(sorted_index.lookup(value) + delta.lookup(value))
            for value in range(KEYS)
        }
        assert got == reference["final"]

    def test_crash_at_every_program_and_erase(self, reference):
        total_ops = reference["total_ops"]
        assert total_ops > 40  # the workload is genuinely mixed
        for k in range(0, total_ops, STRIDE):
            crash_and_verify(k)


# ---------------------------------------------------------------------------
# PDS-level sweep: ingest + checkpoint + forget across the full stack.
# ---------------------------------------------------------------------------
PDS_GEOM = FlashGeometry(page_size=512, pages_per_block=4, num_blocks=128, spare_size=64)
PDS_PROFILE = dataclasses.replace(smart_usb_token(), flash_geometry=PDS_GEOM)
DOC_IDS = [9000 + i for i in range(12)]
FORGOTTEN = DOC_IDS[2]


def make_documents() -> list[PersonalDocument]:
    return [
        PersonalDocument(
            kind="note",
            text=f"recipe number{i} flavour{i % 3}",
            attributes={},
            source="sweep",
            timestamp=i,
            doc_id=DOC_IDS[i],
        )
        for i in range(12)
    ]


class PdsRecorder:
    """Silicon-level durability tracker for the PDS workload."""

    def __init__(self, flash: NandFlash) -> None:
        self.flash = flash
        self._docs_id = pager.log_id_of("documents")
        self._manifest_id = pager.log_id_of("manifest")
        self.docs_flushed = 0
        self.forgotten: set[int] = set()
        self.snapshots: list[tuple[int, frozenset[int]]] = []
        flash.subscribe(on_program=self._on_program, on_erase=self._on_erase)

    def _on_program(self, page_no: int) -> None:
        data = self.flash._pages[page_no]
        header = PageHeader.unpack(self.flash._spares[page_no])
        if header is not None:
            if header.log_id == self._docs_id:
                self.docs_flushed += len(pager.unpack_records(data))
            elif header.log_id == self._manifest_id:
                record = json.loads(data)
                if record["kind"] == "forget":
                    self.forgotten.add(record["doc"])
        self._snap()

    def _on_erase(self, block_no: int) -> None:
        self._snap()

    def _snap(self) -> None:
        self.snapshots.append((self.docs_flushed, frozenset(self.forgotten)))


def run_pds_workload(flash: NandFlash) -> PersonalDataServer:
    token = SecurePortableToken(profile=PDS_PROFILE, owner="alice", flash=flash)
    pds = PersonalDataServer("alice", token=token, search_buckets=8)
    documents = make_documents()
    for document in documents[:8]:
        pds.ingest(document)
    pds.checkpoint()
    for document in documents[8:]:
        pds.ingest(document)
    pds.forget(FORGOTTEN)
    pds.checkpoint()
    return pds


def pds_crash_and_verify(k: int) -> None:
    flash = NandFlash(PDS_GEOM)
    recorder = PdsRecorder(flash)
    plan = FaultPlan(kill_at=k, seed=k).attach(flash)
    with pytest.raises(PowerLossError):
        run_pds_workload(flash)
    assert plan.kills == 1, k
    docs_flushed, forgotten = recorder.snapshots[-1] if k else (0, frozenset())
    flash.power_cycle()

    pds = PersonalDataServer.remount(
        flash, "alice", profile=PDS_PROFILE, search_buckets=8
    )
    visible = [i for i in DOC_IDS[:docs_flushed] if i not in forgotten]
    assert sorted(pds._doc_addresses) == visible, k
    # Every durable, unforgotten document is searchable exactly once: no
    # committed doc lost, no half-indexed ghost, no double hit.
    hits = pds.search(pds.owner, "recipe", n=50)
    hit_ids = sorted(document.doc_id for _, document in hits)
    assert hit_ids == visible, k
    for doc_id in visible:
        recovered = pds.read(pds.owner, doc_id)
        assert recovered.text == f"recipe number{doc_id - 9000} flavour{(doc_id - 9000) % 3}"


class TestPdsCrashSweep:
    def test_crash_at_every_io(self):
        flash = NandFlash(PDS_GEOM)
        recorder = PdsRecorder(flash)
        pds = run_pds_workload(flash)
        total_ops = len(recorder.snapshots)
        assert total_ops > 10
        assert pds.document_count == 11
        for k in range(0, total_ops, STRIDE):
            pds_crash_and_verify(k)

    def test_repeated_crashes_converge(self):
        """Crash, remount, crash again: fences keep visibility exact."""
        flash = NandFlash(PDS_GEOM)
        run_pds_workload(flash)
        flash.power_cycle()
        first = PersonalDataServer.remount(
            flash, "alice", profile=PDS_PROFILE, search_buckets=8
        )
        expected = sorted(
            document.doc_id for _, document in first.search(first.owner, "recipe", n=50)
        )
        for _ in range(3):
            flash.power_cycle()
            pds = PersonalDataServer.remount(
                flash, "alice", profile=PDS_PROFILE, search_buckets=8
            )
            got = sorted(
                document.doc_id for _, document in pds.search(pds.owner, "recipe", n=50)
            )
            assert got == expected
