"""Unit tests for the deterministic fault injector (repro.fault)."""

import pytest

from repro.errors import PowerLossError
from repro.fault import FaultPlan, unplug
from repro.hardware.flash import FlashGeometry, NandFlash

GEOM = FlashGeometry(page_size=64, pages_per_block=4, num_blocks=8, spare_size=32)


def fresh_flash() -> NandFlash:
    return NandFlash(GEOM)


class TestKillAtProgram:
    def test_kill_raises_power_loss(self):
        flash = fresh_flash()
        FaultPlan(kill_at=2, seed=7).attach(flash)
        flash.program_page(0, b"a" * 8, spare=b"s")
        flash.program_page(1, b"b" * 8, spare=b"s")
        with pytest.raises(PowerLossError):
            flash.program_page(2, b"c" * 8, spare=b"s")

    def test_torn_write_shape(self):
        """A killed program leaves a prefix-only payload and no spare."""
        flash = fresh_flash()
        plan = FaultPlan(kill_at=0, seed=3).attach(flash)
        payload = bytes(range(32))
        with pytest.raises(PowerLossError):
            flash.program_page(0, payload, spare=b"full-header")
        assert not flash.is_erased(0)  # the torn page occupies its slot
        data, spare = flash.read_page_with_spare(0)
        assert payload.startswith(data)
        assert len(data) < len(payload) or data == payload
        assert spare == b""
        assert plan.torn_pages == [0]
        assert plan.kills == 1

    def test_torn_page_counts_in_stats_and_cursor(self):
        flash = fresh_flash()
        FaultPlan(kill_at=0, seed=1).attach(flash)
        with pytest.raises(PowerLossError):
            flash.program_page(0, b"x" * 16, spare=b"h")
        assert flash.stats.page_programs == 1
        # The slot is consumed: the block's next free page moves past it.
        assert flash.next_free_page(0) == 1

    def test_determinism_same_seed_same_silicon(self):
        """(seed, kill_at) fully determines the torn bytes on the chip."""

        def run(seed: int) -> tuple[bytes, bytes]:
            flash = fresh_flash()
            FaultPlan(kill_at=3, seed=seed).attach(flash)
            try:
                for i in range(6):
                    flash.program_page(i, bytes([i]) * 40, spare=b"hdr")
            except PowerLossError:
                pass
            return flash.read_page_with_spare(3)

        assert run(42) == run(42)

    def test_different_seed_can_differ(self):
        def torn_len(seed: int) -> int:
            flash = fresh_flash()
            FaultPlan(kill_at=0, seed=seed).attach(flash)
            with pytest.raises(PowerLossError):
                flash.program_page(0, bytes(48), spare=b"h")
            return len(flash.read_page_with_spare(0)[0])

        lengths = {torn_len(seed) for seed in range(16)}
        assert len(lengths) > 1  # the cut point really is drawn from the RNG

    def test_untorn_mode_writes_full_page(self):
        flash = fresh_flash()
        FaultPlan(kill_at=0, torn_writes=False, seed=0).attach(flash)
        with pytest.raises(PowerLossError):
            flash.program_page(0, b"z" * 8, spare=b"hdr")
        assert flash.read_page_with_spare(0) == (b"z" * 8, b"hdr")


class TestKillAtErase:
    def test_erase_kill_counts_and_is_deterministic(self):
        def outcome(seed: int) -> bool:
            flash = fresh_flash()
            flash.program_page(0, b"d" * 8)
            FaultPlan(kill_at=0, seed=seed).attach(flash)
            with pytest.raises(PowerLossError):
                flash.erase_block(0)
            assert flash.stats.block_erases == 1  # counted either way
            return flash.is_erased(0)

        assert outcome(5) == outcome(5)
        # Across seeds both outcomes (pulse landed / did not) occur.
        assert {outcome(seed) for seed in range(12)} == {True, False}

    def test_ops_counter_spans_programs_and_erases(self):
        flash = fresh_flash()
        plan = FaultPlan(kill_at=1, seed=0).attach(flash)
        flash.program_page(0, b"a" * 4)  # op 0
        with pytest.raises(PowerLossError):
            flash.erase_block(1)  # op 1
        assert plan.ops_seen == 2
        assert plan.kills == 1


class TestBitFlips:
    def test_flip_changes_exactly_one_bit(self):
        flash = fresh_flash()
        plan = FaultPlan(bit_flip_rate=1.0, seed=9).attach(flash)
        payload = bytes(32)
        flash.program_page(0, payload, spare=b"hdr")
        data, spare = flash.read_page_with_spare(0)
        assert spare == b"hdr"  # flips corrupt the payload, not the header
        diff = [a ^ b for a, b in zip(data, payload)]
        assert sum(bin(byte).count("1") for byte in diff) == 1
        assert plan.flipped_pages == [0]

    def test_zero_rate_never_flips(self):
        flash = fresh_flash()
        plan = FaultPlan(bit_flip_rate=0.0, seed=9).attach(flash)
        for i in range(4):
            flash.program_page(i, bytes([i]) * 16)
        assert plan.flipped_pages == []


class TestScheduling:
    def test_kill_now_unplugs_at_next_io(self):
        flash = fresh_flash()
        plan = FaultPlan(seed=0).attach(flash)
        flash.program_page(0, b"a" * 4)
        plan.kill_now()
        with pytest.raises(PowerLossError):
            flash.program_page(1, b"b" * 4)

    def test_multiple_kill_points(self):
        flash = fresh_flash()
        plan = FaultPlan(kill_at=[1, 3], seed=0).attach(flash)
        flash.program_page(0, b"a" * 4)
        with pytest.raises(PowerLossError):
            flash.program_page(1, b"b" * 4)
        flash.program_page(2, b"c" * 4)
        with pytest.raises(PowerLossError):
            flash.program_page(3, b"d" * 4)
        assert plan.kills == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="kill_at"):
            FaultPlan(kill_at=-1)
        with pytest.raises(ValueError, match="bit_flip_rate"):
            FaultPlan(bit_flip_rate=1.5)

    def test_unplug_clears_volatile_state(self):
        flash = fresh_flash()
        plan = FaultPlan(kill_at=99, seed=0).attach(flash)
        fired = []
        flash.subscribe(on_program=fired.append)
        flash.program_page(0, b"a" * 4)
        unplug(flash)
        assert flash.fault_injector is None
        flash.program_page(1, b"b" * 4)  # would fire the observer if alive
        assert fired == [0]
