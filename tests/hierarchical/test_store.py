"""Tests for the hierarchical (XML-like) document store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hierarchical.paths import flatten, path_matches
from repro.hierarchical.store import HierarchicalStore


def make_store(page_size=256) -> HierarchicalStore:
    flash = NandFlash(
        FlashGeometry(page_size=page_size, pages_per_block=8, num_blocks=1024)
    )
    return HierarchicalStore(BlockAllocator(flash), num_buckets=16)


MEDICAL_FORM = {
    "patient": {
        "name": "ana",
        "address": {"city": "lyon", "zip": 69001},
        "visits": [
            {"date": 20140310, "diagnosis": "flu"},
            {"date": 20140402, "diagnosis": "healthy"},
        ],
    }
}


class TestFlatten:
    def test_nested_paths(self):
        postings = flatten({"a": {"b": {"c": 1}}, "d": "x"})
        assert postings == [("a/b/c", 1), ("d", "x")]

    def test_lists_repeat_paths(self):
        postings = flatten({"a": [{"b": 1}, {"b": 2}]})
        assert postings == [("a/b", 1), ("a/b", 2)]

    def test_none_is_skipped(self):
        assert flatten({"a": None, "b": 2}) == [("b", 2)]

    def test_invalid_root(self):
        with pytest.raises(QueryError):
            flatten([1, 2])

    def test_separator_in_name_rejected(self):
        with pytest.raises(QueryError):
            flatten({"a/b": 1})

    def test_bool_leaf_rejected(self):
        with pytest.raises(QueryError, match="unsupported leaf"):
            flatten({"flag": True})


class TestPathMatches:
    def test_exact(self):
        assert path_matches("a/b/c", "a/b/c")
        assert not path_matches("a/b", "a/b/c")

    def test_star_single_component(self):
        assert path_matches("a/*/c", "a/b/c")
        assert not path_matches("a/*/c", "a/b/b/c")

    def test_descendant_suffix(self):
        assert path_matches("//city", "patient/address/city")
        assert path_matches("//address/city", "patient/address/city")
        assert not path_matches("//zip", "patient/address/city")

    def test_prefix_then_descendant(self):
        assert path_matches("patient//diagnosis", "patient/visits/diagnosis")
        assert not path_matches("doctor//diagnosis", "patient/visits/diagnosis")

    def test_bare_double_slash(self):
        assert path_matches("//", "anything/at/all")


class TestStore:
    def test_exact_path_value_query(self):
        store = make_store()
        store.add_document(MEDICAL_FORM)
        store.add_document({"patient": {"address": {"city": "paris"}}})
        store.flush()
        assert store.find("patient/address/city", "lyon") == [0]
        assert store.find("patient/address/city", "paris") == [1]
        assert store.find("patient/address/city") == [0, 1]

    def test_descendant_pattern(self):
        store = make_store()
        store.add_document(MEDICAL_FORM)
        store.add_document({"hospital": {"city": "lyon"}})
        store.flush()
        assert store.find("//city", "lyon") == [0, 1]

    def test_repeated_elements_match_any(self):
        store = make_store()
        store.add_document(MEDICAL_FORM)
        assert store.find("patient/visits/diagnosis", "flu") == [0]
        assert store.find("patient/visits/diagnosis", "healthy") == [0]

    def test_values_at(self):
        store = make_store()
        store.add_document(MEDICAL_FORM)
        dates = store.values_at("patient/visits/date")
        assert sorted(dates) == [20140310, 20140402]

    def test_conjunction(self):
        store = make_store()
        store.add_document(MEDICAL_FORM)  # lyon + flu
        store.add_document(
            {"patient": {"address": {"city": "lyon"},
                         "visits": [{"diagnosis": "healthy"}]}}
        )
        store.add_document(
            {"patient": {"address": {"city": "paris"},
                         "visits": [{"diagnosis": "flu"}]}}
        )
        store.flush()
        hits = store.find_all(
            [("//city", "lyon"), ("//diagnosis", "flu")]
        )
        assert hits == [0]

    def test_existence_condition(self):
        store = make_store()
        store.add_document({"a": {"b": 1}})
        store.add_document({"a": {"c": 2}})
        assert store.find_all([("a/b", None)]) == [0]

    def test_empty_conditions_rejected(self):
        with pytest.raises(QueryError):
            make_store().find_all([])

    def test_path_dictionary_is_schema_sized(self):
        store = make_store()
        for i in range(50):  # many documents, same shape
            store.add_document({"person": {"age": i, "city": f"c{i % 3}"}})
        assert store.doc_count == 50
        assert store.paths == ["person/age", "person/city"]

    def test_numeric_and_string_values_distinct(self):
        store = make_store()
        store.add_document({"x": {"v": 1}})
        store.add_document({"x": {"v": "1"}})
        assert store.find("x/v", 1) == [0]
        assert store.find("x/v", "1") == [1]

    def test_hash_collisions_filtered_by_path(self):
        """With one bucket every path collides; answers must stay exact."""
        flash = NandFlash(FlashGeometry(256, 8, 512))
        store = HierarchicalStore(BlockAllocator(flash), num_buckets=1)
        store.add_document({"a": {"v": 1}})
        store.add_document({"b": {"v": 1}})
        assert store.find("a/v", 1) == [0]
        assert store.find("b/v", 1) == [1]


class TestProperties:
    documents = st.lists(
        st.fixed_dictionaries(
            {
                "kind": st.sampled_from(["mail", "bill", "form"]),
                "meta": st.fixed_dictionaries(
                    {"year": st.integers(2000, 2014)}
                ),
            }
        ),
        min_size=1,
        max_size=25,
    )

    @given(documents)
    @settings(max_examples=25, deadline=None)
    def test_property_find_matches_naive(self, documents):
        store = make_store()
        for document in documents:
            store.add_document(document)
        store.flush()
        for kind in ("mail", "bill", "form"):
            expected = [
                i for i, doc in enumerate(documents) if doc["kind"] == kind
            ]
            assert store.find("kind", kind) == expected
        for year in {doc["meta"]["year"] for doc in documents}:
            expected = [
                i for i, doc in enumerate(documents)
                if doc["meta"]["year"] == year
            ]
            assert store.find("//year", year) == expected


class TestValueRanges:
    def test_find_range_numeric(self):
        store = make_store()
        for age in (10, 25, 40, 55, 70):
            store.add_document({"person": {"age": age}})
        store.flush()
        assert store.find_range("person/age", 20, 60) == [1, 2, 3]

    def test_find_range_with_pattern(self):
        store = make_store()
        store.add_document({"a": {"cost": 5}})
        store.add_document({"b": {"cost": 50}})
        assert store.find_range("//cost", 0, 10) == [0]

    def test_find_range_empty(self):
        store = make_store()
        store.add_document({"x": {"v": 5}})
        assert store.find_range("x/v", 100, 200) == []
