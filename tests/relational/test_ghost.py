"""Tests for GhostDB-style split visible/hidden queries."""

import pytest

from repro.errors import QueryError, TamperedTokenError
from repro.hardware.token import SecurePortableToken
from repro.relational.ghost import GhostDatabase
from repro.relational.schema import Column

VISIBLE = [Column("city", "str"), Column("year", "int")]
HIDDEN = [Column("diagnosis", "str"), Column("salary", "int")]

ROWS = [
    {"city": "lyon", "year": 2013, "diagnosis": "flu", "salary": 2400},
    {"city": "lyon", "year": 2014, "diagnosis": "healthy", "salary": 3100},
    {"city": "paris", "year": 2014, "diagnosis": "flu", "salary": 2800},
    {"city": "nice", "year": 2013, "diagnosis": "asthma", "salary": 2100},
]


@pytest.fixture
def ghost() -> GhostDatabase:
    db = GhostDatabase(SecurePortableToken(), VISIBLE, HIDDEN)
    for row in ROWS:
        db.insert(row)
    return db


class TestSplitQueries:
    def test_mixed_predicates(self, ghost):
        rows = ghost.query(
            visible_where=[("city", "lyon")],
            hidden_where=[("diagnosis", "flu")],
            project=["city", "year", "salary"],
        )
        assert rows == [("lyon", 2013, 2400)]

    def test_hidden_only_predicate(self, ghost):
        rows = ghost.query(
            visible_where=[],
            hidden_where=[("diagnosis", "flu")],
            project=["city"],
        )
        assert sorted(rows) == [("lyon",), ("paris",)]

    def test_visible_only_predicate(self, ghost):
        rows = ghost.query(
            visible_where=[("year", 2014)],
            hidden_where=[],
            project=["city", "diagnosis"],
        )
        assert sorted(rows) == [("lyon", "healthy"), ("paris", "flu")]

    def test_projection_mixes_sides(self, ghost):
        rows = ghost.query(
            visible_where=[("city", "nice")],
            hidden_where=[],
            project=["salary", "city", "diagnosis"],
        )
        assert rows == [(2100, "nice", "asthma")]

    def test_column_side_enforced(self, ghost):
        with pytest.raises(QueryError, match="not a visible column"):
            ghost.query([("diagnosis", "flu")], [], ["city"])
        with pytest.raises(QueryError, match="not a hidden column"):
            ghost.query([], [("city", "lyon")], ["city"])
        with pytest.raises(QueryError, match="unknown column"):
            ghost.query([], [], ["ghost_column"])


class TestNoLeak:
    def test_server_never_sees_hidden_values(self, ghost):
        ghost.query(
            [("city", "lyon")], [("diagnosis", "flu")], ["city", "salary"]
        )
        secrets = {"flu", "healthy", "asthma", 2400, 3100, 2800, 2100}
        assert not ghost.server.ledger.observed_any_of(secrets)

    def test_server_never_sees_hidden_predicates(self, ghost):
        ghost.query([("year", 2014)], [("salary", 2800)], ["city"])
        observed = {value for _, value in ghost.server.ledger.predicates}
        assert 2800 not in observed
        assert observed == {2014}

    def test_declared_leak_is_candidate_sizes(self, ghost):
        ghost.query([("city", "lyon")], [("diagnosis", "flu")], ["city"])
        # The server knows how many rows matched the visible predicate —
        # that (and only that) is GhostDB's declared leak.
        assert ghost.server.ledger.candidate_sets == [2]


class TestConstruction:
    def test_both_sides_required(self):
        with pytest.raises(QueryError):
            GhostDatabase(SecurePortableToken(), VISIBLE, [])
        with pytest.raises(QueryError):
            GhostDatabase(SecurePortableToken(), [], HIDDEN)

    def test_overlapping_columns_rejected(self):
        with pytest.raises(QueryError, match="both sides"):
            GhostDatabase(
                SecurePortableToken(),
                [Column("a", "int")],
                [Column("a", "int")],
            )

    def test_missing_columns_on_insert(self, ghost):
        with pytest.raises(QueryError, match="missing columns"):
            ghost.insert({"city": "x"})

    def test_tampered_token_refuses_hidden_access(self, ghost):
        ghost.token.tamper()
        with pytest.raises(TamperedTokenError):
            ghost.query([], [("diagnosis", "flu")], ["city"])
