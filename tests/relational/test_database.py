"""Integration tests: EmbeddedDatabase with Tselect/Tjoin on TPCD-like data."""

import pytest

from repro.errors import QueryError
from repro.hardware.flash import FlashGeometry
from repro.hardware.profiles import HardwareProfile, smart_usb_token
from repro.hardware.ram import RamArena
from repro.hardware.token import SecurePortableToken
from repro.relational.baseline import HashJoinExecutor
from repro.relational.planner import Query
from repro.relational.query import EmbeddedDatabase
from repro.workloads import tpcd


def make_token(ram_bytes=64 * 1024, page_size=512, blocks=2048) -> SecurePortableToken:
    base = smart_usb_token()
    profile = HardwareProfile(
        name="test-token",
        ram_bytes=ram_bytes,
        cpu_mhz=base.cpu_mhz,
        flash_geometry=FlashGeometry(
            page_size=page_size, pages_per_block=16, num_blocks=blocks
        ),
        flash_cost=base.flash_cost,
        tamper_resistant=True,
    )
    return SecurePortableToken(profile=profile)


@pytest.fixture(scope="module")
def loaded_db() -> tuple[EmbeddedDatabase, tpcd.TpcdData]:
    db = EmbeddedDatabase(make_token(), tpcd.tpcd_schema(), tpcd.ROOT_TABLE)
    data = tpcd.generate(num_lineitems=400, seed=9)
    tpcd.load(db, data)
    db.create_tselect("CUSTOMER", "Mktsegment")
    db.create_tselect("SUPPLIER", "Name")
    return db, data


def reference_answer(data: tpcd.TpcdData, segment: str, supplier: str):
    """Plain-Python evaluation of the tutorial query for cross-checking."""
    seg_customers = {c[0] for c in data.customers if c[2] == segment}
    sup_keys = {s[0] for s in data.suppliers if s[1] == supplier}
    orders = {o[0]: o for o in data.orders}
    partsupps = {p[0]: p for p in data.partsupps}
    customers = {c[0]: c for c in data.customers}
    out = []
    for line in data.lineitems:
        order = orders[line[1]]
        ps = partsupps[line[2]]
        if order[1] in seg_customers and ps[1] in sup_keys:
            out.append(
                (
                    customers[order[1]][1],
                    order[0],
                    line[0],
                    line[4],
                    f"{supplier}",
                )
            )
    return sorted(out)


class TestInsertAndIntegrity:
    def test_referential_integrity_enforced(self):
        db = EmbeddedDatabase(make_token(), tpcd.tpcd_schema(), tpcd.ROOT_TABLE)
        with pytest.raises(QueryError, match="referential integrity"):
            db.insert("ORDER", (0, 999, 19940101))  # no such customer

    def test_fk_must_reference_primary_key(self):
        from repro.relational.schema import (
            Column,
            ForeignKey,
            SchemaGraph,
            TableSchema,
        )

        parent = TableSchema(
            "P", [Column("id", "int"), Column("other", "int")], primary_key="id"
        )
        child = TableSchema(
            "C",
            [Column("id", "int"), Column("pother", "int")],
            primary_key="id",
            foreign_keys=[ForeignKey("pother", "P", "other")],
        )
        with pytest.raises(QueryError, match="must reference the"):
            EmbeddedDatabase(make_token(), SchemaGraph([parent, child]), "C")

    def test_tjoin_maintained_incrementally(self, loaded_db):
        db, data = loaded_db
        # Every lineitem's ancestors must match the raw data's FK chain.
        for rowid in (0, 57, 399):
            line = data.lineitems[rowid]
            joined = db.tjoin.joined_rowids(rowid)
            assert joined["LINEITEM"] == rowid
            assert joined["ORDER"] == line[1]  # ORDkey == order rowid here
            order = data.orders[line[1]]
            assert joined["CUSTOMER"] == order[1]
            ps = data.partsupps[line[2]]
            assert joined["PARTSUPP"] == line[2]
            assert joined["SUPPLIER"] == ps[1]

    def test_lookup_by_pk_and_scan(self, loaded_db):
        db, data = loaded_db
        assert db.lookup("CUSTOMER", "CUSkey", 3) == [3]
        segment = data.customers[0][2]
        scan_hits = db.lookup("CUSTOMER", "Mktsegment", segment)
        assert 0 in scan_hits


class TestQueryExecution:
    def test_tutorial_query_matches_reference(self, loaded_db):
        db, data = loaded_db
        query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
        rows, stats = db.query(query)
        assert sorted(rows) == reference_answer(data, "HOUSEHOLD", "SUPPLIER-1")
        assert stats.rows_out == len(rows)
        assert len(stats.explain.indexed_predicates) == 2
        assert not stats.explain.root_scan

    def test_every_segment_supplier_combination(self, loaded_db):
        db, data = loaded_db
        for segment in ("AUTOMOBILE", "BUILDING"):
            for supplier in ("SUPPLIER-0", "SUPPLIER-2"):
                query = tpcd.household_supplier_query(segment, supplier)
                rows, _ = db.query(query)
                assert sorted(rows) == reference_answer(data, segment, supplier)

    def test_residual_predicate_without_index(self, loaded_db):
        db, data = loaded_db
        query = Query.build(
            filters=[
                ("CUSTOMER", "Mktsegment", "HOUSEHOLD"),
                ("LINEITEM", "Quantity", 10),
            ],
            projection=[("LINEITEM", "LINkey")],
        )
        rows, stats = db.query(query)
        assert [("LINEITEM", "Quantity", 10)] == stats.explain.residual_predicates
        expected = {
            line[0]
            for line in data.lineitems
            if line[3] == 10
            and data.customers[data.orders[line[1]][1]][2] == "HOUSEHOLD"
        }
        assert {row[0] for row in rows} == expected

    def test_no_indexed_predicate_falls_back_to_scan(self, loaded_db):
        db, _ = loaded_db
        query = Query.build(
            filters=[("LINEITEM", "Quantity", 7)],
            projection=[("LINEITEM", "LINkey")],
        )
        _, stats = db.query(query)
        assert stats.explain.root_scan

    def test_unknown_column_rejected(self, loaded_db):
        db, _ = loaded_db
        with pytest.raises(QueryError, match="no column"):
            db.query(
                Query.build(
                    filters=[("CUSTOMER", "Ghost", 1)],
                    projection=[("LINEITEM", "LINkey")],
                )
            )

    def test_empty_projection_rejected(self, loaded_db):
        db, _ = loaded_db
        with pytest.raises(QueryError, match="projection"):
            db.query(Query.build(filters=[], projection=[]))

    def test_query_ram_stays_within_token_budget(self, loaded_db):
        db, _ = loaded_db
        _, stats = db.query(tpcd.household_supplier_query())
        assert stats.ram_high_water <= db.token.profile.ram_bytes


class TestAgainstHashJoinBaseline:
    def test_baseline_matches_pipelined_plan(self, loaded_db):
        db, _ = loaded_db
        baseline = HashJoinExecutor(
            db.schema, db.storages, tpcd.ROOT_TABLE, RamArena(10**9)
        )
        query = tpcd.household_supplier_query("MACHINERY", "SUPPLIER-0")
        fast, _ = db.query(query)
        slow = baseline.execute(query)
        assert sorted(fast) == sorted(slow)

    def test_baseline_ram_grows_with_data_pipelined_does_not(self):
        """E4's shape, in miniature."""
        peaks = {}
        for num_lines in (100, 400):
            db = EmbeddedDatabase(
                make_token(), tpcd.tpcd_schema(), tpcd.ROOT_TABLE
            )
            tpcd.load(db, tpcd.generate(num_lines, seed=4))
            db.create_tselect("CUSTOMER", "Mktsegment")
            db.create_tselect("SUPPLIER", "Name")
            _, stats = db.query(tpcd.household_supplier_query())
            baseline_ram = RamArena(10**9)
            HashJoinExecutor(
                db.schema, db.storages, tpcd.ROOT_TABLE, baseline_ram
            ).execute(tpcd.household_supplier_query())
            peaks[num_lines] = (stats.ram_high_water, baseline_ram.high_water)
        assert peaks[400][0] == peaks[100][0]  # pipelined: flat
        assert peaks[400][1] > peaks[100][1] * 2  # baseline: grows

    def test_create_key_index_backfills(self, loaded_db):
        db, data = loaded_db
        if ("LINEITEM", "Quantity") not in db.attr_indexes:
            db.create_key_index("LINEITEM", "Quantity")
        expected = [i for i, line in enumerate(data.lineitems) if line[3] == 5]
        assert db.lookup("LINEITEM", "Quantity", 5) == expected

    def test_duplicate_index_rejected(self, loaded_db):
        db, _ = loaded_db
        if ("LINEITEM", "Quantity") not in db.attr_indexes:
            db.create_key_index("LINEITEM", "Quantity")
        with pytest.raises(QueryError, match="already exists"):
            db.create_key_index("LINEITEM", "Quantity")


class TestEmbeddedAggregates:
    def test_count_by_segment(self, loaded_db):
        db, data = loaded_db
        result, stats = db.aggregate(
            filters=[("SUPPLIER", "Name", "SUPPLIER-1")],
            aggregate=("COUNT", "LINEITEM", None),
            group_by=("CUSTOMER", "Mktsegment"),
        )
        # Reference: count lineitems of SUPPLIER-1 per customer segment.
        expected: dict = {}
        for line in data.lineitems:
            ps = data.partsupps[line[2]]
            if data.suppliers[ps[1]][1] != "SUPPLIER-1":
                continue
            segment = data.customers[data.orders[line[1]][1]][2]
            expected[segment] = expected.get(segment, 0.0) + 1.0
        assert result == expected
        assert stats.rows_out == len(expected)

    def test_sum_and_avg_consistent(self, loaded_db):
        db, _ = loaded_db
        filters = [("CUSTOMER", "Mktsegment", "HOUSEHOLD")]
        total, _ = db.aggregate(
            filters, ("SUM", "LINEITEM", "Price"), group_by=None
        )
        count, _ = db.aggregate(
            filters, ("COUNT", "LINEITEM", None), group_by=None
        )
        average, _ = db.aggregate(
            filters, ("AVG", "LINEITEM", "Price"), group_by=None
        )
        if count.get("*"):
            assert average["*"] == pytest.approx(total["*"] / count["*"])

    def test_ram_grows_with_groups_not_rows(self, loaded_db):
        db, _ = loaded_db
        _, grouped = db.aggregate(
            filters=[],
            aggregate=("COUNT", "LINEITEM", None),
            group_by=("CUSTOMER", "Mktsegment"),
        )
        _, global_only = db.aggregate(
            filters=[],
            aggregate=("COUNT", "LINEITEM", None),
            group_by=None,
        )
        # 5 segments vs 1 global group: tiny, bounded difference.
        assert grouped.ram_high_water - global_only.ram_high_water <= 5 * 32
        assert grouped.ram_high_water <= db.token.profile.ram_bytes

    def test_invalid_aggregates_rejected(self, loaded_db):
        db, _ = loaded_db
        with pytest.raises(QueryError, match="unsupported aggregate"):
            db.aggregate([], ("MEDIAN", "LINEITEM", "Price"))
        with pytest.raises(QueryError, match="needs a column"):
            db.aggregate([], ("SUM", "LINEITEM", None))


class TestPageCachedExecution:
    """The RAM-charged page cache must be invisible except in the stats."""

    def make_cached_db(self):
        db = EmbeddedDatabase(make_token(), tpcd.tpcd_schema(), tpcd.ROOT_TABLE)
        tpcd.load(db, tpcd.generate(num_lineitems=300, seed=5))
        db.create_tselect("CUSTOMER", "Mktsegment")
        return db

    def test_stats_cache_empty_without_cache(self, loaded_db):
        db, _ = loaded_db
        _, stats = db.query(tpcd.household_supplier_query())
        # No cache attached: stats.cache is an all-zero CacheStats, so
        # callers read hits/misses without a None guard.
        assert stats.cache.lookups == 0
        assert stats.cache.hits == 0

    def test_repeated_query_hits_cache(self):
        db = self.make_cached_db()
        query = tpcd.household_supplier_query()
        cold_rows, cold = db.query(query)
        db.token.enable_page_cache(16)
        warm1_rows, warm1 = db.query(query)
        warm2_rows, warm2 = db.query(query)
        assert warm1_rows == cold_rows == warm2_rows
        assert warm1.cache is not None and warm1.cache.misses > 0
        assert warm2.cache.hits > 0
        # The repeat run re-reads everything from RAM: strictly fewer IOs.
        assert warm2.flash_page_reads < cold.flash_page_reads
        # Cache RAM is charged to the arena and visible in high water.
        assert db.token.mcu.ram.in_use >= db.token.page_cache.ram_bytes

    def test_cache_size_zero_reproduces_uncached_io_counts(self):
        db_plain = self.make_cached_db()
        db_zero = self.make_cached_db()
        db_zero.token.enable_page_cache(0)
        query = tpcd.household_supplier_query()
        rows_plain, stats_plain = db_plain.query(query)
        rows_zero, stats_zero = db_zero.query(query)
        assert rows_plain == rows_zero
        assert stats_plain.flash_page_reads == stats_zero.flash_page_reads
        assert stats_zero.cache.hits == 0

    def test_insert_after_cached_query_stays_correct(self):
        db = self.make_cached_db()
        db.token.enable_page_cache(16)
        query = tpcd.household_supplier_query()
        db.query(query)
        # New inserts append pages; cached reads must still match a fresh
        # uncached evaluation of the same database state.
        baseline_ram = RamArena(10**9)
        rows, _ = db.query(query)
        baseline = HashJoinExecutor(
            db.schema, db.storages, tpcd.ROOT_TABLE, baseline_ram
        ).execute(query)
        assert sorted(rows) == sorted(baseline)
