"""Unit and property tests for the pipelined operators."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.operators import merge_intersect, merge_union

sorted_ids = st.lists(
    st.integers(min_value=0, max_value=100), max_size=50
).map(lambda xs: sorted(set(xs)))


class TestMergeIntersect:
    def test_basic(self):
        assert list(merge_intersect([[1, 3, 5, 7], [3, 4, 5, 9]])) == [3, 5]

    def test_three_streams(self):
        assert list(
            merge_intersect([[1, 2, 3, 4], [2, 3, 4], [0, 3, 4, 10]])
        ) == [3, 4]

    def test_disjoint(self):
        assert list(merge_intersect([[1, 2], [3, 4]])) == []

    def test_empty_stream_short_circuits(self):
        assert list(merge_intersect([[1, 2], []])) == []

    def test_no_streams(self):
        assert list(merge_intersect([])) == []

    def test_single_stream_is_identity(self):
        assert list(merge_intersect([[2, 4, 6]])) == [2, 4, 6]

    @given(sorted_ids, sorted_ids, sorted_ids)
    @settings(max_examples=100, deadline=None)
    def test_property_matches_set_intersection(self, a, b, c):
        result = list(merge_intersect([a, b, c]))
        assert result == sorted(set(a) & set(b) & set(c))


class TestMergeUnion:
    def test_basic_dedup(self):
        assert list(merge_union([[1, 3, 5], [3, 4, 5]])) == [1, 3, 4, 5]

    def test_empty(self):
        assert list(merge_union([[], []])) == []

    @given(sorted_ids, sorted_ids)
    @settings(max_examples=100, deadline=None)
    def test_property_matches_set_union(self, a, b):
        assert list(merge_union([a, b])) == sorted(set(a) | set(b))
