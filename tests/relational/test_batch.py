"""Differential tests: columnar batch execution vs the legacy pipeline.

The batch executor's contract is *bit-identical observable behavior*: same
rows, same simulated ``flash_page_reads``, same cache hit/miss deltas, and
RAM high-water no higher than legacy at the default batch size. These tests
enforce it with randomized schemas/data/queries (hypothesis) plus fixed
regressions for the edge cases the property test rarely hits.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.flash import FlashGeometry
from repro.hardware.profiles import HardwareProfile, smart_usb_token
from repro.hardware.token import SecurePortableToken
from repro.relational import operators
from repro.relational.batch import (
    DEFAULT_BATCH_ROWS,
    intersect_sorted,
    union_sorted,
)
from repro.relational.planner import Query
from repro.relational.query import EmbeddedDatabase
from repro.relational.schema import Column, ForeignKey, SchemaGraph, TableSchema
from repro.relational.table import TableStorage
from repro.relational.tuples import make_column_decoder, make_predicate_mask
from repro.workloads import tpcd


def make_token(ram_bytes=64 * 1024, page_size=512, cache_pages=0):
    base = smart_usb_token()
    profile = HardwareProfile(
        name="test-token",
        ram_bytes=ram_bytes,
        cpu_mhz=base.cpu_mhz,
        flash_geometry=FlashGeometry(
            page_size=page_size, pages_per_block=16, num_blocks=2048
        ),
        flash_cost=base.flash_cost,
        tamper_resistant=True,
    )
    return SecurePortableToken(profile=profile, cache_pages=cache_pages)


# ---------------------------------------------------------------------------
# Randomized schema/data/query generation
# ---------------------------------------------------------------------------
_INTS = [-2, 0, 1, 5]
_FLOATS = [0.0, 1.5, -2.25]
_STRS = ["red", "green", "blue", "", "x" * 40]
_KINDS = {"int": _INTS, "float": _FLOATS, "str": _STRS}


@st.composite
def _workloads(draw):
    """A linear-chain schema (1-3 tables), its data, a query, tselects."""
    depth = draw(st.integers(1, 3))
    names = ["R", "P", "G"][:depth]  # root references P references G
    tables = []
    for level, name in enumerate(names):
        extra = draw(
            st.lists(
                st.sampled_from(["int", "float", "str"]), min_size=1, max_size=3
            )
        )
        columns = [Column("Id", "int")]
        columns += [Column(f"C{i}", kind) for i, kind in enumerate(extra)]
        fks = []
        if level + 1 < depth:
            parent = names[level + 1]
            columns.append(Column(f"{parent}id", "int"))
            fks.append(ForeignKey(f"{parent}id", parent, "Id"))
        tables.append(
            TableSchema(name, columns, primary_key="Id", foreign_keys=fks)
        )
    schema = SchemaGraph(tables)

    # Rows: ancestors first (FKs resolve through parent PK indexes).
    rows: dict[str, list[tuple]] = {}
    counts = {}
    for level in range(depth - 1, -1, -1):
        name = names[level]
        table = schema.table(name)
        num = draw(st.integers(1, 8)) if level else draw(st.integers(0, 40))
        counts[name] = num
        table_rows = []
        for rowid in range(num):
            values = []
            for column in table.columns:
                if column.name == "Id":
                    values.append(rowid)
                elif column.name.endswith("id") and len(column.name) == 3:
                    values.append(
                        draw(st.integers(0, counts[names[level + 1]] - 1))
                    )
                else:
                    values.append(draw(st.sampled_from(_KINDS[column.kind])))
            table_rows.append(tuple(values))
        rows[name] = table_rows

    # Query: 0-3 filters, 1-4 projected columns, 0-2 tselects.
    def column_ref():
        name = draw(st.sampled_from(names))
        column = draw(st.sampled_from(schema.table(name).columns))
        return name, column

    filters = []
    for _ in range(draw(st.integers(0, 3))):
        table, column = column_ref()
        value = draw(st.sampled_from(_KINDS[column.kind]))
        filters.append((table, column.name, value))
    projection = []
    for _ in range(draw(st.integers(1, 4))):
        table, column = column_ref()
        projection.append((table, column.name))
    tselects = draw(
        st.sets(
            st.sampled_from([(t, c) for t, c, _ in filters] or [("R", "Id")]),
            max_size=2,
        )
    )
    batch_rows = draw(st.sampled_from([1, 2, 7, DEFAULT_BATCH_ROWS, 256]))
    return schema, names[0], rows, filters, projection, sorted(tselects), batch_rows


def _build_db(schema, root, rows, tselects, batch_size, cache_pages):
    db = EmbeddedDatabase(
        make_token(cache_pages=cache_pages), schema, root, batch_size=batch_size
    )
    order = [t for t in ["G", "P", "R"] if t in rows]
    for name in order:
        for values in rows[name]:
            db.insert(name, values)
    for via_table, column in tselects:
        db.create_tselect(via_table, column)
    return db


@settings(max_examples=30, deadline=None)
@given(_workloads(), st.sampled_from([0, 4]))
def test_batch_matches_legacy(workload, cache_pages):
    schema, root, rows, filters, projection, tselects, batch_rows = workload
    query = Query.build(filters=filters, projection=projection)
    legacy = _build_db(schema, root, rows, tselects, None, cache_pages)
    batch = _build_db(schema, root, rows, tselects, batch_rows, cache_pages)

    legacy_rows, legacy_stats = legacy.query(query)
    batch_rows_out, batch_stats = batch.query(query)

    assert batch_rows_out == legacy_rows
    assert batch_stats.flash_page_reads == legacy_stats.flash_page_reads
    assert (batch_stats.cache.hits, batch_stats.cache.misses) == (
        legacy_stats.cache.hits,
        legacy_stats.cache.misses,
    )
    assert batch_stats.explain.root_scan == legacy_stats.explain.root_scan
    assert batch_stats.explain.batch_rows == batch_rows
    if batch_rows * 8 <= 512:  # batch buffer within one page: charge equal
        assert batch_stats.ram_high_water <= legacy_stats.ram_high_water


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(0, 30), max_size=12).map(
            lambda xs: sorted(set(xs))
        ),
        min_size=1,
        max_size=4,
    )
)
def test_sorted_set_ops_match_merge_operators(postings):
    assert intersect_sorted(postings) == list(
        operators.merge_intersect([iter(p) for p in postings])
    )
    assert union_sorted(postings) == list(
        operators.merge_union([iter(p) for p in postings])
    )


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(_INTS),
            st.sampled_from(_STRS + ["\x03\x00red", "ed", "redd"]),
            st.sampled_from(_FLOATS),
            st.sampled_from(_STRS),
        ),
        max_size=30,
    ),
    st.integers(0, 3),
    st.sampled_from(
        _INTS + _FLOATS + _STRS + ["\x03\x00red", 10**20, True, "nope"]
    ),
)
def test_predicate_mask_matches_python_equality(data, position, probe):
    schema = TableSchema(
        "T",
        columns=[
            Column("A", "int"),
            Column("B", "str"),
            Column("C", "float"),
            Column("D", "str"),
        ],
    )
    table = TableStorage(schema, make_token().allocator)
    for values in data:
        table.insert(values)
    table.flush()
    mask = make_predicate_mask(schema, position, probe)
    records = [
        record for page in table.data.scan_pages() for record in page
    ] + table.data.buffered_records()
    assert mask(records) == [row[position] == probe for row in data]


def test_column_decoder_matches_deserialize():
    schema = TableSchema(
        "T",
        columns=[
            Column("A", "int"),
            Column("B", "float"),
            Column("C", "str"),
            Column("D", "int"),
        ],
    )
    table = TableStorage(schema, make_token().allocator)
    data = [(i, i * 1.5, f"s{i}" * (i % 4), -i) for i in range(50)]
    for values in data:
        table.insert(values)
    table.flush()
    for positions in ([0], [1], [0, 1], [2], [3], [0, 3], [2, 3], [0, 1, 2, 3]):
        decode = make_column_decoder(schema, positions)
        out = {p: [] for p in positions}
        for page in table.data.scan_pages():
            decoded = decode(page)
            for p in positions:
                out[p].extend(decoded[p])
        for p in positions:
            assert out[p] == [row[p] for row in data]


# ---------------------------------------------------------------------------
# Fixed regressions on the TPCD workload
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tpcd_pair():
    def build(batch_size):
        db = EmbeddedDatabase(
            make_token(page_size=1024),
            tpcd.tpcd_schema(),
            tpcd.ROOT_TABLE,
            batch_size=batch_size,
        )
        tpcd.load(db, tpcd.generate(num_lineitems=600, seed=17))
        db.create_tselect("CUSTOMER", "Mktsegment")
        db.create_tselect("SUPPLIER", "Name")
        return db

    return build(None), build(DEFAULT_BATCH_ROWS)


def _assert_same(legacy_result, batch_result):
    (rows_a, stats_a), (rows_b, stats_b) = legacy_result, batch_result
    assert rows_a == rows_b
    assert stats_a.flash_page_reads == stats_b.flash_page_reads


def test_tpcd_query_identical(tpcd_pair):
    legacy, batch = tpcd_pair
    query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
    _assert_same(legacy.query(query), batch.query(query))


def test_tpcd_empty_result(tpcd_pair):
    legacy, batch = tpcd_pair
    query = tpcd.household_supplier_query("HOUSEHOLD", "NO-SUCH-SUPPLIER")
    (rows, _), _ = legacy.query(query), None
    assert rows == []
    _assert_same(legacy.query(query), batch.query(query))


def test_tpcd_string_residual_predicate(tpcd_pair):
    legacy, batch = tpcd_pair
    query = Query.build(
        filters=[("CUSTOMER", "Name", "customer-3"), ("LINEITEM", "Quantity", 5)],
        projection=[("CUSTOMER", "Name"), ("LINEITEM", "Price")],
    )
    _assert_same(legacy.query(query), batch.query(query))


def test_tpcd_grouped_aggregates(tpcd_pair):
    legacy, batch = tpcd_pair
    for function in ("COUNT", "SUM", "AVG"):
        column = None if function == "COUNT" else "Price"
        agg_a, stats_a = legacy.aggregate(
            [("CUSTOMER", "Mktsegment", "HOUSEHOLD")],
            (function, "LINEITEM", column),
            group_by=("SUPPLIER", "Name"),
        )
        agg_b, stats_b = batch.aggregate(
            [("CUSTOMER", "Mktsegment", "HOUSEHOLD")],
            (function, "LINEITEM", column),
            group_by=("SUPPLIER", "Name"),
        )
        assert agg_a == agg_b  # bit-identical: same accumulation order
        assert stats_a.flash_page_reads == stats_b.flash_page_reads


def test_union_stream_queries_identical(tpcd_pair):
    """OR semantics via merged rowid sets: both unions are bit-identical."""
    legacy, batch = tpcd_pair
    segments = ("HOUSEHOLD", "BUILDING")
    legacy_union = sorted(
        set(
            r
            for s in segments
            for r in legacy.tselects[("CUSTOMER", "Mktsegment")].lookup(s)
        )
    )
    batch_union = union_sorted(
        [
            batch.tselects[("CUSTOMER", "Mktsegment")].lookup_batch(s)
            for s in segments
        ]
    )
    assert batch_union == legacy_union
    assert legacy_union  # non-trivial


def test_single_table_schema_queries():
    schema = SchemaGraph(
        [TableSchema("T", [Column("Id", "int"), Column("V", "str")])]
    )
    for batch_size in (None, DEFAULT_BATCH_ROWS):
        db = EmbeddedDatabase(make_token(), schema, "T", batch_size=batch_size)
        for i in range(20):
            db.insert("T", (i, "even" if i % 2 == 0 else "odd"))
        rows, stats = db.query(
            Query.build(filters=[("T", "V", "odd")], projection=[("T", "Id")])
        )
        assert rows == [(i,) for i in range(20) if i % 2]
        assert stats.explain.root_scan


def test_lookup_unindexed_column_without_flush():
    """Regression: fallback-scan lookup must see unflushed inserts."""
    schema = SchemaGraph(
        [TableSchema("T", [Column("Id", "int"), Column("V", "str")])]
    )
    for batch_size in (None, DEFAULT_BATCH_ROWS):
        db = EmbeddedDatabase(make_token(), schema, "T", batch_size=batch_size)
        db.insert("T", (0, "a"))
        db.insert("T", (1, "b"))
        db.insert("T", (2, "a"))
        # No explicit flush: lookup() flushes the storage itself.
        assert db.lookup("T", "V", "a") == [0, 2]
        assert db.lookup("T", "V", "missing") == []


def test_scan_mask_page_prefilter_matches_scan():
    """The page-level needle skip can never drop a match.

    Many pages carry no occurrence of the probe's encoded bytes (skipped
    without unpacking); others contain them only inside a *different*
    column (page-level false positive, resolved by the per-row mask).
    """
    schema = SchemaGraph(
        [
            TableSchema(
                "T",
                [Column("Id", "int"), Column("A", "str"), Column("B", "str")],
            )
        ]
    )
    db = EmbeddedDatabase(make_token(), schema, "T")
    probe = "needle"
    expected = []
    for i in range(300):
        a = probe if i % 17 == 0 else f"filler-{i}"
        # The probe's exact encoded bytes appear in column A on other rows.
        b = "\x06\x00needle" if i % 23 == 0 else "x"
        db.insert("T", (i, b, a))
        if a == probe:
            expected.append(i)
    db.flush()
    assert db.lookup("T", "B", probe) == expected
    legacy = [
        rowid
        for rowid, row in db.storages["T"].scan()
        if row[2] == probe
    ]
    assert legacy == expected


def test_batch_size_zero_selects_legacy():
    schema = SchemaGraph(
        [TableSchema("T", [Column("Id", "int"), Column("V", "str")])]
    )
    db = EmbeddedDatabase(make_token(), schema, "T", batch_size=0)
    assert db.batch_size is None
