"""Tests for the sorted/tree index and the log-only reorganization.

E3's invariants: the reorganized index answers exactly like the sequential
one, lookups cost O(height + duplicate run), the whole reorganization issues
only sequential appends (the flash model would raise otherwise), temporary
logs are reclaimed, and the task is interruptible.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.ram import RamArena
from repro.relational.keyindex import KeyIndex
from repro.relational.reorg import ReorganizationTask, reorganize
from repro.relational.sortedindex import SortedIndexBuilder
from repro.relational.tuples import encode_key


def make_allocator(page_size=256, blocks=1024) -> BlockAllocator:
    flash = NandFlash(
        FlashGeometry(page_size=page_size, pages_per_block=8, num_blocks=blocks)
    )
    return BlockAllocator(flash)


def build_index(allocator, values) -> KeyIndex:
    index = KeyIndex("test", allocator)
    for rowid, value in enumerate(values):
        index.insert(value, rowid)
    index.flush()
    return index


class TestSortedIndexBuilder:
    def test_empty_index(self):
        builder = SortedIndexBuilder(make_allocator(), "empty")
        index = builder.finish()
        assert index.lookup("anything") == []
        assert index.entry_count == 0

    def test_single_page(self):
        builder = SortedIndexBuilder(make_allocator(), "one")
        for rowid, value in enumerate(["a", "b", "b", "c"]):
            builder.add(encode_key(value), rowid)
        index = builder.finish()
        assert index.lookup("b") == [1, 2]
        assert index.lookup("z") == []
        assert index.height == 1

    def test_out_of_order_rejected(self):
        builder = SortedIndexBuilder(make_allocator(), "bad")
        builder.add(encode_key("b"), 0)
        with pytest.raises(StorageError, match="out-of-order"):
            builder.add(encode_key("a"), 1)

    def test_duplicates_spanning_pages(self):
        builder = SortedIndexBuilder(make_allocator(page_size=64), "dup")
        # 64 B pages hold ~4 entries: 40 duplicates span many pages.
        for rowid in range(40):
            builder.add(encode_key("same"), rowid)
        builder.add(encode_key("tail"), 40)
        index = builder.finish()
        assert index.lookup("same") == list(range(40))
        assert index.lookup("tail") == [40]

    def test_multi_level_tree(self):
        builder = SortedIndexBuilder(make_allocator(page_size=64), "tall")
        for rowid in range(500):
            builder.add(encode_key(rowid), rowid)
        index = builder.finish()
        assert index.height >= 2
        for probe in (0, 123, 499):
            assert index.lookup(probe) == [probe]

    def test_range_scan(self):
        builder = SortedIndexBuilder(make_allocator(), "range")
        for rowid in range(100):
            builder.add(encode_key(rowid), rowid)
        index = builder.finish()
        rows = [rowid for _, rowid in index.iter_range(10, 19)]
        assert rows == list(range(10, 20))

    def test_range_low_above_high(self):
        builder = SortedIndexBuilder(make_allocator(), "range2")
        builder.add(encode_key(1), 0)
        index = builder.finish()
        with pytest.raises(StorageError, match="empty range"):
            list(index.iter_range(5, 2))


class TestReorganize:
    def test_equivalent_answers(self):
        allocator = make_allocator()
        rng = random.Random(11)
        values = [f"key-{rng.randrange(40)}" for _ in range(1500)]
        source = build_index(allocator, values)
        ram = RamArena(64 * 1024)
        reorganized = reorganize(source, allocator, ram, sort_buffer_bytes=2048)
        for probe in {f"key-{i}" for i in range(45)}:
            assert reorganized.lookup(probe) == source.lookup(probe)

    def test_lookup_cost_drops_after_reorg(self):
        allocator = make_allocator()
        values = [f"key-{i % 200:04d}" for i in range(4000)]
        source = build_index(allocator, values)
        reorganized = reorganize(
            source, allocator, RamArena(64 * 1024), sort_buffer_bytes=4096
        )
        source.lookup("key-0100")
        reorganized.lookup("key-0100")
        assert (
            reorganized.last_lookup.total_pages
            < source.last_lookup.total_pages / 2
        )

    def test_reorg_never_erases_mid_flight_blocks(self):
        """Only sequential programs + whole-block frees; never a random write.

        The flash model raises FlashViolation on any non-sequential program,
        so simply completing is the proof; we additionally check erases only
        come from temp-log reclamation (drop), not from page rewrites.
        """
        allocator = make_allocator()
        values = [f"v-{i % 100}" for i in range(3000)]
        source = build_index(allocator, values)
        flash = allocator.flash
        before = flash.stats.snapshot()
        reorganize(source, allocator, RamArena(64 * 1024), sort_buffer_bytes=2048)
        delta = flash.stats.delta(before)
        assert delta.page_programs > 0
        # erases == blocks freed by dropping temp runs (block granularity)
        assert delta.block_erases < delta.page_programs

    def test_temporary_runs_reclaimed(self):
        allocator = make_allocator()
        source = build_index(allocator, [f"v-{i}" for i in range(3000)])
        used_before = allocator.allocated_blocks
        result = reorganize(
            source, allocator, RamArena(64 * 1024), sort_buffer_bytes=1024
        )
        # Extra blocks now held = exactly the new index's two logs.
        extra = allocator.allocated_blocks - used_before
        new_index_blocks = (
            result.sorted_log.num_blocks + result.tree_log.num_blocks
        )
        assert extra == new_index_blocks

    def test_swap_and_drop_source(self):
        allocator = make_allocator()
        source = build_index(allocator, ["a", "b", "a"])
        result = reorganize(source, allocator, RamArena(32 * 1024))
        free_mid = allocator.free_blocks
        source.drop()
        assert allocator.free_blocks > free_mid
        assert result.lookup("a") == [0, 2]

    def test_interruptible_steps(self):
        allocator = make_allocator()
        values = [f"k-{i % 50}" for i in range(2000)]
        source = build_index(allocator, values)
        task = ReorganizationTask(
            source, allocator, RamArena(64 * 1024), sort_buffer_bytes=1024
        )
        steps = 0
        while not task.done:
            assert task.step() or task.done
            steps += 1
            # Source stays queryable between steps (background reorg).
            if steps == 2:
                assert source.lookup("k-3") == list(range(3, 2000, 50))
        assert steps > 3  # genuinely incremental
        assert task.result is not None
        assert task.result.lookup("k-3") == list(range(3, 2000, 50))

    def test_multi_pass_merge_with_tiny_fan_in(self):
        allocator = make_allocator()
        values = [f"value-{i % 97}" for i in range(2500)]
        source = build_index(allocator, values)
        # 512 B sort buffer over 256 B pages -> fan-in 2: forces passes.
        task = ReorganizationTask(
            source, allocator, RamArena(64 * 1024), sort_buffer_bytes=512
        )
        assert task.fan_in == 2
        result = task.run()
        assert result.lookup("value-7") == source.lookup("value-7")

    def test_invalid_sort_buffer(self):
        allocator = make_allocator()
        source = build_index(allocator, ["x"])
        with pytest.raises(StorageError):
            reorganize(source, allocator, RamArena(1024), sort_buffer_bytes=0)

    @given(
        st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300)
    )
    @settings(max_examples=20, deadline=None)
    def test_property_reorg_preserves_all_postings(self, values):
        allocator = make_allocator(blocks=2048)
        source = build_index(allocator, values)
        result = reorganize(
            source, allocator, RamArena(64 * 1024), sort_buffer_bytes=512
        )
        for probe in set(values):
            expected = [i for i, v in enumerate(values) if v == probe]
            assert result.lookup(probe) == expected
        assert result.entry_count == len(values)


class TestAbortAndRecovery:
    def test_abort_reclaims_all_temporaries(self):
        allocator = make_allocator()
        source = build_index(allocator, [f"k-{i % 40}" for i in range(2500)])
        blocks_before = allocator.allocated_blocks
        task = ReorganizationTask(
            source, allocator, RamArena(64 * 1024), sort_buffer_bytes=1024
        )
        for _ in range(4):  # get some runs written, then change our mind
            task.step()
        assert allocator.allocated_blocks > blocks_before
        task.abort()
        assert allocator.allocated_blocks == blocks_before
        # Source untouched and queryable.
        assert source.lookup("k-3") == list(range(3, 2500, 40))
        assert not task.step()  # aborted tasks stay dead

    def test_abort_after_completion_is_noop(self):
        allocator = make_allocator()
        source = build_index(allocator, ["a", "b", "a"])
        task = ReorganizationTask(source, allocator, RamArena(32 * 1024))
        result = task.run()
        task.abort()  # must not drop the finished index
        assert result.lookup("a") == [0, 2]

    def test_flash_exhaustion_mid_reorg_cleans_up(self):
        """A failing step reclaims temporaries and re-raises."""
        from repro.errors import FlashViolation

        allocator = make_allocator(blocks=40)  # barely fits the source
        source = build_index(allocator, [f"key-{i}" for i in range(1800)])
        blocks_before = allocator.allocated_blocks
        task = ReorganizationTask(
            source, allocator, RamArena(64 * 1024), sort_buffer_bytes=512
        )
        with pytest.raises(FlashViolation):
            while task.step():
                pass
        # Everything temporary was reclaimed; the source still answers.
        assert allocator.allocated_blocks == blocks_before
        assert source.lookup("key-7") == [7]
