"""Cache-correctness tests: no stale page after erase / reorg block reuse.

The page cache is only admissible if it is *invisible* to every reader:
whatever blocks get erased, recycled, and re-programmed by reorganization
churn, a cached token must return bit-identical results to an uncached one.
These tests exercise exactly the dangerous sequences — ``BlockAllocator.free``
followed by reuse of the same physical pages — and a property-style random
workload comparing cached vs uncached scans.
"""

import random

import pytest

from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.ram import RamArena
from repro.relational.keyindex import KeyIndex
from repro.relational.reorg import reorganize
from repro.storage.cache import PageCache
from repro.storage.log import RecordLog

PAGE_SIZE = 256


def make_allocator(cache_pages: int = 0):
    flash = NandFlash(
        FlashGeometry(page_size=PAGE_SIZE, pages_per_block=8, num_blocks=128)
    )
    allocator = BlockAllocator(flash)
    cache = None
    if cache_pages:
        cache = PageCache(flash, cache_pages, ram=RamArena(64 * 1024))
        allocator.attach_cache(cache)
    return allocator, cache


class TestEraseRecycleNoStaleRead:
    def test_freed_block_reused_by_new_log(self):
        allocator, cache = make_allocator(cache_pages=16)
        old = RecordLog(allocator, name="old")
        for i in range(40):
            old.append(f"old-{i:04d}".encode())
        old.flush()
        stale = [record for _, record in old.scan()]  # warm the cache
        assert all(r.startswith(b"old-") for r in stale)
        cached_before_drop = cache.cached_pages
        assert cached_before_drop > 0

        old.drop()  # BlockAllocator.free + erase for every block
        new = RecordLog(allocator, name="new")
        for i in range(40):
            new.append(f"new-{i:04d}".encode())
        new.flush()
        # The new log recycles the least-worn blocks — the same physical
        # pages the cache held a moment ago. Every read must be fresh.
        assert [r for _, r in new.scan()] == [
            f"new-{i:04d}".encode() for i in range(40)
        ]
        assert cache.stats.invalidations >= cached_before_drop

    def test_reorg_swap_serves_only_new_index(self):
        """Build, reorganize, swap, drop — cached lookups stay correct."""
        allocator, cache = make_allocator(cache_pages=16)
        ram = RamArena(64 * 1024)
        index = KeyIndex("T.k", allocator)
        expected: dict[int, list[int]] = {}
        for rowid in range(600):
            key = rowid % 37
            index.insert(key, rowid)
            expected.setdefault(key, []).append(rowid)
        index.flush()
        # Warm the cache with lookups on the sequential index.
        for key in range(37):
            assert index.lookup(key) == expected[key]

        sorted_index = reorganize(index, allocator, ram, name="swap")
        index.drop()  # erases the old Keys/Bloom blocks under the cache
        for key in range(37):
            assert sorted_index.lookup(key) == expected[key]

    def test_repeated_churn_rounds(self):
        """Many build/reorg/drop cycles never leak a stale page."""
        allocator, cache = make_allocator(cache_pages=8)
        ram = RamArena(64 * 1024)
        for round_no in range(5):
            index = KeyIndex(f"T.k{round_no}", allocator)
            for rowid in range(200):
                index.insert((rowid * 7 + round_no) % 23, rowid)
            index.flush()
            index.lookup(round_no % 23)  # warm
            sorted_index = reorganize(
                index, allocator, ram, name=f"churn{round_no}"
            )
            index.drop()
            expected = sorted(
                rowid
                for rowid in range(200)
                if (rowid * 7 + round_no) % 23 == round_no % 23
            )
            assert sorted_index.lookup(round_no % 23) == expected
            sorted_index.drop()
        assert cache.stats.invalidations > 0


class TestCachedEqualsUncachedProperty:
    @pytest.mark.parametrize("seed", [7, 23, 101])
    @pytest.mark.parametrize("cache_pages", [1, 4, 32])
    def test_random_log_workload_scan_parity(self, seed, cache_pages):
        """Random append/flush/drop workloads: cached scans == uncached."""
        rng = random.Random(seed)
        cached_alloc, cache = make_allocator(cache_pages=cache_pages)
        plain_alloc, _ = make_allocator(cache_pages=0)

        cached_logs: dict[str, RecordLog] = {}
        plain_logs: dict[str, RecordLog] = {}
        for step in range(300):
            op = rng.random()
            name = f"log{rng.randrange(4)}"
            if name not in cached_logs:
                cached_logs[name] = RecordLog(cached_alloc, name=name)
                plain_logs[name] = RecordLog(plain_alloc, name=name)
            if op < 0.70:
                payload = bytes(
                    rng.getrandbits(8) for _ in range(rng.randrange(1, 40))
                )
                cached_logs[name].append(payload)
                plain_logs[name].append(payload)
            elif op < 0.85:
                cached_logs[name].flush()
                plain_logs[name].flush()
            elif op < 0.95:
                # Re-read everything (warms and re-warms the cache).
                assert [r for _, r in cached_logs[name].scan()] == [
                    r for _, r in plain_logs[name].scan()
                ]
            else:
                cached_logs.pop(name).drop()
                plain_logs.pop(name).drop()
        for name in sorted(cached_logs):
            assert [r for _, r in cached_logs[name].scan()] == [
                r for _, r in plain_logs[name].scan()
            ]
        if cache_pages and cache.stats.lookups:
            assert cache.stats.hits + cache.stats.misses == cache.stats.lookups

    @pytest.mark.parametrize("seed", [3, 91])
    def test_random_index_workload_lookup_parity(self, seed):
        """Random insert/lookup/reorg streams: cached index == uncached."""
        rng = random.Random(seed)
        cached_alloc, _ = make_allocator(cache_pages=8)
        plain_alloc, _ = make_allocator(cache_pages=0)
        ram_c, ram_p = RamArena(64 * 1024), RamArena(64 * 1024)

        cached: KeyIndex | object = KeyIndex("T.a", cached_alloc)
        plain: KeyIndex | object = KeyIndex("T.a", plain_alloc)
        rowid = 0
        for step in range(400):
            op = rng.random()
            if op < 0.75 and isinstance(cached, KeyIndex):
                key = rng.randrange(20)
                cached.insert(key, rowid)
                plain.insert(key, rowid)
                rowid += 1
            elif op < 0.95:
                key = rng.randrange(20)
                assert cached.lookup(key) == plain.lookup(key)
            elif isinstance(cached, KeyIndex) and rowid:
                cached.flush()
                plain.flush()
                new_cached = reorganize(cached, cached_alloc, ram_c, name="rc")
                new_plain = reorganize(plain, plain_alloc, ram_p, name="rp")
                cached.drop()
                plain.drop()
                cached, plain = new_cached, new_plain
        for key in range(20):
            assert sorted(cached.lookup(key)) == sorted(plain.lookup(key))
