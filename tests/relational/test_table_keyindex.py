"""Tests for table storage and the Keys+Bloom sequential key index."""

import pytest

from repro.errors import StorageError
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.relational.keyindex import KeyIndex
from repro.relational.schema import Column, TableSchema
from repro.relational.table import TableStorage


def make_allocator(page_size=256, blocks=256) -> BlockAllocator:
    flash = NandFlash(
        FlashGeometry(page_size=page_size, pages_per_block=8, num_blocks=blocks)
    )
    return BlockAllocator(flash)


def people_schema() -> TableSchema:
    return TableSchema(
        "PEOPLE",
        [Column("id", "int"), Column("city", "str"), Column("age", "int")],
        primary_key="id",
    )


class TestTableStorage:
    def test_insert_assigns_dense_rowids(self):
        table = TableStorage(people_schema(), make_allocator())
        rowids = [table.insert((i, "Lyon", 30 + i)) for i in range(10)]
        assert rowids == list(range(10))
        assert table.row_count == 10

    def test_read_by_rowid(self):
        table = TableStorage(people_schema(), make_allocator())
        for i in range(50):
            table.insert((i, f"city-{i % 5}", 20 + i))
        table.flush()
        assert table.read(0) == (0, "city-0", 20)
        assert table.read(37) == (37, "city-2", 57)
        assert table.value(37, "city") == "city-2"

    def test_read_unflushed_row(self):
        table = TableStorage(people_schema(), make_allocator())
        rowid = table.insert((1, "Paris", 44))
        assert table.read(rowid) == (1, "Paris", 44)

    def test_rowid_out_of_range(self):
        table = TableStorage(people_schema(), make_allocator())
        with pytest.raises(StorageError, match="out of range"):
            table.read(0)

    def test_scan_order(self):
        table = TableStorage(people_schema(), make_allocator())
        rows = [(i, "x", i) for i in range(30)]
        for row in rows:
            table.insert(row)
        assert [row for _, row in table.scan()] == rows
        assert [rowid for rowid, _ in table.scan()] == list(range(30))


class TestKeyIndex:
    def test_lookup_exact_matches(self):
        index = KeyIndex("city", make_allocator())
        cities = ["Lyon", "Paris", "Lyon", "Nice", "Lyon", "Paris"]
        for rowid, city in enumerate(cities):
            index.insert(city, rowid)
        index.flush()
        assert index.lookup("Lyon") == [0, 2, 4]
        assert index.lookup("Paris") == [1, 5]
        assert index.lookup("Marseille") == []

    def test_lookup_sees_unflushed_entries(self):
        index = KeyIndex("city", make_allocator())
        index.insert("Lyon", 7)
        assert index.lookup("Lyon") == [7]

    def test_int_and_float_keys(self):
        index = KeyIndex("age", make_allocator())
        index.insert(30, 0)
        index.insert(31, 1)
        index.insert(30, 2)
        index.flush()
        assert index.lookup(30) == [0, 2]
        assert index.lookup(29) == []

    def test_summary_scan_cheaper_than_keys_scan(self):
        """E1's core shape: a lookup reads summaries + few key pages."""
        index = KeyIndex("city", make_allocator(page_size=256), bits_per_key=16.0)
        for rowid in range(2000):
            index.insert(f"city-{rowid % 50}", rowid)
        index.flush()
        assert index.lookup("city-7") == list(range(7, 2000, 50))
        stats = index.last_lookup
        # Summaries are ~2 B/key vs ~12 B/key entries: far fewer pages.
        assert stats.summary_pages < index.keys_pages / 3
        # 'city-7' has 40 entries spread over many pages: each truly matching
        # page is read once; false positives are rare at 16 bits/key.
        assert stats.false_positive_pages <= 3

    def test_lookup_stats_reset_each_call(self):
        index = KeyIndex("k", make_allocator())
        for rowid in range(100):
            index.insert(rowid % 10, rowid)
        index.flush()
        index.lookup(3)
        first = index.last_lookup.total_pages
        index.lookup(3)
        assert index.last_lookup.total_pages == first

    def test_entry_count(self):
        index = KeyIndex("k", make_allocator())
        for rowid in range(17):
            index.insert("v", rowid)
        assert index.entry_count == 17

    def test_drop_reclaims_blocks(self):
        allocator = make_allocator()
        free_before = allocator.free_blocks
        index = KeyIndex("k", make_allocator())  # unrelated allocator
        index = KeyIndex("k", allocator)
        for rowid in range(500):
            index.insert(f"value-{rowid}", rowid)
        index.flush()
        assert allocator.free_blocks < free_before
        index.drop()
        assert allocator.free_blocks == free_before
