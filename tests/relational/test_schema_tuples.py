"""Tests for schema declarations and row/key encodings."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError, StorageError
from repro.relational.schema import Column, ForeignKey, SchemaGraph, TableSchema
from repro.relational.tuples import (
    decode_key,
    deserialize_row,
    encode_key,
    serialize_row,
)


def customer_schema() -> TableSchema:
    return TableSchema(
        "CUSTOMER",
        [Column("CUSkey", "int"), Column("Name", "str"), Column("Balance", "float")],
        primary_key="CUSkey",
    )


class TestColumn:
    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError, match="unknown kind"):
            Column("x", "blob")

    def test_check_value_coerces_int_to_float(self):
        assert Column("x", "float").check_value(3) == 3.0

    def test_check_value_type_mismatch(self):
        with pytest.raises(QueryError, match="expects int"):
            Column("x", "int").check_value("nope")


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(QueryError, match="duplicate column"):
            TableSchema("T", [Column("a", "int"), Column("a", "str")])

    def test_bad_primary_key(self):
        with pytest.raises(QueryError, match="primary key"):
            TableSchema("T", [Column("a", "int")], primary_key="b")

    def test_bad_fk_column(self):
        with pytest.raises(QueryError, match="foreign key column"):
            TableSchema(
                "T",
                [Column("a", "int")],
                foreign_keys=[ForeignKey("b", "P", "pk")],
            )

    def test_column_index(self):
        schema = customer_schema()
        assert schema.column_index("Name") == 1
        with pytest.raises(QueryError, match="no column"):
            schema.column_index("Ghost")


class TestSchemaGraph:
    def _tpcd_like(self) -> SchemaGraph:
        customer = customer_schema()
        order = TableSchema(
            "ORDER",
            [Column("ORDkey", "int"), Column("CUSkey", "int")],
            primary_key="ORDkey",
            foreign_keys=[ForeignKey("CUSkey", "CUSTOMER", "CUSkey")],
        )
        lineitem = TableSchema(
            "LINEITEM",
            [Column("LINkey", "int"), Column("ORDkey", "int")],
            primary_key="LINkey",
            foreign_keys=[ForeignKey("ORDkey", "ORDER", "ORDkey")],
        )
        return SchemaGraph([customer, order, lineitem])

    def test_unknown_parent_table(self):
        orphan = TableSchema(
            "T",
            [Column("pid", "int")],
            foreign_keys=[ForeignKey("pid", "GHOST", "id")],
        )
        with pytest.raises(QueryError, match="unknown table"):
            SchemaGraph([orphan])

    def test_duplicate_table(self):
        with pytest.raises(QueryError, match="duplicate table"):
            SchemaGraph([customer_schema(), customer_schema()])

    def test_ancestry_paths(self):
        graph = self._tpcd_like()
        paths = graph.ancestry_paths("LINEITEM")
        assert set(paths) == {"LINEITEM", "ORDER", "CUSTOMER"}
        assert paths["LINEITEM"] == []
        assert [fk.parent_table for fk in paths["CUSTOMER"]] == [
            "ORDER",
            "CUSTOMER",
        ]


class TestRowSerialization:
    def test_roundtrip(self):
        schema = customer_schema()
        row = (42, "Ana Lopez", 1234.5)
        assert deserialize_row(schema, serialize_row(schema, row)) == row

    def test_wrong_arity(self):
        with pytest.raises(StorageError, match="expected 3 values"):
            serialize_row(customer_schema(), (1, "x"))

    def test_trailing_bytes_detected(self):
        schema = customer_schema()
        data = serialize_row(schema, (1, "x", 0.0)) + b"!"
        with pytest.raises(StorageError, match="trailing"):
            deserialize_row(schema, data)

    def test_unicode_strings(self):
        schema = TableSchema("T", [Column("s", "str")])
        row = ("héllo ✓",)
        assert deserialize_row(schema, serialize_row(schema, row)) == row


class TestKeyEncoding:
    def test_int_order_preserved(self):
        values = [-(10**12), -5, -1, 0, 1, 7, 10**12]
        encoded = [encode_key(v) for v in values]
        assert encoded == sorted(encoded)

    def test_float_order_preserved(self):
        values = [-1e300, -2.5, -0.0, 0.0, 1e-9, 3.14, 1e300]
        encoded = [encode_key(v) for v in values]
        assert sorted(encoded) == encoded

    def test_str_order_preserved(self):
        values = ["", "a", "ab", "b", "ba"]
        encoded = [encode_key(v) for v in values]
        assert encoded == sorted(encoded)

    def test_kinds_do_not_collide(self):
        assert encode_key(1) != encode_key(1.0)
        assert encode_key("1") != encode_key(1)

    def test_bool_rejected(self):
        with pytest.raises(StorageError):
            encode_key(True)

    def test_unsupported_type(self):
        with pytest.raises(StorageError, match="unsupported key type"):
            encode_key([1, 2])

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    @settings(max_examples=100, deadline=None)
    def test_int_roundtrip(self, value):
        assert decode_key(encode_key(value)) == value

    @given(
        st.floats(allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_float_roundtrip(self, value):
        assert decode_key(encode_key(value)) == value

    @given(st.text(max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_str_roundtrip(self, value):
        assert decode_key(encode_key(value)) == value

    @given(
        st.lists(
            st.integers(min_value=-(2**62), max_value=2**62),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_int_encoding_is_monotone(self, values):
        values.sort()
        encoded = [encode_key(v) for v in values]
        assert encoded == sorted(encoded)
