"""Core tracer semantics: exact attribution, disabled path, async nesting.

The attribution invariant everything else relies on: summing
``self_counters`` over every span of a complete trace reproduces the
watched totals exactly — no double-count from nesting, no leakage between
siblings.
"""

import asyncio

from repro import obs
from repro.hardware.flash import FlashGeometry
from repro.hardware.profiles import HardwareProfile, smart_usb_token
from repro.hardware.token import SecurePortableToken
from repro.obs.tracer import MAX_TAGGED_PAGES, Tracer
from repro.storage.log import RecordLog


def make_token(ram_bytes: int = 64 * 1024, cache_pages: int = 0) -> SecurePortableToken:
    base = smart_usb_token()
    profile = HardwareProfile(
        name="obs-test-token",
        ram_bytes=ram_bytes,
        cpu_mhz=base.cpu_mhz,
        flash_geometry=FlashGeometry(page_size=512, pages_per_block=16, num_blocks=512),
        flash_cost=base.flash_cost,
        tamper_resistant=True,
    )
    return SecurePortableToken(profile=profile, cache_pages=cache_pages)


class TestDisabledPath:
    def test_module_span_is_shared_null_span_when_off(self):
        assert obs.get_tracer() is None
        assert obs.span("anything", attr=1) is obs.NULL_SPAN
        assert obs.current_span_id() is None
        obs.event("noop")  # must not raise

    def test_null_span_is_inert(self):
        with obs.NULL_SPAN as span:
            assert span.set(x=1) is span
            assert span.link(42) is span
            span.tag_page(7)
        assert span.pages == ()
        assert span.counters == {}

    def test_flash_hook_absent_until_watched(self):
        token = make_token()
        assert token.flash.trace_read is None
        tracer = Tracer()
        tracer.watch_flash(token.flash)
        assert token.flash.trace_read is not None
        tracer.close()
        assert token.flash.trace_read is None  # detached on close


class TestExactAttribution:
    def build_trace(self):
        token = make_token()
        tracer = Tracer()
        tracer.watch_token(token)
        log = RecordLog(token.allocator, name="obs-t")
        before = token.flash.stats.page_reads
        with obs.tracing(tracer):
            with tracer.span("outer") as outer:
                for _ in range(40):
                    log.append(b"payload" * 8)
                log.flush()
                with tracer.span("inner") as inner:
                    list(log.scan())
        reads = token.flash.stats.page_reads - before
        return tracer, token, outer, inner, reads

    def test_self_counters_sum_to_flash_totals(self):
        tracer, token, outer, inner, reads = self.build_trace()
        assert reads > 0
        assert tracer.totals("flash.page_reads") == reads
        assert tracer.totals("flash.page_reads", self_only=False) == reads

    def test_inclusive_minus_children_is_self(self):
        tracer, _, outer, inner, _ = self.build_trace()
        # All the scan reads are the inner span's; outer keeps the writes.
        assert inner.self_counters["flash.page_reads"] == inner.counters[
            "flash.page_reads"
        ]
        outer_self = outer.self_counters.get("flash.page_reads", 0)
        assert (
            outer_self + inner.counters["flash.page_reads"]
            == outer.counters["flash.page_reads"]
        )
        assert outer.self_counters["flash.page_programs"] == outer.counters[
            "flash.page_programs"
        ]

    def test_durations_come_from_simulated_time(self):
        tracer, token, outer, inner, _ = self.build_trace()
        cost = token.flash.cost_model
        # inner did only reads: its duration is exactly reads * read_us
        # (plus CPU cycles, which RecordLog.scan does not charge).
        assert inner.duration_us > 0
        assert outer.duration_us >= inner.duration_us
        assert tracer.now_us() == token.flash.stats.time_us(cost) + token.mcu.elapsed_us()

    def test_pages_tagged_to_innermost_span_match_self_reads(self):
        tracer, _, outer, inner, _ = self.build_trace()
        for span in tracer.spans:
            tagged = len(span.pages) + span.pages_overflow
            assert tagged == span.self_counters.get("flash.page_reads", 0)
        assert inner.pages  # the scan's reads carry their page numbers

    def test_nested_span_parentage(self):
        tracer, _, outer, inner, _ = self.build_trace()
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None


class TestTracerMechanics:
    def test_span_cap_counts_drops(self):
        tracer = Tracer(max_spans=2)
        with obs.tracing(tracer):
            for _ in range(5):
                with tracer.span("s"):
                    pass
        assert len(tracer.spans) == 2
        assert tracer.dropped_spans == 3

    def test_page_tag_overflow_counts_not_stores(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            for page in range(MAX_TAGGED_PAGES + 10):
                span.tag_page(page)
        assert len(span.pages) == MAX_TAGGED_PAGES
        assert span.pages_overflow == 10

    def test_event_attaches_to_current_span(self):
        tracer = Tracer()
        with obs.tracing(tracer):
            with obs.span("holder") as span:
                obs.event("ping", value=3)
            obs.event("orphan")
        assert tracer.events[0]["span_id"] == span.span_id
        assert tracer.events[0]["attrs"] == {"value": 3}
        assert tracer.events[1]["span_id"] is None

    def test_exception_marks_span_and_still_records(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        assert tracer.spans[0].attrs["error"] == "ValueError"

    def test_tracing_scope_restores_previous(self):
        first, second = Tracer(), Tracer()
        with obs.tracing(first):
            with obs.tracing(second):
                assert obs.get_tracer() is second
            assert obs.get_tracer() is first
        assert obs.get_tracer() is None


class TestAsyncPropagation:
    def test_task_spans_nest_under_spawning_span(self):
        tracer = Tracer()

        async def hop():
            with tracer.span("hop"):
                await asyncio.sleep(0)

        async def main():
            with tracer.span("send") as send:
                await asyncio.gather(
                    asyncio.create_task(hop()), asyncio.create_task(hop())
                )
            return send

        send = asyncio.run(main())
        hops = tracer.spans_named("hop")
        assert len(hops) == 2
        assert all(h.parent_id == send.span_id for h in hops)
        # Each task renders on its own track in the Chrome trace.
        assert len({h.track for h in hops}) == 2
        assert all(h.track != send.track for h in hops)

    def test_sibling_tasks_do_not_leak_context(self):
        tracer = Tracer()

        async def isolated(name):
            with tracer.span(name):
                await asyncio.sleep(0)
                assert tracer.current_span().name == name

        async def main():
            await asyncio.gather(isolated("a"), isolated("b"))

        asyncio.run(main())
        assert {s.name for s in tracer.spans} == {"a", "b"}
