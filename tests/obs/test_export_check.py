"""Exporters + schema checker round trips: what CI's trace-smoke step runs."""

import json

from repro import obs
from repro.obs import check, export
from repro.obs.tracer import Tracer


def build_small_trace() -> Tracer:
    tracer = Tracer()
    counter = {"ops": 0}
    tracer.add_source("sim", lambda: dict(counter))
    tracer.add_time_source(lambda: counter["ops"] * 10.0)
    with obs.tracing(tracer):
        with tracer.span("root", kind="test") as root:
            counter["ops"] += 2
            with tracer.span("leaf") as leaf:
                counter["ops"] += 3
                leaf.tag_page(17)
            obs.event("tick", n=1)
            root.link(leaf.span_id)
    return tracer


class TestJsonl:
    def test_round_trip_passes_checker(self, tmp_path):
        tracer = build_small_trace()
        path = export.write_jsonl(tracer, tmp_path / "TRACE_t.jsonl")
        assert check.check_jsonl(path) == []

    def test_meta_header_first_with_counts(self, tmp_path):
        tracer = build_small_trace()
        path = export.write_jsonl(tracer, tmp_path / "TRACE_t.jsonl")
        first = json.loads(path.read_text().splitlines()[0])
        assert first["type"] == "meta"
        assert first["schema_version"] == export.SCHEMA_VERSION
        assert first["span_count"] == 2
        assert first["event_count"] == 1

    def test_span_records_carry_attribution(self, tmp_path):
        tracer = build_small_trace()
        path = export.write_jsonl(tracer, tmp_path / "TRACE_t.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        spans = {r["name"]: r for r in records if r["type"] == "span"}
        assert spans["leaf"]["self_counters"]["sim.ops"] == 3
        assert spans["root"]["counters"]["sim.ops"] == 5
        assert spans["root"]["self_counters"]["sim.ops"] == 2
        assert spans["leaf"]["pages"] == [17]
        assert spans["root"]["links"] == [spans["leaf"]["span_id"]]

    def test_checker_flags_corruption(self, tmp_path):
        tracer = build_small_trace()
        path = export.write_jsonl(tracer, tmp_path / "TRACE_t.jsonl")
        lines = path.read_text().splitlines()
        bad_span = json.loads(lines[1])
        bad_span["start_us"] = bad_span["end_us"] + 1
        del bad_span["counters"]
        lines[1] = json.dumps(bad_span)
        lines.append("{not json")
        path.write_text("\n".join(lines) + "\n")
        problems = check.check_jsonl(path)
        assert any("missing 'counters'" in p for p in problems)
        assert any("invalid JSON" in p for p in problems)

    def test_checker_flags_missing_meta_and_bad_self(self, tmp_path):
        path = tmp_path / "TRACE_x.jsonl"
        span = {
            "type": "span", "name": "s", "span_id": 1, "parent_id": None,
            "start_us": 0, "end_us": 1, "duration_us": 1,
            "counters": {"c": 1}, "self_counters": {"c": 5},
        }
        path.write_text(json.dumps(span) + "\n")
        problems = check.check_jsonl(path)
        assert any("first record must be meta" in p for p in problems)
        assert any("exceeds inclusive" in p for p in problems)


class TestChromeTrace:
    def test_round_trip_passes_checker(self, tmp_path):
        tracer = build_small_trace()
        path = export.write_chrome_trace(tracer, tmp_path / "TRACE_t.json")
        assert check.check_chrome(path) == []

    def test_spans_become_complete_events(self, tmp_path):
        tracer = build_small_trace()
        document = export.chrome_trace(tracer, process_name="unit")
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "unit"
        complete = {e["name"]: e for e in events if e["ph"] == "X"}
        assert complete["leaf"]["dur"] == 30.0
        assert complete["root"]["dur"] == 50.0
        assert complete["leaf"]["args"]["self"]["sim.ops"] == 3
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["name"] == "tick"

    def test_checker_flags_bad_document(self, tmp_path):
        path = tmp_path / "TRACE_bad.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert check.check_chrome(path)
        path.write_text(
            json.dumps({"traceEvents": [{"ph": "X", "name": "s", "pid": 1}]})
        )
        assert any("needs ts + dur" in p for p in check.check_chrome(path))


class TestReportsAndCli:
    def test_top_cost_report_ranks_by_self_time(self):
        tracer = build_small_trace()
        report = export.top_cost_report(tracer)
        lines = report.splitlines()
        assert "span" in lines[0]
        # leaf spent 30 us self, root only 20 us self: leaf ranks first.
        assert lines[2].startswith("leaf")
        assert lines[3].startswith("root")

    def test_flame_report_folds_stacks(self):
        tracer = build_small_trace()
        flame = export.flame_report(tracer)
        assert "root 20" in flame
        assert "root;leaf 30" in flame
        by_counter = export.flame_report(tracer, counter="sim.ops")
        assert "root;leaf 3" in by_counter

    def test_cli_exit_codes(self, tmp_path, capsys):
        tracer = build_small_trace()
        jsonl = export.write_jsonl(tracer, tmp_path / "TRACE_t.jsonl")
        chrome = export.write_chrome_trace(tracer, tmp_path / "TRACE_t.json")
        assert check.main([str(jsonl), str(chrome)]) == 0
        assert "ok" in capsys.readouterr().out
        bad = tmp_path / "TRACE_bad.jsonl"
        bad.write_text("")
        assert check.main([str(bad)]) == 1
        assert check.main([]) == 2
