"""MetricsRegistry: first-class instruments + legacy *Stats pull adapters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.flash import FlashStats
from repro.net.metrics import NetMetrics
from repro.obs.metrics import (
    PERCENTILE_GROWTH,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PercentileHistogram,
    global_registry,
)
from repro.storage.cache import CacheStats


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_max(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.max(7)
        assert gauge.value == 10
        gauge.max(12)
        assert gauge.value == 12

    def test_histogram_summary(self):
        histogram = Histogram(bounds=(1, 4, 16))
        for value in (0, 2, 3, 100):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["min"] == 0 and summary["max"] == 100
        assert summary["buckets"] == {"le_1": 1, "le_4": 2, "inf": 1}
        assert summary["mean"] == pytest.approx(105 / 4)

    def test_get_or_create_and_type_conflict(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_includes_instruments(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc(3)
        registry.gauge("ram").set(64)
        registry.histogram("lat").observe(2)
        snapshot = registry.snapshot()
        assert snapshot["queries"] == 3
        assert snapshot["ram"] == 64
        assert snapshot["lat"]["count"] == 1


class TestStatsAdapters:
    def test_flash_stats_adapter_reads_live_values(self):
        stats = FlashStats()
        registry = MetricsRegistry()
        registry.register_stats("flash", stats)
        assert registry.snapshot()["flash.page_reads"] == 0
        stats.page_reads += 7  # pull adapter: later mutations are visible
        assert registry.snapshot()["flash.page_reads"] == 7

    def test_cache_stats_adapter(self):
        stats = CacheStats(hits=3, misses=1)
        registry = MetricsRegistry()
        registry.register_stats("cache", stats)
        snapshot = registry.snapshot()
        assert snapshot["cache.hits"] == 3
        assert snapshot["cache.misses"] == 1

    def test_net_metrics_nested_and_counter_fields(self):
        metrics = NetMetrics()
        metrics.on_send("Claim", 120)
        metrics.on_deliver("n1", "agg", 120, latency_ms=4.0)
        metrics.on_retry_exhausted("contribution")
        registry = MetricsRegistry()
        registry.register_stats("net", metrics)
        snapshot = registry.snapshot()
        assert snapshot["net.frames_sent"] == 1
        assert snapshot["net.dropped_after_retry"] == 1
        assert snapshot["net.retry_exhausted_by.contribution"] == 1
        # Nested CommStats dataclass flattens, tuple edge keys become a->b.
        assert snapshot["net.comm.bytes"] == 120
        assert snapshot["net.comm.by_edge.n1->agg"] == 120

    def test_callable_source_and_unregister(self):
        registry = MetricsRegistry()
        registry.register_stats("ram", lambda: {"in_use": 42})
        assert registry.snapshot()["ram.in_use"] == 42
        registry.unregister("ram")
        assert registry.snapshot() == {}

    def test_non_numeric_fields_skipped(self):
        registry = MetricsRegistry()
        registry.register_stats("x", lambda: {"n": 1, "junk": object()})
        snapshot = registry.snapshot()
        assert snapshot["x.n"] == 1
        assert "x.junk" not in snapshot


class TestPercentileHistogram:
    def test_quantiles_within_relative_error(self):
        import random

        histogram = PercentileHistogram()
        rng = random.Random(7)
        values = [rng.lognormvariate(3.0, 1.2) for _ in range(20_000)]
        for value in values:
            histogram.observe(value)
        values.sort()
        for q in (0.5, 0.99, 0.999):
            exact = values[min(len(values) - 1, int(q * len(values)))]
            estimate = histogram.quantile(q)
            # Log buckets of growth g bound the relative error by g.
            assert exact / PERCENTILE_GROWTH <= estimate
            assert estimate <= exact * PERCENTILE_GROWTH

    def test_ordering_and_bounds(self):
        histogram = PercentileHistogram()
        for value in (1.0, 5.0, 9.0, 120.0):
            histogram.observe(value)
        assert histogram.min == 1.0
        assert histogram.max == 120.0
        assert histogram.p50 <= histogram.p99 <= histogram.p999
        assert histogram.p999 <= histogram.max

    def test_zero_and_negative_values_land_in_zero_bucket(self):
        histogram = PercentileHistogram()
        histogram.observe(0.0)
        histogram.observe(-3.0)
        assert histogram.count == 2
        assert histogram.quantile(0.5) == 0.0

    def test_empty_quantile_is_zero(self):
        assert PercentileHistogram().quantile(0.99) == 0.0

    def test_merge_equals_combined_stream(self):
        import random

        rng = random.Random(11)
        a, b, combined = (
            PercentileHistogram(),
            PercentileHistogram(),
            PercentileHistogram(),
        )
        for _ in range(5000):
            value = rng.expovariate(0.01)
            (a if rng.random() < 0.5 else b).observe(value)
            combined.observe(value)
        a.merge(b)
        assert a.count == combined.count
        assert a.buckets == combined.buckets
        # Quantiles depend only on bucket counts, so they match exactly;
        # the running sum differs by float association order.
        for q in (0.5, 0.99, 0.999):
            assert a.quantile(q) == combined.quantile(q)
        assert a.min == combined.min and a.max == combined.max
        assert a.total == pytest.approx(combined.total)

    def test_single_observation_pins_every_quantile(self):
        histogram = PercentileHistogram()
        histogram.observe(42.0)
        assert histogram.count == 1
        assert histogram.min == histogram.max == 42.0
        # One sample: every quantile is that sample's bucket.
        assert histogram.p50 == histogram.p99 == histogram.p999
        assert 42.0 / PERCENTILE_GROWTH <= histogram.p50
        assert histogram.p50 <= 42.0 * PERCENTILE_GROWTH
        summary = histogram.summary()
        assert summary["count"] == 1

    def test_merge_of_disjoint_bucket_ranges(self):
        low, high = PercentileHistogram(), PercentileHistogram()
        low_values = [0.001 * (i + 1) for i in range(50)]
        high_values = [1e6 * (i + 1) for i in range(50)]
        for value in low_values:
            low.observe(value)
        for value in high_values:
            high.observe(value)
        assert not (set(low.buckets) & set(high.buckets))  # truly disjoint
        low.merge(high)
        assert low.count == 100
        assert low.min == 0.001
        assert low.max == 5e7
        # The median straddles the gap; the tail lives in the high range.
        assert low_values[-1] <= low.quantile(0.5) or low.quantile(
            0.5
        ) >= low_values[-1] / PERCENTILE_GROWTH
        assert low.p99 >= 1e6 / PERCENTILE_GROWTH

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
            max_size=60,
        ),
        st.lists(
            st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
            max_size=60,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_pooled_observation(self, left, right):
        merged, pooled = PercentileHistogram(), PercentileHistogram()
        other = PercentileHistogram()
        for value in left:
            merged.observe(value)
            pooled.observe(value)
        for value in right:
            other.observe(value)
            pooled.observe(value)
        merged.merge(other)
        assert merged.count == pooled.count
        assert merged.buckets == pooled.buckets
        assert merged.min == pooled.min and merged.max == pooled.max
        for q in (0.5, 0.99, 0.999, 1.0):
            assert merged.quantile(q) == pooled.quantile(q)

    def test_registry_snapshot_includes_summary(self):
        registry = MetricsRegistry()
        percentiles = registry.percentiles("svc.latency")
        for value in (1.0, 2.0, 100.0):
            percentiles.observe(value)
        snapshot = registry.snapshot()
        assert snapshot["svc.latency"]["count"] == 3
        assert snapshot["svc.latency"]["p50"] <= snapshot["svc.latency"]["p99"]

    def test_registry_rejects_kind_mismatch(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.percentiles("x")


def test_global_registry_is_a_singleton():
    assert global_registry() is global_registry()
