"""Distributed tracing units: context, sampling, adoption, recorder, SLO."""

import contextvars
import json

import pytest

from repro import obs
from repro.obs import check as obs_check
from repro.obs import telemetry
from repro.obs.metrics import MetricsRegistry, global_registry
from repro.obs.recorder import FlightRecorder, SloMonitor
from repro.obs.tracer import Tracer


def make_context(sampled=True, parent=0, key="t"):
    return telemetry.TraceContext(
        trace_id=telemetry.derive_trace_id(key),
        parent_span_id=parent,
        sampled=sampled,
    )


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = make_context(parent=99)
        data = ctx.to_bytes()
        assert len(data) == telemetry.WIRE_SIZE == 17
        assert telemetry.TraceContext.from_bytes(data) == ctx

    def test_unsampled_round_trip(self):
        ctx = make_context(sampled=False)
        assert telemetry.TraceContext.from_bytes(ctx.to_bytes()) == ctx

    def test_child_keeps_id_and_decision(self):
        ctx = make_context(sampled=False)
        child = ctx.child(1234)
        assert child.trace_id == ctx.trace_id
        assert child.parent_span_id == 1234
        assert child.sampled is False
        # NULL_SPAN.span_id is None -> no remote parent, not a crash.
        assert ctx.child(None).parent_span_id == 0

    def test_derive_trace_id_deterministic_and_nonzero(self):
        assert telemetry.derive_trace_id("a", 1) == telemetry.derive_trace_id("a", 1)
        assert telemetry.derive_trace_id("a", 1) != telemetry.derive_trace_id("a", 2)
        assert telemetry.derive_trace_id("a", 1) > 0


class TestHeadSampling:
    def test_boundary_rates(self):
        trace_id = telemetry.derive_trace_id("x")
        assert telemetry.should_sample(trace_id, 1.0) is True
        assert telemetry.should_sample(trace_id, 0.0) is False

    def test_deterministic_and_monotone(self):
        ids = [telemetry.derive_trace_id("q", i) for i in range(500)]
        low = {i for i in ids if telemetry.should_sample(i, 0.2)}
        high = {i for i in ids if telemetry.should_sample(i, 0.6)}
        # Re-sampling is reproducible...
        assert low == {i for i in ids if telemetry.should_sample(i, 0.2)}
        # ...and a higher rate keeps a strict superset of a lower one.
        assert low <= high
        assert 0 < len(low) < len(high) < len(ids)

    def test_sampler_counts_and_validation(self):
        sampler = telemetry.AdaptiveSampler(0.5)
        contexts = [sampler.context_for("q", i) for i in range(200)]
        assert sampler.decisions == 200
        assert sampler.kept == sum(1 for c in contexts if c.sampled)
        assert 0 < sampler.kept < 200
        with pytest.raises(ValueError):
            telemetry.AdaptiveSampler(1.5)


class TestSuppression:
    def test_unsampled_context_suppresses_spans_not_events(self):
        tracer = Tracer()
        with obs.tracing(tracer):
            with telemetry.activate(make_context(sampled=False)):
                span = obs.span("work")
                assert span is obs.NULL_SPAN
                obs.event("anomaly", detail=1)
            with telemetry.activate(make_context(sampled=True)):
                assert obs.span("work") is not obs.NULL_SPAN
        assert [e["name"] for e in tracer.events] == ["anomaly"]

    def test_activate_restores_previous_context(self):
        outer = make_context(key="outer")
        with telemetry.activate(outer):
            with telemetry.activate(make_context(key="inner")):
                assert telemetry.current_context().trace_id != outer.trace_id
            assert telemetry.current_context() is outer
        assert telemetry.current_context() is None

    def test_activate_none_is_a_no_op(self):
        with telemetry.activate(None):
            assert telemetry.current_context() is None


class TestWireHopReparenting:
    def test_span_reparents_under_remote_parent_without_double_count(self):
        """Both wire sides on one tracer: the hop still attributes exactly."""
        registry = global_registry()
        counter = registry.counter("crypto.modexp_count")
        tracer = Tracer()
        tracer.watch_modexp()
        with obs.tracing(tracer):
            with obs.span("querier.request") as querier_span:
                counter.inc(3)  # querier-side cost
                ctx = make_context().child(querier_span.span_id)

                def service_side():
                    # A fresh contextvars context: the service task has no
                    # local parent, only the wire-carried remote one.
                    with telemetry.activate(ctx):
                        with obs.span("service.frame"):
                            counter.inc(7)  # service-side cost

                contextvars.Context().run(service_side)
        by_name = {s.name: s for s in tracer.spans}
        frame = by_name["service.frame"]
        assert frame.parent_id == querier_span.span_id
        assert frame.trace_id == ctx.trace_id
        assert frame.self_counters["crypto.modexp_count"] == 7
        # The querier span saw 10 inclusive but only 3 are its own.
        assert by_name["querier.request"].counters["crypto.modexp_count"] == 10
        assert by_name["querier.request"].self_counters["crypto.modexp_count"] == 3
        total = sum(
            s.self_counters.get("crypto.modexp_count", 0) for s in tracer.spans
        )
        assert total == 10


class TestRemoteRecordingAndAdoption:
    def test_round_trip_through_a_simulated_worker(self):
        ctx = make_context(parent=555)
        # No tracer installed here: this is what a worker process sees.
        with telemetry.remote_recording(ctx, "worker-sim") as recording:
            assert recording is not None
            with obs.span("shard.exec", shard=0):
                global_registry().counter("crypto.modexp_count").inc(5)
        wrapped = recording.wrap(["payload"])
        assert isinstance(wrapped, telemetry.TracedResult)
        assert wrapped.process == "worker-sim"
        (record,) = wrapped.spans
        assert record["remote_parent"] is True
        assert record["counters"]["crypto.modexp_count"] == 5

        tracer = Tracer()
        with obs.tracing(tracer):
            with obs.span("shard.wait") as wait:
                value = telemetry.adopt(wrapped, wait)
        assert value == ["payload"]
        exec_span = next(s for s in tracer.spans if s.name == "shard.exec")
        assert exec_span.parent_id == wait.span_id
        assert exec_span.process == "worker-sim"
        assert exec_span.trace_id == ctx.trace_id
        # The adopted counters were charged to the wait span's children.
        assert wait.self_counters.get("crypto.modexp_count", 0) == 0

    def test_unsampled_context_records_nothing(self):
        with telemetry.remote_recording(make_context(sampled=False)) as rec:
            assert rec is None

    def test_serial_path_skips_recording(self):
        tracer = Tracer()
        with obs.tracing(tracer):
            with telemetry.remote_recording(make_context()) as rec:
                assert rec is None

    def test_adopt_passes_plain_results_through(self):
        assert telemetry.adopt({"plain": 1}, obs.NULL_SPAN) == {"plain": 1}

    def test_adoption_maps_intra_batch_links_despite_id_collision(self):
        """A batch root's foreign parent id colliding with a worker-local
        span id must not be resolved through the id map."""
        records = [
            {  # child, recorded first (closes first)
                "name": "inner", "span_id": 2, "parent_id": 1,
                "start_us": 1.0, "end_us": 2.0, "duration_us": 1.0,
                "counters": {"c": 1.0}, "self_counters": {"c": 1.0},
            },
            {  # batch root whose remote parent id collides with id 2
                "name": "outer", "span_id": 1, "parent_id": 2,
                "remote_parent": True,
                "start_us": 0.0, "end_us": 3.0, "duration_us": 3.0,
                "counters": {"c": 1.0}, "self_counters": {},
            },
        ]
        tracer = Tracer()
        with obs.tracing(tracer):
            with obs.span("wait") as wait:
                tracer.adopt_remote(records, wait)
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id == wait.span_id
        # Only the batch root's inclusive counters charged the parent.
        assert wait._child_counts == {"c": 1.0}

    def test_adopted_timestamps_rebase_into_parent_window(self):
        records = [
            {
                "name": "remote", "span_id": 1, "parent_id": 777,
                "remote_parent": True,
                "start_us": 1e9, "end_us": 1e9 + 50.0, "duration_us": 50.0,
                "counters": {}, "self_counters": {},
            }
        ]
        tracer = Tracer()
        with obs.tracing(tracer):
            with obs.span("wait") as wait:
                (adopted,) = tracer.adopt_remote(records, wait)
        assert adopted.start_us == wait.start_us
        assert adopted.end_us - adopted.start_us == pytest.approx(50.0)


class TestFlightRecorder:
    def _traced_work(self, recorder, spans=5):
        tracer = Tracer()
        recorder.attach(tracer)
        with obs.tracing(tracer):
            for i in range(spans):
                with obs.span(f"op-{i}"):
                    pass
            obs.event("note", i=1)
        return tracer

    def test_ring_keeps_only_recent_spans(self):
        recorder = FlightRecorder(capacity=3)
        self._traced_work(recorder, spans=10)
        assert len(recorder.spans) == 3
        assert [s.name for s in recorder.spans] == ["op-7", "op-8", "op-9"]
        recorder.detach()

    def test_trigger_dumps_a_valid_bundle(self, tmp_path):
        recorder = FlightRecorder(
            capacity=8, dump_dir=tmp_path, registry=MetricsRegistry()
        )
        self._traced_work(recorder)
        path = recorder.trigger("overloaded", query_class="agg", queue_depth=4)
        recorder.detach()
        assert path is not None and path.exists()
        assert obs_check.check_file(path) == []
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        header, *body = lines
        assert header["type"] == "bundle"
        assert header["reason"] == "overloaded"
        assert header["details"]["queue_depth"] == 4
        assert body[-1]["type"] == "metrics"

    def test_event_name_triggers_a_dump(self, tmp_path):
        recorder = FlightRecorder(capacity=4, dump_dir=tmp_path)
        tracer = Tracer()
        recorder.attach(tracer)
        with obs.tracing(tracer):
            obs.event("fault.kill", op=12)
        recorder.detach()
        assert recorder.triggers == 1
        assert recorder.last_trigger["reason"] == "fault_kill"
        assert len(recorder.dumps) == 1

    def test_max_dumps_caps_disk_but_not_counting(self, tmp_path):
        recorder = FlightRecorder(capacity=2, dump_dir=tmp_path, max_dumps=2)
        self._traced_work(recorder)
        for _ in range(5):
            recorder.trigger("overloaded")
        recorder.detach()
        assert recorder.triggers == 5
        assert len(recorder.dumps) == 2

    def test_ram_charged_while_attached(self):
        from repro.hardware.ram import RamArena
        from repro.obs.recorder import SLOT_BYTES

        ram = RamArena(budget_bytes=64 * 1024)
        recorder = FlightRecorder(capacity=16, ram=ram)
        tracer = Tracer()
        recorder.attach(tracer)
        assert ram.in_use == 16 * SLOT_BYTES
        recorder.detach()
        assert ram.in_use == 0

    def test_hooks_chain_to_previous(self):
        seen = []
        tracer = Tracer()
        tracer.on_record = lambda span: seen.append(span.name)
        recorder = FlightRecorder(capacity=4)
        recorder.attach(tracer)
        with obs.tracing(tracer):
            with obs.span("chained"):
                pass
        recorder.detach()
        assert seen == ["chained"]
        assert tracer.on_record is not None  # restored


class TestSloMonitor:
    def test_breach_fires_once_per_bad_window(self):
        breaches = []
        monitor = SloMonitor(
            {"agg": 10.0}, window=4,
            on_breach=lambda cls, p99, slo: breaches.append((cls, p99, slo)),
        )
        for _ in range(4):
            monitor.observe("agg", 50.0)
        assert len(breaches) == 1
        assert breaches[0][0] == "agg"
        assert breaches[0][1] > 10.0
        # A healthy window does not re-trigger.
        for _ in range(4):
            monitor.observe("agg", 1.0)
        assert len(breaches) == 1
        assert monitor.breaches == {"agg": 1}

    def test_unmonitored_class_is_ignored(self):
        monitor = SloMonitor({"agg": 10.0}, window=2)
        monitor.observe("other", 1e9)
        assert monitor.status()["breaches"] == {}


class TestTelemetryBundle:
    def test_install_and_shutdown_restore_state(self):
        previous = obs.get_tracer()
        bundle = telemetry.Telemetry(sample_rate=1.0)
        with bundle:
            assert obs.get_tracer() is bundle.tracer
            with obs.span("in-bundle"):
                pass
        assert obs.get_tracer() is previous
        assert [s.name for s in bundle.tracer.spans] == ["in-bundle"]
        status = bundle.status()
        assert status["spans_recorded"] == 1
        assert status["recorder"]["spans_buffered"] == 1

    def test_slo_breach_triggers_recorder(self):
        bundle = telemetry.Telemetry(
            sample_rate=1.0, slo_p99_ms={"agg": 1.0}, slo_window=2
        )
        with bundle:
            for _ in range(2):
                bundle.observe_latency("agg", 100.0)
        assert bundle.recorder.triggers == 1
        assert bundle.recorder.last_trigger["reason"] == "slo_breach"
        assert any(e["name"] == "slo.breach" for e in bundle.tracer.events)
