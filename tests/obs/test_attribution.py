"""E21: exact flash-cost attribution on real query workloads.

The satellite invariant: a Tselect/Tjoin query over a *cached* index
attributes its page reads to probe child spans whose ``self_counters`` sum
exactly to the token's ``FlashStats`` delta — cache hits never masquerade
as reads, and no read is double-counted by the span nesting.

Plus the bench acceptance path: ``bench_e20_cache.py --profile`` embeds a
metrics snapshot in the experiment meta whose flash totals equal the sum of
per-span self reads, and its trace artifacts pass ``repro.obs.check``.
"""

import importlib.util
import json
from pathlib import Path

from repro import obs
from repro.bench.harness import Experiment, write_json
from repro.hardware.flash import FlashGeometry
from repro.hardware.profiles import HardwareProfile, smart_usb_token
from repro.hardware.token import SecurePortableToken
from repro.obs import check
from repro.relational.query import EmbeddedDatabase
from repro.workloads import tpcd


def make_db(cache_pages: int) -> EmbeddedDatabase:
    base = smart_usb_token()
    profile = HardwareProfile(
        name="obs-attr-token",
        ram_bytes=128 * 1024,
        cpu_mhz=base.cpu_mhz,
        flash_geometry=FlashGeometry(
            page_size=1024, pages_per_block=32, num_blocks=2048
        ),
        flash_cost=base.flash_cost,
        tamper_resistant=True,
    )
    token = SecurePortableToken(profile=profile, cache_pages=cache_pages)
    db = EmbeddedDatabase(token, tpcd.tpcd_schema(), tpcd.ROOT_TABLE)
    tpcd.load(db, tpcd.generate(150, seed=31))
    db.create_tselect("CUSTOMER", "Mktsegment")
    db.create_tselect("SUPPLIER", "Name")
    return db


def run_traced_queries(db: EmbeddedDatabase, repeats: int = 2):
    query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
    before = db.token.flash.stats.page_reads
    rows = None
    with obs.profile(token=db.token) as prof:
        for _ in range(repeats):
            rows, _ = db.query(query)
    delta = db.token.flash.stats.page_reads - before
    return prof.tracer, rows, delta


class TestTjoinAttribution:
    def test_cached_probe_spans_sum_exactly_to_flash_delta(self):
        db = make_db(cache_pages=16)
        tracer, rows, delta = run_traced_queries(db)
        assert rows  # the query actually joined something
        assert delta > 0  # cold cache: the first run had to hit flash
        # No double count, no leakage: self sums reproduce the delta ...
        assert tracer.totals("flash.page_reads") == delta
        # ... and so does the root-only inclusive view.
        assert tracer.totals("flash.page_reads", self_only=False) == delta

    def test_probe_spans_carry_the_reads_they_caused(self):
        db = make_db(cache_pages=16)
        tracer, _, _ = run_traced_queries(db)
        probes = [
            s for s in tracer.spans
            if s.name in ("tselect.probe", "tjoin.probe")
        ]
        assert probes
        # Every span's tagged page list matches its self read count: a page
        # served by the cache is never tagged, a flash read always is.
        for span in tracer.spans:
            tagged = len(span.pages) + span.pages_overflow
            assert tagged == span.self_counters.get("flash.page_reads", 0)

    def test_cache_hits_attributed_alongside_reads(self):
        db = make_db(cache_pages=16)
        query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
        db.query(query)  # warm the cache untraced
        hits_before = db.token.page_cache.stats.hits
        with obs.profile(token=db.token) as prof:
            db.query(query)
        hit_delta = db.token.page_cache.stats.hits - hits_before
        assert hit_delta > 0
        assert prof.tracer.totals("cache.hits") == hit_delta

    def test_uncached_token_attributes_identically(self):
        db = make_db(cache_pages=0)
        tracer, rows, delta = run_traced_queries(db, repeats=1)
        assert rows and delta > 0
        assert tracer.totals("flash.page_reads") == delta
        queries = tracer.spans_named("db.query")
        assert len(queries) == 1
        assert queries[0].counters["flash.page_reads"] == delta

    def test_query_span_tree_shape(self):
        db = make_db(cache_pages=16)
        tracer, _, _ = run_traced_queries(db, repeats=1)
        query_span = tracer.spans_named("db.query")[0]
        probes = [
            s for s in tracer.spans
            if s.name in ("tselect.probe", "tjoin.probe")
        ]
        by_id = {s.span_id: s for s in tracer.spans}
        for probe in probes:
            # Every probe sits somewhere under the db.query span.
            node = probe
            while node.parent_id is not None:
                node = by_id[node.parent_id]
            assert node.name == "profile"
        assert query_span.attrs["rows_out"] > 0


# ----------------------------------------------------------------------
# Bench acceptance: --profile artifacts and snapshot consistency
# ----------------------------------------------------------------------
def load_bench_e20():
    path = (
        Path(__file__).resolve().parents[2]
        / "benchmarks"
        / "bench_e20_cache.py"
    )
    spec = importlib.util.spec_from_file_location("bench_e20_cache", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_profiled_bench_snapshot_sums_to_flash_totals(tmp_path, monkeypatch):
    monkeypatch.setenv("BENCH_SMOKE", "1")
    monkeypatch.setenv("BENCH_JSON_DIR", str(tmp_path))
    bench = load_bench_e20()
    experiment = Experiment(
        experiment_id="e20", title="t", claim="c", columns=["x"]
    )
    bench.attach_tselect_profile(experiment)
    meta = experiment.meta["profile"]

    span_reads = sum(
        entry["self"].get("flash.page_reads", 0)
        for entry in meta["spans_by_name"].values()
    )
    # Trace, registry snapshot, and raw FlashStats all agree exactly.
    assert span_reads == meta["metrics"]["flash.page_reads"]
    assert span_reads == meta["flash_totals"]["page_reads"]
    assert span_reads > 0
    assert meta["dropped_spans"] == 0
    assert meta["sim_time_us"] > 0

    chrome = Path(meta["artifacts"]["chrome"])
    jsonl = Path(meta["artifacts"]["jsonl"])
    assert check.check_file(chrome) == []
    assert check.check_file(jsonl) == []

    # The snapshot survives the BENCH_<id>.json round trip.
    path = write_json(experiment, tmp_path)
    loaded = json.loads(path.read_text())
    assert (
        loaded["meta"]["profile"]["metrics"]["flash.page_reads"] == span_reads
    )


def test_tracer_fully_detached_after_profile():
    db = make_db(cache_pages=16)
    run_traced_queries(db, repeats=1)
    # Disabled again: the hot-path hook is gone and module spans are no-ops.
    assert db.token.flash.trace_read is None
    assert obs.get_tracer() is None
    assert obs.span("x") is obs.NULL_SPAN


# ----------------------------------------------------------------------
# E26 tentpole: one query, one coherent trace across wire and processes
# ----------------------------------------------------------------------
import asyncio
import random

from repro.crypto.paillier import generate_keypair
from repro.globalq.parallel import WorkerPool, collect_encrypted_sum
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery
from repro.net.bus import MessageBus
from repro.net.codec import KIND_QUERY, KIND_RESULT, Frame, encode_json_payload
from repro.obs import telemetry
from repro.obs.metrics import global_registry
from repro.obs.telemetry import Telemetry
from repro.service import (
    FAMILY_SECURE_AGG,
    QueryDescriptor,
    ServiceConfig,
    ServicePopulation,
    SsiQueryService,
)
from repro.workloads.people import CITIES, PersonRecord


def make_service_nodes(count: int = 48) -> list[PdsNode]:
    rng = random.Random(17)
    return [
        PdsNode(
            i,
            [
                PersonRecord(
                    {
                        "city": CITIES[rng.randrange(len(CITIES))],
                        "salary": float(1000 + rng.randrange(2000)),
                    }
                )
            ],
        )
        for i in range(count)
    ]


class TestDistributedTraceAttribution:
    """The worker-pool hop preserves the E21 invariant to the page."""

    def test_pool_modexp_self_sums_reproduce_registry_delta(self):
        public, _ = generate_keypair(bits=256, rng=random.Random(7))
        counter = global_registry().counter("crypto.modexp_count")
        with Telemetry(sample_rate=1.0) as bundle:
            context = bundle.sampler.context_for("e26-pool")
            before = counter.value
            with telemetry.activate(context):
                with obs.span("test.root"):
                    with WorkerPool(workers=2) as pool:
                        partials = collect_encrypted_sum(
                            [3 * v for v in range(48)],
                            public,
                            shard_size=16,
                            pool=pool,
                        )
            delta = counter.value - before
        tracer = bundle.tracer
        assert partials and delta > 0
        # Exact attribution across the process boundary: per-span self
        # modexp counts sum to the submitting process's registry delta.
        assert tracer.totals("crypto.modexp_count") == delta
        execs = [
            s for s in tracer.spans if s.name == "smc.secure_sum.shard.exec"
        ]
        waits = {
            s.span_id: s
            for s in tracer.spans
            if s.name == "smc.secure_sum.shard"
        }
        assert execs
        for span in execs:
            assert span.process and span.process.startswith("worker-")
            assert span.parent_id in waits  # adopted under its wait span
        # Every span of the run belongs to the one derived trace.
        assert {s.trace_id for s in tracer.spans} == {context.trace_id}

    def test_sampling_rate_changes_no_ciphertext(self):
        public, _ = generate_keypair(bits=256, rng=random.Random(7))
        values = [2 * v for v in range(40)]

        def run(rate):
            with Telemetry(sample_rate=rate) as bundle:
                context = bundle.sampler.context_for("e26-equal")
                with telemetry.activate(context):
                    with WorkerPool(workers=2) as pool:
                        partials = collect_encrypted_sum(
                            values, public, shard_size=16, pool=pool
                        )
            traced = len(bundle.tracer.spans)
            return [
                (p.shard_index, p.partial, p.ciphertext_bytes)
                for p in partials
            ], traced

        sampled, spans_on = run(1.0)
        unsampled, spans_off = run(0.0)
        assert sampled == unsampled  # bit-identical partials
        assert spans_on > 0 and spans_off == 0

    def test_sampling_rate_changes_no_rows_and_no_flash_reads(self):
        def run(rate):
            db = make_db(cache_pages=16)
            query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
            before = db.token.flash.stats.page_reads
            if rate is None:  # tracing disabled entirely
                rows, _ = db.query(query)
            else:
                with Telemetry(sample_rate=rate) as bundle:
                    context = bundle.sampler.context_for("e26-flash")
                    with telemetry.activate(context):
                        rows, _ = db.query(query)
            return rows, db.token.flash.stats.page_reads - before

        disabled = run(None)
        assert disabled[1] > 0
        for rate in (0.0, 0.01, 1.0):
            assert run(rate) == disabled


class TestServiceWireTrace:
    """E24-style acceptance: querier frame -> admission -> execution ->
    shard child processes, one trace, ids resolving to the page."""

    def test_one_query_yields_one_cross_process_trace(self):
        asyncio.run(self._drive())

    async def _drive(self):
        population = ServicePopulation(make_service_nodes(), TokenFleet(0))
        descriptor = QueryDescriptor(
            FAMILY_SECURE_AGG, AggregateQuery.sum("salary")
        )
        with WorkerPool(workers=2) as pool:
            with Telemetry(sample_rate=1.0) as bundle:
                service = SsiQueryService(
                    population,
                    ServiceConfig(
                        max_in_flight=1,
                        cache_capacity=0,
                        workers=2,
                        shard_size=8,
                        pool=pool,
                    ),
                    telemetry=bundle,
                )
                service.start()
                bus = MessageBus(rng=random.Random(5))
                server = asyncio.ensure_future(
                    service.serve_endpoint(bus.register("ssi"))
                )
                querier = bus.register("querier-0")
                try:
                    with obs.span("querier.request") as querier_span:
                        context = bundle.sampler.context_for(
                            "e26-wire"
                        ).child(querier_span.span_id)
                        body = dict(
                            descriptor.to_dict(), request_id="querier-0/0"
                        )
                        await querier.send(
                            "ssi",
                            Frame(
                                KIND_QUERY,
                                "querier-0",
                                0,
                                encode_json_payload(body),
                                trace=context,
                            ),
                        )
                        reply = await querier.recv(timeout=60.0)
                finally:
                    server.cancel()
                    await service.stop()

        assert reply.kind == KIND_RESULT
        # The reply carries the same trace back to the querier.
        assert reply.trace is not None
        assert reply.trace.trace_id == context.trace_id

        tracer = bundle.tracer
        by_id = {s.span_id: s for s in tracer.spans}
        by_name: dict[str, list] = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, []).append(span)

        def ancestors(span):
            names = []
            node = span
            while node.parent_id is not None and node.parent_id in by_id:
                node = by_id[node.parent_id]
                names.append(node.name)
            return names

        # Wire hop: the service's frame span hangs off the querier span.
        (frame_span,) = by_name["service.frame"]
        assert frame_span.parent_id == querier_span.span_id
        # Admission/execution: service.query under the frame span.
        (query_span,) = by_name["service.query"]
        assert "service.frame" in ancestors(query_span)
        # Every shard ran in a pool child process and nests under the
        # query via its shard wait span.
        execs = by_name["globalq.collect.shard.exec"]
        assert execs
        processes = {s.process for s in execs}
        assert processes and all(
            p and p.startswith("worker-") for p in processes
        )
        for span in execs:
            chain = ancestors(span)
            assert chain[0] == "globalq.collect.shard"
            assert "service.query" in chain
            assert chain[-1] == "querier.request"
        # One trace id stamps the whole tree, wire to child process.
        assert {
            s.trace_id for s in tracer.spans if s.trace_id is not None
        } == {context.trace_id}
        # The E21 invariant holds for the full distributed run: watched
        # self-counters sum exactly to the submitting registry's delta
        # (secure-agg does no modexps, and the trace proves it).
        assert tracer.totals("crypto.modexp_count") == 0
