"""E21: exact flash-cost attribution on real query workloads.

The satellite invariant: a Tselect/Tjoin query over a *cached* index
attributes its page reads to probe child spans whose ``self_counters`` sum
exactly to the token's ``FlashStats`` delta — cache hits never masquerade
as reads, and no read is double-counted by the span nesting.

Plus the bench acceptance path: ``bench_e20_cache.py --profile`` embeds a
metrics snapshot in the experiment meta whose flash totals equal the sum of
per-span self reads, and its trace artifacts pass ``repro.obs.check``.
"""

import importlib.util
import json
from pathlib import Path

from repro import obs
from repro.bench.harness import Experiment, write_json
from repro.hardware.flash import FlashGeometry
from repro.hardware.profiles import HardwareProfile, smart_usb_token
from repro.hardware.token import SecurePortableToken
from repro.obs import check
from repro.relational.query import EmbeddedDatabase
from repro.workloads import tpcd


def make_db(cache_pages: int) -> EmbeddedDatabase:
    base = smart_usb_token()
    profile = HardwareProfile(
        name="obs-attr-token",
        ram_bytes=128 * 1024,
        cpu_mhz=base.cpu_mhz,
        flash_geometry=FlashGeometry(
            page_size=1024, pages_per_block=32, num_blocks=2048
        ),
        flash_cost=base.flash_cost,
        tamper_resistant=True,
    )
    token = SecurePortableToken(profile=profile, cache_pages=cache_pages)
    db = EmbeddedDatabase(token, tpcd.tpcd_schema(), tpcd.ROOT_TABLE)
    tpcd.load(db, tpcd.generate(150, seed=31))
    db.create_tselect("CUSTOMER", "Mktsegment")
    db.create_tselect("SUPPLIER", "Name")
    return db


def run_traced_queries(db: EmbeddedDatabase, repeats: int = 2):
    query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
    before = db.token.flash.stats.page_reads
    rows = None
    with obs.profile(token=db.token) as prof:
        for _ in range(repeats):
            rows, _ = db.query(query)
    delta = db.token.flash.stats.page_reads - before
    return prof.tracer, rows, delta


class TestTjoinAttribution:
    def test_cached_probe_spans_sum_exactly_to_flash_delta(self):
        db = make_db(cache_pages=16)
        tracer, rows, delta = run_traced_queries(db)
        assert rows  # the query actually joined something
        assert delta > 0  # cold cache: the first run had to hit flash
        # No double count, no leakage: self sums reproduce the delta ...
        assert tracer.totals("flash.page_reads") == delta
        # ... and so does the root-only inclusive view.
        assert tracer.totals("flash.page_reads", self_only=False) == delta

    def test_probe_spans_carry_the_reads_they_caused(self):
        db = make_db(cache_pages=16)
        tracer, _, _ = run_traced_queries(db)
        probes = [
            s for s in tracer.spans
            if s.name in ("tselect.probe", "tjoin.probe")
        ]
        assert probes
        # Every span's tagged page list matches its self read count: a page
        # served by the cache is never tagged, a flash read always is.
        for span in tracer.spans:
            tagged = len(span.pages) + span.pages_overflow
            assert tagged == span.self_counters.get("flash.page_reads", 0)

    def test_cache_hits_attributed_alongside_reads(self):
        db = make_db(cache_pages=16)
        query = tpcd.household_supplier_query("HOUSEHOLD", "SUPPLIER-1")
        db.query(query)  # warm the cache untraced
        hits_before = db.token.page_cache.stats.hits
        with obs.profile(token=db.token) as prof:
            db.query(query)
        hit_delta = db.token.page_cache.stats.hits - hits_before
        assert hit_delta > 0
        assert prof.tracer.totals("cache.hits") == hit_delta

    def test_uncached_token_attributes_identically(self):
        db = make_db(cache_pages=0)
        tracer, rows, delta = run_traced_queries(db, repeats=1)
        assert rows and delta > 0
        assert tracer.totals("flash.page_reads") == delta
        queries = tracer.spans_named("db.query")
        assert len(queries) == 1
        assert queries[0].counters["flash.page_reads"] == delta

    def test_query_span_tree_shape(self):
        db = make_db(cache_pages=16)
        tracer, _, _ = run_traced_queries(db, repeats=1)
        query_span = tracer.spans_named("db.query")[0]
        probes = [
            s for s in tracer.spans
            if s.name in ("tselect.probe", "tjoin.probe")
        ]
        by_id = {s.span_id: s for s in tracer.spans}
        for probe in probes:
            # Every probe sits somewhere under the db.query span.
            node = probe
            while node.parent_id is not None:
                node = by_id[node.parent_id]
            assert node.name == "profile"
        assert query_span.attrs["rows_out"] > 0


# ----------------------------------------------------------------------
# Bench acceptance: --profile artifacts and snapshot consistency
# ----------------------------------------------------------------------
def load_bench_e20():
    path = (
        Path(__file__).resolve().parents[2]
        / "benchmarks"
        / "bench_e20_cache.py"
    )
    spec = importlib.util.spec_from_file_location("bench_e20_cache", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_profiled_bench_snapshot_sums_to_flash_totals(tmp_path, monkeypatch):
    monkeypatch.setenv("BENCH_SMOKE", "1")
    monkeypatch.setenv("BENCH_JSON_DIR", str(tmp_path))
    bench = load_bench_e20()
    experiment = Experiment(
        experiment_id="e20", title="t", claim="c", columns=["x"]
    )
    bench.attach_tselect_profile(experiment)
    meta = experiment.meta["profile"]

    span_reads = sum(
        entry["self"].get("flash.page_reads", 0)
        for entry in meta["spans_by_name"].values()
    )
    # Trace, registry snapshot, and raw FlashStats all agree exactly.
    assert span_reads == meta["metrics"]["flash.page_reads"]
    assert span_reads == meta["flash_totals"]["page_reads"]
    assert span_reads > 0
    assert meta["dropped_spans"] == 0
    assert meta["sim_time_us"] > 0

    chrome = Path(meta["artifacts"]["chrome"])
    jsonl = Path(meta["artifacts"]["jsonl"])
    assert check.check_file(chrome) == []
    assert check.check_file(jsonl) == []

    # The snapshot survives the BENCH_<id>.json round trip.
    path = write_json(experiment, tmp_path)
    loaded = json.loads(path.read_text())
    assert (
        loaded["meta"]["profile"]["metrics"]["flash.page_reads"] == span_reads
    )


def test_tracer_fully_detached_after_profile():
    db = make_db(cache_pages=16)
    run_traced_queries(db, repeats=1)
    # Disabled again: the hot-path hook is gone and module spans are no-ops.
    assert db.token.flash.trace_read is None
    assert obs.get_tracer() is None
    assert obs.span("x") is obs.NULL_SPAN
