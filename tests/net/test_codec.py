"""Byte-level codec tests: frames and protocol payloads round-trip,
malformed bytes always surface as ProtocolError."""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.globalq.messages import EncryptedContribution
from repro.globalq.protocol import AggregationOutcome
from repro.globalq.queries import Accumulator
from repro.net.codec import (
    KIND_ACK,
    KIND_CONTRIB,
    KIND_NAMES,
    KIND_QUERY,
    KIND_REJECT,
    KIND_RESULT,
    Frame,
    decode_json_payload,
    decode_contribution,
    decode_frame,
    decode_outcome,
    decode_partition,
    encode_contribution,
    encode_json_payload,
    encode_frame,
    encode_outcome,
    encode_partition,
    pack_u32,
    unpack_u32,
)


class TestFrame:
    @pytest.mark.parametrize("kind", sorted(KIND_NAMES))
    def test_roundtrip_every_kind(self, kind):
        frame = Frame(kind, "pds-42", 7, b"payload")
        assert decode_frame(encode_frame(frame)) == frame

    def test_standing_kinds_preserve_the_trace_block(self):
        """SUBSCRIBE/DELTA/UPDATE frames round-trip as v2 traced frames —
        the delta stream joins distributed traces like any other traffic."""
        from repro.net.codec import KIND_DELTA, KIND_SUBSCRIBE, KIND_UPDATE
        from repro.obs.telemetry import TraceContext

        context = TraceContext(trace_id=77, parent_span_id=5, sampled=True)
        for kind in (KIND_SUBSCRIBE, KIND_DELTA, KIND_UPDATE):
            frame = Frame(kind, "pds-1", 9, b"\x01\x02", trace=context)
            decoded = decode_frame(encode_frame(frame))
            assert decoded.kind == kind
            assert decoded.payload == b"\x01\x02"
            assert decoded.trace is not None
            assert decoded.trace.to_bytes() == context.to_bytes()

    def test_empty_payload(self):
        frame = Frame(KIND_ACK, "ssi", 0)
        assert decode_frame(encode_frame(frame)) == frame

    def test_kind_name(self):
        assert Frame(KIND_CONTRIB, "a", 0).kind_name == "CONTRIB"
        assert Frame(KIND_CONTRIB, "a", 0).kind_name in KIND_NAMES.values()

    @given(
        st.sampled_from(sorted(KIND_NAMES)),
        st.text(min_size=1, max_size=40),
        st.integers(0, 2**32 - 1),
        st.binary(max_size=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, kind, sender, seq, payload):
        frame = Frame(kind, sender, seq, payload)
        assert decode_frame(encode_frame(frame)) == frame

    def test_unknown_kind_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="unknown frame kind"):
            encode_frame(Frame(99, "a", 0))

    def test_oversized_sender_rejected(self):
        with pytest.raises(ProtocolError, match="sender"):
            encode_frame(Frame(KIND_ACK, "x" * 256, 0))

    def test_truncated_header(self):
        with pytest.raises(ProtocolError, match="shorter than its header"):
            decode_frame(b"\xa7\x01")

    def test_bad_magic(self):
        data = bytearray(encode_frame(Frame(KIND_ACK, "a", 1)))
        data[0] = 0x00
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(bytes(data))

    def test_bad_version(self):
        data = bytearray(encode_frame(Frame(KIND_ACK, "a", 1)))
        data[1] = 9
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(bytes(data))

    def test_unknown_kind_rejected_on_decode(self):
        data = bytearray(encode_frame(Frame(KIND_ACK, "a", 1)))
        data[2] = 77
        with pytest.raises(ProtocolError, match="unknown frame kind"):
            decode_frame(bytes(data))

    def test_length_mismatch(self):
        data = encode_frame(Frame(KIND_ACK, "a", 1, b"xy"))
        with pytest.raises(ProtocolError, match="length"):
            decode_frame(data + b"trailing")
        with pytest.raises(ProtocolError, match="length"):
            decode_frame(data[:-1])

    def test_invalid_utf8_sender(self):
        data = bytearray(encode_frame(Frame(KIND_ACK, "ab", 1)))
        header = struct.Struct("<BBBBII")
        data[header.size] = 0xFF  # first sender byte -> invalid UTF-8
        with pytest.raises(ProtocolError, match="UTF-8"):
            decode_frame(bytes(data))


class TestU32:
    def test_roundtrip(self):
        assert unpack_u32(pack_u32(0)) == 0
        assert unpack_u32(pack_u32(2**32 - 1)) == 2**32 - 1

    def test_too_short(self):
        with pytest.raises(ProtocolError):
            unpack_u32(b"\x01")


CONTRIBUTIONS = [
    EncryptedContribution(blob=b"ciphertext"),
    EncryptedContribution(blob=b"c", group_tag=b"tag-bytes"),
    EncryptedContribution(blob=b"c", bucket_id=3),
    EncryptedContribution(blob=b"", group_tag=b"", bucket_id=0),
    EncryptedContribution(blob=b"c", group_tag=b"t", bucket_id=-1),
]


class TestContributionCodec:
    @pytest.mark.parametrize("contribution", CONTRIBUTIONS)
    def test_roundtrip(self, contribution):
        encoded = encode_contribution(contribution)
        assert decode_contribution(encoded) == contribution

    def test_none_fields_stay_none(self):
        decoded = decode_contribution(
            encode_contribution(EncryptedContribution(blob=b"x"))
        )
        assert decoded.group_tag is None
        assert decoded.bucket_id is None

    def test_empty_tag_distinct_from_no_tag(self):
        with_tag = decode_contribution(
            encode_contribution(
                EncryptedContribution(blob=b"x", group_tag=b"")
            )
        )
        assert with_tag.group_tag == b""

    def test_too_short(self):
        with pytest.raises(ProtocolError, match="too short"):
            decode_contribution(b"\x00\x00")

    def test_length_mismatch(self):
        encoded = encode_contribution(EncryptedContribution(blob=b"abcdef"))
        with pytest.raises(ProtocolError, match="length"):
            decode_contribution(encoded + b"z")


class TestPartitionCodec:
    def test_roundtrip(self):
        pid, decoded = decode_partition(encode_partition(17, CONTRIBUTIONS))
        assert pid == 17
        assert decoded == CONTRIBUTIONS

    def test_empty_partition(self):
        assert decode_partition(encode_partition(0, [])) == (0, [])

    def test_truncated(self):
        encoded = encode_partition(2, CONTRIBUTIONS)
        with pytest.raises(ProtocolError, match="truncated|too short"):
            decode_partition(encoded[:-3])

    def test_trailing_bytes(self):
        encoded = encode_partition(2, [])
        with pytest.raises(ProtocolError, match="trailing"):
            decode_partition(encoded + b"\x00")


def outcome() -> AggregationOutcome:
    accumulator = Accumulator()
    accumulator.add("lyon", 2.0)
    accumulator.add("paris", 1.5)
    accumulator.add("paris", 0.5)
    return AggregationOutcome(
        accumulator=accumulator,
        real_tuples=3,
        fake_tuples=2,
        integrity_failures=1,
        seen_pds_sequences={(4, 0), (9, 2)},
    )


class TestOutcomeCodec:
    def test_roundtrip(self):
        pid, decoded = decode_outcome(encode_outcome(5, outcome()))
        original = outcome()
        assert pid == 5
        assert decoded.real_tuples == original.real_tuples
        assert decoded.fake_tuples == original.fake_tuples
        assert decoded.integrity_failures == original.integrity_failures
        assert decoded.seen_pds_sequences == original.seen_pds_sequences
        assert decoded.accumulator.sums == original.accumulator.sums
        assert decoded.accumulator.counts == original.accumulator.counts

    def test_truncated(self):
        encoded = encode_outcome(5, outcome())
        for cut in (4, len(encoded) - 3):
            with pytest.raises(ProtocolError):
                decode_outcome(encoded[:cut])

    def test_trailing_bytes(self):
        with pytest.raises(ProtocolError, match="trailing"):
            decode_outcome(encode_outcome(5, outcome()) + b"\x00")


class TestServiceFrames:
    def test_new_kinds_are_named_and_distinct(self):
        assert KIND_NAMES[KIND_QUERY] == "QUERY"
        assert KIND_NAMES[KIND_RESULT] == "RESULT"
        assert KIND_NAMES[KIND_REJECT] == "REJECT"
        assert len({KIND_QUERY, KIND_RESULT, KIND_REJECT}) == 3

    def test_json_payload_round_trips_through_frame(self):
        body = {"request_id": 3, "result": {"*": 1.5}, "cached": False}
        frame = Frame(KIND_RESULT, "ssi", 9, encode_json_payload(body))
        decoded = decode_frame(encode_frame(frame))
        assert decoded.kind == KIND_RESULT
        assert decode_json_payload(decoded.payload) == body

    def test_json_payload_is_canonical(self):
        a = encode_json_payload({"b": 1, "a": 2})
        b = encode_json_payload({"a": 2, "b": 1})
        assert a == b  # key order never changes the bytes

    @pytest.mark.parametrize(
        "data",
        [b"\xff\xfe", b"not json", b"[1,2]", b'"scalar"'],
    )
    def test_malformed_json_payloads_rejected(self, data):
        with pytest.raises(ProtocolError):
            decode_json_payload(data)

    def test_unencodable_object_rejected(self):
        with pytest.raises(ProtocolError):
            encode_json_payload({"x": object()})


class TestDeltaBatchCodec:
    def _entries(self, count=4):
        from repro.globalq.continuous import EncryptedDelta

        return [
            (
                sub,
                EncryptedDelta(
                    pds_id=i,
                    seq=i + 1,
                    timestamp=i % 3,
                    value_cipher=(1 << 200) + 17 * i,
                    count_cipher=(1 << 199) + 5 * i,
                ),
            )
            for i, sub in zip(range(count), [1, 1, 2, 7] * count)
        ]

    def test_round_trip(self):
        from repro.net.codec import (
            KIND_DELTA_BATCH,
            decode_delta_batch,
            encode_delta_batch,
        )

        entries = self._entries()
        frame = Frame(
            KIND_DELTA_BATCH, "pds-0", 1, encode_delta_batch(entries)
        )
        decoded = decode_frame(encode_frame(frame))
        assert decoded.kind == KIND_DELTA_BATCH
        assert KIND_NAMES[KIND_DELTA_BATCH] == "DELTA_BATCH"
        assert decode_delta_batch(decoded.payload) == entries

    def test_empty_batch_round_trips(self):
        from repro.net.codec import decode_delta_batch, encode_delta_batch

        assert decode_delta_batch(encode_delta_batch([])) == []

    def test_truncated_and_trailing_bytes_rejected(self):
        from repro.net.codec import decode_delta_batch, encode_delta_batch

        blob = encode_delta_batch(self._entries())
        with pytest.raises(ProtocolError):
            decode_delta_batch(blob[:-3])
        with pytest.raises(ProtocolError):
            decode_delta_batch(blob + b"\x00")
        with pytest.raises(ProtocolError):
            decode_delta_batch(b"\x01")  # count says 1, no entry bytes

    def test_entry_payload_corruption_rejected(self):
        from repro.net.codec import decode_delta_batch, encode_delta_batch

        blob = bytearray(encode_delta_batch(self._entries(1)))
        # Shrink the inner delta header's vlen so lengths disagree.
        blob[-1] ^= 0xFF
        with pytest.raises(ProtocolError):
            decode_delta_batch(bytes(blob[:-4]))
