"""Message bus tests: link models, loss/offline drops, backpressure,
mailbox timeouts — all via ``asyncio.run`` (no async test plugin needed)."""

import asyncio
import random

import pytest

from repro.errors import NetTimeout, ProtocolError
from repro.net.bus import LinkProfile, MessageBus
from repro.net.codec import KIND_ACK, KIND_CONTRIB, Frame
from repro.net.metrics import LatencyStats, NetMetrics


class TestLinkProfile:
    def test_defaults_valid(self):
        profile = LinkProfile()
        assert profile.loss == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss": 1.0},
            {"loss": -0.1},
            {"latency_ms": -1.0},
            {"jitter_ms": -1.0},
            {"bandwidth_bps": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            LinkProfile(**kwargs)

    def test_delay_without_jitter_is_latency(self):
        profile = LinkProfile(latency_ms=7.0)
        assert profile.delay_ms(100, random.Random(0)) == 7.0

    def test_jitter_bounded(self):
        profile = LinkProfile(latency_ms=5.0, jitter_ms=3.0)
        rng = random.Random(1)
        for _ in range(50):
            assert 5.0 <= profile.delay_ms(10, rng) <= 8.0

    def test_bandwidth_adds_serialization_delay(self):
        profile = LinkProfile(latency_ms=0.0, bandwidth_bps=8000.0)
        # 1000 bytes at 8 kbit/s = 1 second = 1000 ms.
        assert profile.delay_ms(1000, random.Random(0)) == pytest.approx(1000.0)


def run(coro):
    return asyncio.run(coro)


def make_bus(**kwargs) -> MessageBus:
    return MessageBus(rng=random.Random(0), **kwargs)


class TestMessageBus:
    def test_register_twice_rejected(self):
        async def body():
            bus = make_bus()
            bus.register("a")
            with pytest.raises(ValueError):
                bus.register("a")

        run(body())

    def test_unknown_receiver_rejected(self):
        async def body():
            bus = make_bus()
            bus.register("a")
            with pytest.raises(ProtocolError, match="unknown endpoint"):
                await bus.send("a", "ghost", Frame(KIND_ACK, "a", 0))

        run(body())

    def test_send_and_receive(self):
        async def body():
            bus = make_bus()
            a = bus.register("a")
            b = bus.register("b")
            frame = Frame(KIND_CONTRIB, "a", 3, b"payload")
            assert await a.send("b", frame)
            received = await b.recv(timeout=1.0)
            assert received == frame
            await bus.close()

        run(body())

    def test_loss_drops_frames(self):
        async def body():
            bus = make_bus(default_link=LinkProfile(loss=0.999))
            a = bus.register("a")
            bus.register("b")
            accepted = [
                await a.send("b", Frame(KIND_ACK, "a", i)) for i in range(50)
            ]
            assert not all(accepted)
            assert bus.metrics.drops["loss"] > 0
            await bus.close()

        run(body())

    def test_offline_receiver_drops(self):
        async def body():
            bus = make_bus()
            a = bus.register("a")
            bus.register("b")
            bus.set_offline("b", True)
            assert not await a.send("b", Frame(KIND_ACK, "a", 0))
            assert bus.metrics.drops["offline"] == 1
            bus.set_offline("b", False)
            assert bus.is_online("b")
            assert await a.send("b", Frame(KIND_ACK, "a", 1))
            await bus.close()

        run(body())

    def test_offline_sender_drops(self):
        async def body():
            bus = make_bus()
            a = bus.register("a")
            bus.register("b")
            bus.set_offline("a", True)
            assert not await a.send("b", Frame(KIND_ACK, "a", 0))
            await bus.close()

        run(body())

    def test_per_link_override(self):
        async def body():
            bus = make_bus()
            a = bus.register("a")
            bus.register("b")
            lossy = LinkProfile(loss=0.999)
            bus.set_link("a", "b", lossy)
            assert bus.link_for("a", "b") is lossy
            assert bus.link_for("b", "a") is bus.default_link
            sent = [
                await a.send("b", Frame(KIND_ACK, "a", i)) for i in range(50)
            ]
            assert not all(sent)
            await bus.close()

        run(body())

    def test_metrics_account_sends_and_deliveries(self):
        async def body():
            bus = make_bus()
            a = bus.register("a")
            b = bus.register("b")
            await a.send("b", Frame(KIND_CONTRIB, "a", 0, b"xyz"))
            await b.recv(timeout=1.0)
            metrics = bus.metrics
            assert metrics.frames_sent == 1
            assert metrics.frames_delivered == 1
            assert metrics.sent_by_kind["CONTRIB"] == 1
            assert metrics.comm.messages == 1
            assert metrics.comm.by_edge[("a", "b")] == metrics.comm.bytes > 0
            assert metrics.inflight == 0
            await bus.close()

        run(body())

    def test_backpressure_blocks_sender(self):
        async def body():
            bus = make_bus()
            a = bus.register("a")
            bus.register("b", queue_size=1)  # capacity 1 + slack
            blocked = asyncio.Event()

            async def flood():
                for i in range(200):
                    await a.send("b", Frame(KIND_ACK, "a", i))
                blocked.set()

            task = asyncio.ensure_future(flood())
            await asyncio.sleep(0.05)
            # The receiver never drains, so the flood cannot complete.
            assert not blocked.is_set()
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            await bus.close()

        run(body())


class TestEndpoint:
    def test_recv_timeout(self):
        async def body():
            bus = make_bus()
            a = bus.register("a")
            with pytest.raises(NetTimeout):
                await a.recv(timeout=0.01)

        run(body())

    def test_try_recv_nonblocking(self):
        async def body():
            bus = make_bus()
            a = bus.register("a")
            b = bus.register("b")
            assert b.try_recv() is None
            frame = Frame(KIND_ACK, "a", 9)
            await a.send("b", frame)
            await asyncio.sleep(0.01)  # let the delivery task run
            assert b.pending == 1
            assert b.try_recv() == frame
            assert b.try_recv() is None
            await bus.close()

        run(body())

    def test_recv_match_discards_stale(self):
        async def body():
            bus = make_bus()
            a = bus.register("a")
            b = bus.register("b")
            for seq in (1, 2, 3):
                await a.send("b", Frame(KIND_ACK, "a", seq))
            frame = await b.recv_match(lambda f: f.seq == 3, timeout=1.0)
            assert frame.seq == 3
            assert b.pending == 0  # 1 and 2 were discarded on the way
            await bus.close()

        run(body())

    def test_recv_match_timeout(self):
        async def body():
            bus = make_bus()
            a = bus.register("a")
            b = bus.register("b")
            await a.send("b", Frame(KIND_ACK, "a", 1))
            with pytest.raises(NetTimeout):
                await b.recv_match(lambda f: f.seq == 99, timeout=0.02)
            await bus.close()

        run(body())


class TestNetMetrics:
    def test_latency_stats(self):
        stats = LatencyStats()
        assert stats.mean_ms == 0.0
        stats.add(10.0)
        stats.add(20.0)
        assert stats.mean_ms == 15.0
        assert stats.max_ms == 20.0

    def test_phase_latency_attribution(self):
        metrics = NetMetrics()
        metrics.set_phase("collection")
        metrics.on_send("CONTRIB", 10)
        metrics.on_deliver("a", "b", 10, 5.0)
        metrics.set_phase("aggregation")
        metrics.on_send("CLAIM", 4)
        metrics.on_deliver("t", "ssi", 4, 7.0)
        assert metrics.latency_by_phase["collection"].mean_ms == 5.0
        assert metrics.latency_by_phase["aggregation"].mean_ms == 7.0

    def test_merge_channel_stats(self):
        from repro.smc.parties import CommStats

        metrics = NetMetrics()
        stats = CommStats()
        stats.record("x", "y", 100)
        metrics.merge_channel_stats(stats)
        metrics.merge_channel_stats(stats)
        assert metrics.comm.bytes == 200
        assert metrics.comm.by_edge[("x", "y")] == 200

    def test_summary_keys(self):
        summary = NetMetrics().summary()
        assert summary["frames_sent"] == 0
        assert summary["drop_reasons"] == {}
