"""Retry policy and churn-runtime tests."""

import asyncio
import random

import pytest

from repro.errors import NetTimeout, RetriesExhausted
from repro.net.bus import MessageBus
from repro.net.retry import RetryPolicy, with_retries
from repro.net.runtime import ChurnModel, NodeRuntime


def run(coro):
    return asyncio.run(coro)


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [{"attempts": 0}, {"factor": 0.5}, {"jitter": 1.5}, {"jitter": -0.1}],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(
            attempts=10, base_delay=0.01, factor=2.0, max_delay=0.05,
            jitter=0.0,
        )
        delays = list(policy.delays())
        assert len(delays) == 9
        assert delays[0] == 0.01
        assert delays == sorted(delays)
        assert max(delays) == 0.05

    def test_jitter_shrinks_delays_only(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, factor=1.0, jitter=0.5)
        rng = random.Random(3)
        for delay in policy.delays(rng):
            assert 0.05 <= delay <= 0.1


class TestWithRetries:
    def test_first_attempt_success(self):
        async def body():
            calls = []

            async def op(attempt):
                calls.append(attempt)
                return "ok"

            result = await with_retries(op, RetryPolicy(attempts=3))
            assert result == "ok"
            assert calls == [0]

        run(body())

    def test_retries_then_succeeds(self):
        async def body():
            calls = []

            async def op(attempt):
                calls.append(attempt)
                if attempt < 2:
                    raise NetTimeout("not yet")
                return attempt

            policy = RetryPolicy(attempts=5, base_delay=0.001, jitter=0.0)
            assert await with_retries(op, policy) == 2
            assert calls == [0, 1, 2]

        run(body())

    def test_exhaustion_raises(self):
        async def body():
            async def op(attempt):
                raise NetTimeout("never")

            policy = RetryPolicy(attempts=3, base_delay=0.001, jitter=0.0)
            with pytest.raises(RetriesExhausted, match="3 attempts"):
                await with_retries(op, policy, description="upload")

        run(body())

    def test_non_timeout_errors_propagate(self):
        async def body():
            async def op(attempt):
                raise ValueError("logic bug")

            with pytest.raises(ValueError):
                await with_retries(op, RetryPolicy(attempts=3))

        run(body())


class TestChurnModel:
    def test_inactive_by_default(self):
        assert not ChurnModel().active

    @pytest.mark.parametrize(
        "kwargs", [{"offline_fraction": 1.0}, {"mean_online": 0.0}]
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            ChurnModel(**kwargs)

    def test_mean_offline_matches_stationary_fraction(self):
        churn = ChurnModel(offline_fraction=0.25, mean_online=0.3)
        # offline / (offline + online) must equal the requested fraction.
        total = churn.mean_offline + churn.mean_online
        assert churn.mean_offline / total == pytest.approx(0.25)

    def test_durations_positive(self):
        churn = ChurnModel(offline_fraction=0.5, mean_online=0.01)
        rng = random.Random(7)
        for _ in range(20):
            assert churn.online_duration(rng) > 0
            assert churn.offline_duration(rng) > 0


class TestNodeRuntime:
    def test_runs_all_coroutines(self):
        async def body():
            bus = MessageBus(rng=random.Random(0))
            runtime = NodeRuntime(bus, rng=random.Random(1))
            for i in range(5):
                runtime.register_node(f"n{i}")

            async def work(i):
                await asyncio.sleep(0)
                return i * i

            results = await runtime.run(
                {f"n{i}": work(i) for i in range(5)}
            )
            assert sorted(results) == [0, 1, 4, 9, 16]
            await bus.close()

        run(body())

    def test_churn_flips_and_restores(self):
        async def body():
            bus = MessageBus(rng=random.Random(0))
            churn = ChurnModel(offline_fraction=0.5, mean_online=0.005)
            runtime = NodeRuntime(bus, churn=churn, rng=random.Random(2))
            for i in range(40):
                runtime.register_node(f"n{i}")

            offline_seen = []

            async def work():
                for _ in range(10):
                    offline_seen.append(runtime.offline_now)
                    await asyncio.sleep(0.01)

            await runtime.run({"n0": work()})
            # Churn took some nodes down mid-run...
            assert max(offline_seen) > 0
            assert runtime.flips > 0
            # ...but everyone is back online at the end.
            assert runtime.offline_now == 0
            await bus.close()

        run(body())

    def test_no_churn_no_flips(self):
        async def body():
            bus = MessageBus(rng=random.Random(0))
            runtime = NodeRuntime(bus, rng=random.Random(3))
            runtime.register_node("n0")

            async def work():
                await asyncio.sleep(0.01)

            await runtime.run({"n0": work()})
            assert runtime.flips == 0
            await bus.close()

        run(body())


class TestStandaloneChurn:
    """Service-mode churn: start/stop outside run(), with flip listeners."""

    def test_flip_listeners_see_every_transition(self):
        async def body():
            bus = MessageBus(rng=random.Random(0))
            runtime = NodeRuntime(
                bus,
                churn=ChurnModel(offline_fraction=0.4, mean_online=0.005),
                rng=random.Random(7),
            )
            for i in range(12):
                runtime.register_node(f"n{i}")
            flips = []
            runtime.add_flip_listener(
                lambda name, online: flips.append((name, online))
            )
            task = runtime.start_churn()
            assert task is not None
            assert runtime.start_churn() is task  # idempotent
            await asyncio.sleep(0.05)
            await runtime.stop_churn()
            assert runtime.flips > 0
            assert len(flips) == runtime.flips
            # Every listener event matches the bus state at the time; after
            # stop_churn everyone is back online.
            assert runtime.offline_now == 0
            assert any(not online for _, online in flips)
            await bus.close()

        run(body())

    def test_start_churn_inactive_model_is_noop(self):
        async def body():
            bus = MessageBus(rng=random.Random(0))
            runtime = NodeRuntime(bus, rng=random.Random(1))
            runtime.register_node("n0")
            assert runtime.start_churn() is None
            await runtime.stop_churn()
            assert runtime.flips == 0
            await bus.close()

        run(body())
