"""Tests for the three perspective applications."""

import pytest

from repro.apps.folkis import FolkNetwork
from repro.apps.medical import MedicalDeployment, Practitioner
from repro.apps.trustedcells import EncryptedCloudStore, SensorEvent, TrustedCell
from repro.errors import AccessDenied, ProtocolError
from repro.globalq.protocol import TokenFleet
from repro.pds.acl import AccessRule, PrivacyPolicy, Subject


class TestMedicalDeployment:
    def test_visit_converges_patient(self):
        deployment = MedicalDeployment(num_patients=3, seed=1)
        doctor = deployment.practitioners[0]
        deployment.home_visit(0, doctor)
        assert deployment.patient_converged(0)

    def test_central_entries_reach_home_on_next_visit(self):
        deployment = MedicalDeployment(num_patients=2, seed=2)
        deployment.central_entry(1, "lab results arrived")
        assert not deployment.patient_converged(1)
        deployment.home_visit(1, deployment.practitioners[1])
        assert deployment.patient_converged(1)

    def test_simulation_statistics(self):
        deployment = MedicalDeployment(num_patients=5, seed=3)
        stats = deployment.simulate_rounds(30)
        assert stats.visits == 30
        assert stats.documents_authored >= 30
        assert stats.badge_documents_moved >= stats.documents_authored * 0.5
        assert 0.0 <= stats.convergence_ratio <= 1.0

    def test_final_tour_converges_everyone(self):
        deployment = MedicalDeployment(num_patients=6, seed=4)
        deployment.simulate_rounds(20)
        deployment.final_sync_all()
        assert all(
            deployment.patient_converged(p) for p in range(6)
        )


class TestFolkIs:
    def test_delivery_happens(self):
        network = FolkNetwork(num_nodes=10, seed=1)
        bundle = network.send(0, 7, b"vaccination record")
        steps = network.run_until_delivered()
        assert bundle.delivered
        assert steps >= 1
        assert network.read_payload(bundle) == b"vaccination record"

    def test_payload_encrypted_in_transit(self):
        network = FolkNetwork(num_nodes=5, seed=2)
        bundle = network.send(0, 3, b"secret harvest data")
        assert b"secret harvest data" not in bundle.blob

    def test_latency_decreases_with_more_encounters(self):
        slow = FolkNetwork(num_nodes=30, seed=3, encounters_per_step=2)
        fast = FolkNetwork(num_nodes=30, seed=3, encounters_per_step=20)
        for network in (slow, fast):
            for i in range(5):
                network.send(i, 29 - i, b"x")
            network.run_until_delivered()
        assert sum(fast.delivery_latencies()) < sum(slow.delivery_latencies())

    def test_reject_self_send_and_tiny_network(self):
        with pytest.raises(ProtocolError):
            FolkNetwork(num_nodes=1)
        network = FolkNetwork(num_nodes=3, seed=4)
        with pytest.raises(ProtocolError):
            network.send(1, 1, b"loop")

    def test_undelivered_payload_unreadable(self):
        network = FolkNetwork(num_nodes=4, seed=5)
        bundle = network.send(0, 2, b"x")
        with pytest.raises(ProtocolError):
            network.read_payload(bundle)

    def test_buffer_limit_respected(self):
        network = FolkNetwork(num_nodes=3, seed=6, buffer_limit=2)
        for i in range(5):
            network.send(0, 2, bytes([i]))
        assert len(network.nodes[0].carrying) <= 2


class TestTrustedCells:
    def make_cell(self):
        fleet = TokenFleet(seed=1)
        cloud = EncryptedCloudStore()
        policy = PrivacyPolicy(
            [AccessRule(role="app", action="search", kind="energy")]
        )
        return TrustedCell("alice", fleet, cloud, policy), cloud

    def test_sensor_ingestion_archives_encrypted(self):
        cell, cloud = self.make_cell()
        cell.ingest_sensor(SensorEvent("meter-1", {"kwh": 320, "month": 3}))
        assert cell.archived_count == 1
        snooped = cloud.snoop(cell.cell_id)
        assert snooped and all(b"320" not in blob for blob in snooped)

    def test_restore_from_cloud(self):
        cell, _ = self.make_cell()
        for month in range(1, 6):
            cell.ingest_sensor(SensorEvent("meter-1", {"kwh": 100 + month, "month": month}))
        restored = cell.restore_from_cloud()
        assert restored.pds.document_count == 5

    def test_app_gateway_enforces_policy(self):
        cell, _ = self.make_cell()
        doc_id = cell.ingest_sensor(SensorEvent("meter-1", {"kwh": 1, "month": 1}))
        app = Subject("energy-app", "app")
        assert cell.app_query(app, "meter") is not None
        with pytest.raises(AccessDenied):
            cell.app_read(app, doc_id)


class TestTrustedCellSeries:
    def test_sensor_stream_feeds_time_series(self):
        fleet = TokenFleet(seed=11)
        cell = TrustedCell("alice", fleet, EncryptedCloudStore())
        for month in range(1, 13):
            cell.ingest_sensor(SensorEvent("meter", {"kwh": 100 + month, "month": month}))
        assert "meter" in cell.series
        assert cell.series["meter"].count == 12
        average = cell.sensor_average("meter", 1, 12)
        assert average == pytest.approx(sum(101 + m for m in range(12)) / 12)

    def test_unknown_sensor_average_is_none(self):
        cell = TrustedCell("bob", TokenFleet(seed=12), EncryptedCloudStore())
        assert cell.sensor_average("ghost", 0, 10) is None

    def test_non_numeric_events_skip_series(self):
        cell = TrustedCell("carol", TokenFleet(seed=13), EncryptedCloudStore())
        cell.ingest_sensor(SensorEvent("door", {"state": "open"}))
        assert "door" not in cell.series
        assert cell.pds.document_count == 1
