"""Tests for the decentralized social network simulation."""

import json

import pytest

from repro.apps.dsn import DecentralizedSocialNetwork
from repro.errors import AccessDenied, ProtocolError


@pytest.fixture
def network() -> DecentralizedSocialNetwork:
    return DecentralizedSocialNetwork(num_users=24, avg_friends=6, seed=3)


class TestHosting:
    def test_friend_can_fetch(self, network):
        post = network.publish(0, "hello decentralized world", mirrors=3)
        friend = network.friends_of(0)[0]
        assert network.fetch(friend, 0, post.post_id) == (
            "hello decentralized world"
        )

    def test_stranger_denied(self, network):
        post = network.publish(0, "private", mirrors=2)
        strangers = [
            uid for uid in range(24)
            if uid != 0 and uid not in network.friends_of(0)
        ]
        with pytest.raises(AccessDenied):
            network.fetch(strangers[0], 0, post.post_id)

    def test_mirrors_store_ciphertext_only(self, network):
        post = network.publish(0, "sensitive content", mirrors=3)
        holders = [
            user for user in network.users
            if (0, post.post_id) in user.mirrored
        ]
        assert holders
        for holder in holders:
            assert b"sensitive content" not in holder.mirrored[
                (0, post.post_id)
            ].blob

    def test_offline_author_served_by_mirrors(self, network):
        post = network.publish(0, "resilient", mirrors=4)
        network.users[0].online = False
        friend = network.friends_of(0)[0]
        assert network.fetch(friend, 0, post.post_id) == "resilient"

    def test_everyone_offline_unavailable(self, network):
        post = network.publish(0, "gone", mirrors=2)
        network.users[0].online = False
        for friend_id in network.friends_of(0):
            network.users[friend_id].online = False
        reader = network.friends_of(0)[0]
        with pytest.raises(ProtocolError, match="unavailable"):
            network.fetch(reader, 0, post.post_id)

    def test_availability_rises_with_mirrors(self, network):
        low = network.publish(1, "a", mirrors=1)
        high = network.publish(1, "b", mirrors=5)
        p_low = network.availability(1, low.post_id, 0.3, trials=400)
        p_high = network.availability(1, high.post_id, 0.3, trials=400)
        assert p_high > p_low

    def test_tiny_network_rejected(self):
        with pytest.raises(ProtocolError):
            DecentralizedSocialNetwork(num_users=2)


class TestAnonymousTransfer:
    def test_message_delivered_with_source(self, network):
        path = network.send_message(2, 19, "meet at noon")
        assert path[0] == 2 and path[-1] == 19
        message = network.last_message_of(19)
        assert message == {"from": 2, "text": "meet at noon"}

    def test_path_follows_friendship_edges(self, network):
        path = network.send_message(0, 13, "hi")
        for a, b in zip(path, path[1:]):
            assert network.graph.has_edge(a, b)

    def test_relays_never_see_payload(self, network):
        network.send_message(3, 20, "secret rendezvous")
        assert network.relay_log  # multi-hop path exercised relays
        assert all(not obs.payload_visible for obs in network.relay_log)

    def test_relays_learn_only_neighbours(self, network):
        path = network.send_message(1, 17, "x")
        observations = network.relay_log[-(len(path) - 2):]
        for position, obs in enumerate(observations, start=1):
            assert obs.previous_hop == path[position - 1]
            assert obs.next_hop == path[position + 1]
            # A relay that is not adjacent to the source cannot name it.
            if obs.previous_hop != path[0]:
                assert path[0] not in (obs.previous_hop, obs.next_hop)

    def test_self_send_rejected(self, network):
        with pytest.raises(ProtocolError):
            network.send_message(4, 4, "loop")

    def test_empty_inbox(self, network):
        with pytest.raises(ProtocolError, match="empty inbox"):
            network.last_message_of(22)

    def test_onion_layers_are_fresh_per_message(self, network):
        """Nondeterministic wrapping: identical messages are unlinkable."""
        network.send_message(2, 19, "same text")
        first = network.users[19].inbox[-1]
        network.send_message(2, 19, "same text")
        second = network.users[19].inbox[-1]
        assert json.loads(first) == json.loads(second)  # same content...
        # ...but the relays' observations came from distinct ciphertexts
        # (verified implicitly: decryption succeeded per message with
        # fresh nonces; ciphertext equality would break IntegrityError-free
        # replay separation).
