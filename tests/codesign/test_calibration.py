"""Tests pinning the analytic RAM models to the simulator's behaviour."""

import pytest

from repro.codesign.advisor import (
    evaluate_profile,
    recommend,
    smallest_fitting_profile,
)
from repro.codesign.models import (
    HEAP_ENTRY_BYTES,
    WorkloadSpec,
    reorg_min_single_pass_buffer,
    reorg_passes,
    reorg_runs,
    required_ram,
    search_ram,
    spj_ram,
)
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.profiles import flash_sensor, smart_usb_token
from repro.hardware.ram import RamArena
from repro.relational.keyindex import KeyIndex
from repro.relational.reorg import ReorganizationTask


class TestSearchModel:
    def test_matches_engine_measurement(self):
        """The model must equal the RAM the engine actually reserves."""
        from repro.hardware.profiles import HardwareProfile
        from repro.hardware.token import SecurePortableToken
        from repro.search.engine import EmbeddedSearchEngine

        base = smart_usb_token()
        profile = HardwareProfile(
            name="calib",
            ram_bytes=64 * 1024,
            cpu_mhz=base.cpu_mhz,
            flash_geometry=FlashGeometry(2048, 32, 512),
            flash_cost=base.flash_cost,
            tamper_resistant=True,
        )
        engine = EmbeddedSearchEngine(SecurePortableToken(profile=profile), 64)
        for text in ("doctor invoice", "doctor meeting", "invoice energy"):
            engine.add_document(text)
        engine.flush()
        ram = engine.token.mcu.ram
        resident = ram.in_use
        ram.reset_high_water()
        engine.search("doctor invoice meeting", n=10)
        measured = ram.high_water - resident
        spec = WorkloadSpec(page_size=2048, max_query_keywords=3, top_n=10)
        assert measured == search_ram(spec)

    def test_scales_with_keywords_and_n(self):
        spec1 = WorkloadSpec(max_query_keywords=1, top_n=10)
        spec4 = WorkloadSpec(max_query_keywords=4, top_n=10)
        assert search_ram(spec4) - search_ram(spec1) == 3 * 2048
        spec_wide = WorkloadSpec(max_query_keywords=1, top_n=50)
        assert search_ram(spec_wide) - search_ram(spec1) == 40 * HEAP_ENTRY_BYTES


class TestSpjModel:
    def test_matches_database_measurement(self):
        from repro.hardware.profiles import HardwareProfile
        from repro.hardware.token import SecurePortableToken
        from repro.relational.query import EmbeddedDatabase
        from repro.workloads import tpcd

        base = smart_usb_token()
        profile = HardwareProfile(
            name="calib",
            ram_bytes=64 * 1024,
            cpu_mhz=base.cpu_mhz,
            flash_geometry=FlashGeometry(1024, 32, 2048),
            flash_cost=base.flash_cost,
            tamper_resistant=True,
        )
        db = EmbeddedDatabase(
            SecurePortableToken(profile=profile), tpcd.tpcd_schema(), tpcd.ROOT_TABLE
        )
        tpcd.load(db, tpcd.generate(150, seed=2))
        db.create_tselect("CUSTOMER", "Mktsegment")
        db.create_tselect("SUPPLIER", "Name")
        _, stats = db.query(tpcd.household_supplier_query())
        spec = WorkloadSpec(page_size=1024, max_tselect_streams=2)
        assert stats.ram_high_water == spj_ram(spec)


class TestReorgModel:
    def build_index(self, entries: int):
        flash = NandFlash(FlashGeometry(512, 16, 8192))
        allocator = BlockAllocator(flash)
        index = KeyIndex("calib", allocator)
        for row in range(entries):
            index.insert(f"key-{row % 97:04d}", row)
        index.flush()
        return allocator, index

    def test_run_count_matches_task(self):
        entries = 5000
        spec = WorkloadSpec(
            page_size=512, index_entries=entries, index_entry_bytes=15
        )
        allocator, index = self.build_index(entries)
        buffer = 2048
        task = ReorganizationTask(
            index, allocator, RamArena(64 * 1024), sort_buffer_bytes=buffer
        )
        task.run()
        # completed_steps counts runs + merge/finish steps; the run phase
        # yields once per run, so steps >= predicted runs.
        predicted = reorg_runs(spec, buffer)
        assert task.completed_steps >= predicted
        # entry_bytes model: key 'key-XXXX' is 9 B + tag 1 + rowid 4 + 6.
        assert abs(predicted - entries * 15 / buffer) <= 1

    def test_single_pass_buffer_law(self):
        spec = WorkloadSpec(
            page_size=512, index_entries=50_000, index_entry_bytes=16
        )
        buffer = reorg_min_single_pass_buffer(spec)
        assert reorg_passes(spec, buffer) == 0
        assert reorg_passes(spec, buffer // 2) >= 1

    def test_passes_monotone_in_buffer(self):
        spec = WorkloadSpec(index_entries=200_000)
        passes = [
            reorg_passes(spec, buffer)
            for buffer in (4096, 16384, 65536, 262144)
        ]
        assert passes == sorted(passes, reverse=True)


class TestAdvisor:
    def test_all_profiles_evaluated_sorted_by_ram(self):
        recommendations = recommend(WorkloadSpec())
        rams = [r.ram_bytes for r in recommendations]
        assert rams == sorted(rams)
        assert len(recommendations) == 5

    def test_big_profiles_fit_clean(self):
        spec = WorkloadSpec(max_query_keywords=3, index_entries=50_000)
        best = smallest_fitting_profile(spec)
        assert best is not None
        assert best.fits and not best.notes

    def test_sensor_degrades_not_fails(self):
        """16 KB sensor: multi-pass reorg + capped keywords, still usable."""
        spec = WorkloadSpec(
            page_size=2048, max_query_keywords=8, index_entries=500_000
        )
        sensor = evaluate_profile(spec, flash_sensor())
        assert not sensor.fits
        assert sensor.reorg_passes >= 1
        assert 0 < sensor.max_keywords_supported < 8
        assert sensor.notes  # the degradations are reported

    def test_required_ram_covers_every_operation(self):
        spec = WorkloadSpec()
        assert required_ram(spec) >= search_ram(spec)
        assert required_ram(spec) >= spj_ram(spec)
