"""Unit tests for MCU metering, hardware profiles and the secure token."""

import pytest

from repro.errors import TamperedTokenError
from repro.hardware.mcu import CpuCostModel, Microcontroller
from repro.hardware.profiles import (
    ALL_PROFILES,
    by_name,
    plug_server,
    smart_usb_token,
)
from repro.hardware.token import SecurePortableToken


class TestProfiles:
    def test_all_profiles_lookup(self):
        for name in ALL_PROFILES:
            assert by_name(name).name == name

    def test_unknown_profile(self):
        with pytest.raises(KeyError, match="unknown hardware profile"):
            by_name("quantum-token")

    def test_token_profiles_are_tamper_resistant(self):
        assert smart_usb_token().tamper_resistant
        assert not plug_server().tamper_resistant

    def test_small_ram_constraint_of_tokens(self):
        # The tutorial's defining constraint: token RAM < 128 KB.
        assert smart_usb_token().ram_bytes <= 128 * 1024


class TestMicrocontroller:
    def test_charges_accumulate_by_class(self):
        mcu = Microcontroller(smart_usb_token(), CpuCostModel())
        mcu.charge_copy(100)
        mcu.charge_compares(10)
        mcu.charge_hash(64)
        mcu.charge_symmetric(32)
        mcu.charge_modexp(1024, count=2)
        stats = mcu.stats
        assert stats.copy_cycles == 100
        assert stats.compare_cycles == 40
        assert stats.hash_cycles == 64 * 12
        assert stats.symmetric_cycles == 320
        assert stats.modexp_cycles == 2 * 1024 * 40_000
        assert stats.total_cycles == pytest.approx(
            100 + 40 + 768 + 320 + 81_920_000
        )

    def test_elapsed_time_uses_clock(self):
        mcu = Microcontroller(smart_usb_token())
        mcu.charge_copy(50_000)  # 50k cycles at 50 MHz -> 1000 us
        assert mcu.elapsed_us() == pytest.approx(1000.0)

    def test_modexp_dominates_symmetric(self):
        """The cost asymmetry that drives protocol design in Part III."""
        mcu = Microcontroller(smart_usb_token())
        mcu.charge_symmetric(1024)
        symmetric = mcu.stats.symmetric_cycles
        mcu.charge_modexp(1024)
        assert mcu.stats.modexp_cycles > 1000 * symmetric


class TestToken:
    def test_serial_numbers_unique(self):
        first, second = SecurePortableToken(), SecurePortableToken()
        assert first.serial != second.serial

    def test_keystore_roundtrip(self):
        token = SecurePortableToken()
        token.keystore.install("data-key", b"k" * 16)
        assert "data-key" in token.keystore
        assert token.keystore.get("data-key") == b"k" * 16
        assert token.keystore.names() == ["data-key"]

    def test_empty_key_rejected(self):
        token = SecurePortableToken()
        with pytest.raises(ValueError):
            token.keystore.install("bad", b"")

    def test_missing_key(self):
        token = SecurePortableToken()
        with pytest.raises(KeyError):
            token.keystore.get("nope")

    def test_prf_deterministic_and_key_dependent(self):
        token = SecurePortableToken()
        token.keystore.install("k1", b"a" * 16)
        token.keystore.install("k2", b"b" * 16)
        assert token.prf("k1", b"msg") == token.prf("k1", b"msg")
        assert token.prf("k1", b"msg") != token.prf("k2", b"msg")

    def test_mac_verify(self):
        token = SecurePortableToken()
        token.keystore.install("mac-key", b"m" * 16)
        tag = token.mac("mac-key", b"payload")
        assert token.verify_mac("mac-key", b"payload", tag)
        assert not token.verify_mac("mac-key", b"tampered", tag)

    def test_tamper_destroys_keys_and_bricks(self):
        token = SecurePortableToken()
        token.keystore.install("secret", b"s" * 16)
        token.tamper()
        assert len(token.keystore) == 0
        with pytest.raises(TamperedTokenError):
            token.prf("secret", b"msg")

    def test_plug_server_tampering_leaks_keys(self):
        """Non-tamper-resistant hardware cannot defend its keys."""
        server = SecurePortableToken(profile=plug_server())
        server.keystore.install("secret", b"s" * 16)
        server.tamper()
        assert server.keystore.get("secret") == b"s" * 16  # attacker wins
