"""Unit tests for the NAND flash model: the constraints Part II builds on."""

import pytest

from repro.errors import FlashViolation
from repro.hardware.flash import (
    BlockAllocator,
    FlashCostModel,
    FlashGeometry,
    NandFlash,
)


@pytest.fixture
def flash() -> NandFlash:
    return NandFlash(FlashGeometry(page_size=64, pages_per_block=4, num_blocks=8))


class TestGeometry:
    def test_derived_sizes(self):
        geometry = FlashGeometry(page_size=2048, pages_per_block=64, num_blocks=1024)
        assert geometry.num_pages == 65536
        assert geometry.capacity_bytes == 128 * 1024 * 1024

    def test_block_of_and_index(self):
        geometry = FlashGeometry(page_size=64, pages_per_block=4, num_blocks=8)
        assert geometry.block_of(0) == 0
        assert geometry.block_of(5) == 1
        assert geometry.page_index_in_block(5) == 1
        assert geometry.first_page_of(2) == 8


class TestProgramRead:
    def test_roundtrip(self, flash):
        flash.program_page(0, b"hello")
        assert flash.read_page(0) == b"hello"

    def test_erased_page_reads_empty(self, flash):
        assert flash.read_page(3) == b""

    def test_program_counts_stats(self, flash):
        flash.program_page(0, b"x")
        flash.read_page(0)
        assert flash.stats.page_programs == 1
        assert flash.stats.page_reads == 1

    def test_oversized_page_rejected(self, flash):
        with pytest.raises(FlashViolation, match="exceeds page size"):
            flash.program_page(0, b"z" * 65)

    def test_page_out_of_range(self, flash):
        with pytest.raises(FlashViolation, match="out of range"):
            flash.read_page(999)


class TestWriteDiscipline:
    def test_no_in_place_rewrite(self, flash):
        flash.program_page(0, b"v1")
        with pytest.raises(FlashViolation, match="already programmed"):
            flash.program_page(0, b"v2")

    def test_sequential_order_within_block(self, flash):
        flash.program_page(0, b"a")
        with pytest.raises(FlashViolation, match="sequentially"):
            flash.program_page(2, b"c")  # skips page 1

    def test_blocks_are_independent(self, flash):
        flash.program_page(0, b"a")  # block 0, index 0
        flash.program_page(4, b"b")  # block 1, index 0: fine
        assert flash.read_page(4) == b"b"

    def test_erase_resets_cursor_and_content(self, flash):
        for page in range(4):
            flash.program_page(page, bytes([page]))
        flash.erase_block(0)
        assert flash.read_page(0) == b""
        flash.program_page(0, b"again")  # cursor restarted
        assert flash.read_page(0) == b"again"

    def test_erase_counts_wear(self, flash):
        flash.erase_block(3)
        flash.erase_block(3)
        assert flash.erase_count(3) == 2
        assert flash.stats.block_erases == 2

    def test_next_free_page(self, flash):
        assert flash.next_free_page(0) == 0
        flash.program_page(0, b"a")
        assert flash.next_free_page(0) == 1
        for page in range(1, 4):
            flash.program_page(page, b"x")
        assert flash.next_free_page(0) is None


class TestCostModel:
    def test_time_accumulates_per_operation(self):
        cost = FlashCostModel(read_us=1.0, program_us=10.0, erase_us=100.0)
        flash = NandFlash(
            FlashGeometry(page_size=16, pages_per_block=2, num_blocks=2), cost
        )
        flash.program_page(0, b"a")
        flash.read_page(0)
        flash.erase_block(0)
        assert flash.total_time_us() == pytest.approx(111.0)

    def test_stats_snapshot_delta(self, flash):
        flash.program_page(0, b"a")
        before = flash.stats.snapshot()
        flash.read_page(0)
        flash.read_page(0)
        delta = flash.stats.delta(before)
        assert delta.page_reads == 2
        assert delta.page_programs == 0


class TestBlockAllocator:
    def test_allocate_unique_blocks(self, flash):
        allocator = BlockAllocator(flash)
        blocks = {allocator.allocate() for _ in range(8)}
        assert len(blocks) == 8
        assert allocator.free_blocks == 0

    def test_exhaustion_raises(self, flash):
        allocator = BlockAllocator(flash)
        for _ in range(8):
            allocator.allocate()
        with pytest.raises(FlashViolation, match="full"):
            allocator.allocate()

    def test_free_erases_and_recycles(self, flash):
        allocator = BlockAllocator(flash)
        block = allocator.allocate()
        first_page = flash.geometry.first_page_of(block)
        flash.program_page(first_page, b"data")
        allocator.free(block)
        assert flash.read_page(first_page) == b""
        assert flash.stats.block_erases == 1
        assert allocator.free_blocks == 8

    def test_double_free_rejected(self, flash):
        allocator = BlockAllocator(flash)
        block = allocator.allocate()
        allocator.free(block)
        with pytest.raises(FlashViolation, match="not allocated"):
            allocator.free(block)


class TestWearLeveling:
    def test_least_worn_block_allocated_first(self, flash):
        allocator = BlockAllocator(flash)
        first = allocator.allocate()
        allocator.free(first)  # erase count 1: now the most-worn block
        # The next allocations must prefer never-erased blocks.
        for _ in range(7):
            assert allocator.allocate() != first
        assert allocator.allocate() == first  # only then reuse it

    def test_churn_spreads_wear(self, flash):
        """Repeated allocate/free cycles must not hammer one block."""
        allocator = BlockAllocator(flash)
        for _ in range(40):
            block = allocator.allocate()
            allocator.free(block)
        low, high = allocator.wear_spread()
        assert high - low <= 1  # perfectly even distribution

    def test_wear_spread_reports_extremes(self, flash):
        allocator = BlockAllocator(flash)
        block = allocator.allocate()
        allocator.free(block)
        assert allocator.wear_spread() == (0, 1)
