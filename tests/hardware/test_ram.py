"""Unit tests for the bounded RAM arena."""

import pytest

from repro.errors import RamBudgetExceeded
from repro.hardware.ram import RamArena


class TestAllocate:
    def test_basic_accounting(self):
        ram = RamArena(1000)
        handle = ram.allocate(400, tag="buf")
        assert ram.in_use == 400
        assert ram.available == 600
        ram.free(handle)
        assert ram.in_use == 0

    def test_budget_enforced(self):
        ram = RamArena(100)
        ram.allocate(60)
        with pytest.raises(RamBudgetExceeded):
            ram.allocate(50)

    def test_exact_fit_allowed(self):
        ram = RamArena(100)
        ram.allocate(100)
        assert ram.available == 0

    def test_zero_size_allowed(self):
        ram = RamArena(10)
        handle = ram.allocate(0)
        ram.free(handle)

    def test_negative_size_rejected(self):
        ram = RamArena(10)
        with pytest.raises(ValueError):
            ram.allocate(-1)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            RamArena(0)

    def test_double_free_rejected(self):
        ram = RamArena(10)
        handle = ram.allocate(5)
        ram.free(handle)
        with pytest.raises(KeyError):
            ram.free(handle)


class TestHighWater:
    def test_tracks_peak_not_current(self):
        ram = RamArena(1000)
        a = ram.allocate(700)
        ram.free(a)
        ram.allocate(100)
        assert ram.in_use == 100
        assert ram.high_water == 700

    def test_reset_high_water(self):
        ram = RamArena(1000)
        a = ram.allocate(700)
        ram.free(a)
        ram.reset_high_water()
        ram.allocate(50)
        assert ram.high_water == 50


class TestResize:
    def test_grow_and_shrink(self):
        ram = RamArena(100)
        handle = ram.allocate(10, tag="result")
        ram.resize(handle, 60)
        assert ram.in_use == 60
        ram.resize(handle, 20)
        assert ram.in_use == 20

    def test_grow_past_budget_raises(self):
        ram = RamArena(100)
        handle = ram.allocate(10)
        ram.allocate(80)
        with pytest.raises(RamBudgetExceeded):
            ram.resize(handle, 30)

    def test_unknown_handle(self):
        ram = RamArena(100)
        with pytest.raises(KeyError):
            ram.resize(12345, 10)


class TestReservation:
    def test_context_manager_frees(self):
        ram = RamArena(100)
        with ram.reservation(40, tag="scan"):
            assert ram.in_use == 40
        assert ram.in_use == 0

    def test_frees_on_exception(self):
        ram = RamArena(100)
        with pytest.raises(RuntimeError):
            with ram.reservation(40):
                raise RuntimeError("boom")
        assert ram.in_use == 0


class TestUsageByTag:
    def test_groups_by_tag(self):
        ram = RamArena(1000)
        ram.allocate(10, tag="index")
        ram.allocate(20, tag="index")
        ram.allocate(5, tag="sort")
        assert ram.usage_by_tag() == {"index": 30, "sort": 5}
