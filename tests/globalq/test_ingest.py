"""Batched / sharded / coalesced ingest folds bit-identically to serial.

The tentpole contract of the high-throughput ingest PR: because ciphertext
multiplication mod n² is commutative and associative, *any* legal
re-arrangement of a delta stream — interleaving streams across PDSs,
cutting the stream into batches, sharding each batch's fold, coalescing a
PDS's changes pane-wise before transmission — must produce the exact same
pane products (same integers mod n², not just the same plaintexts) as the
one-delta-at-a-time serial fold. The hypothesis tests below generate random
delta streams and random re-arrangements and assert that bit-identity,
plus replay rejection surviving the batch path.
"""

import random
from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.paillier import generate_keypair
from repro.errors import ProtocolError
from repro.globalq.continuous import (
    DeltaBatcher,
    EncryptedDelta,
    FoldEngine,
    StandingAggregate,
    WindowSpec,
)
from repro.net.codec import decode_delta_batch, encode_delta_batch

PUBLIC, PRIVATE = generate_keypair(bits=128, rng=random.Random(17))
SPEC = WindowSpec(width=4, slide=2)


def make_stream(seed: int, pds_count: int, deltas_per_pds: int):
    """A synthetic delta stream: monotone timestamps per PDS, fresh seqs.

    Ciphertexts come from one seeded blinding pool, so the same ``seed``
    always produces the same stream — the bit-identity assertions compare
    real 256-bit integers, not structure.
    """
    rng = random.Random(seed)
    pool = PUBLIC.blinding_pool(seed=seed)
    deltas = []
    for pds in range(pds_count):
        timestamp = 0
        for seq in range(1, deltas_per_pds + 1):
            timestamp = min(
                SPEC.width - 1, timestamp + rng.randrange(0, 3)
            )
            deltas.append(
                EncryptedDelta(
                    pds_id=pds,
                    seq=seq,
                    timestamp=timestamp,
                    value_cipher=PUBLIC.encrypt(
                        rng.randrange(-50, 50), pool=pool
                    ),
                    count_cipher=PUBLIC.encrypt(
                        rng.choice([-1, 0, 1]), pool=pool
                    ),
                )
            )
    return deltas


def interleave(deltas, seed: int):
    """A random interleaving that preserves each PDS's stream order —
    the set of arrival orders a per-stream-FIFO wire can produce."""
    queues: dict[int, deque] = {}
    for delta in deltas:
        queues.setdefault(delta.pds_id, deque()).append(delta)
    rng = random.Random(seed)
    keys = list(queues)
    out = []
    while keys:
        key = rng.choice(keys)
        out.append(queues[key].popleft())
        if not queues[key]:
            keys.remove(key)
    return out


def serial_fold(deltas) -> StandingAggregate:
    state = StandingAggregate(PUBLIC.n, SPEC)
    for delta in deltas:
        state.fold(delta)
    return state


class TestFoldPermutationInvariance:
    @given(
        stream_seed=st.integers(0, 50),
        shuffle_seed=st.integers(0, 50),
        batch_size=st.integers(1, 17),
        shard_size=st.integers(1, 9),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_batching_and_sharding_is_bit_identical(
        self, stream_seed, shuffle_seed, batch_size, shard_size
    ):
        deltas = make_stream(stream_seed, pds_count=12, deltas_per_pds=3)
        reference = serial_fold(deltas)

        arrived = interleave(deltas, shuffle_seed)
        state = StandingAggregate(PUBLIC.n, SPEC)
        engine = FoldEngine(PUBLIC.n_squared, shard_size=shard_size)
        accepted = 0
        for start in range(0, len(arrived), batch_size):
            accepted += state.fold_many(
                arrived[start : start + batch_size], engine=engine
            )
        # Same integers mod n², not merely the same plaintexts.
        assert state.current() == reference.current()
        assert accepted == len(deltas)
        assert state.duplicates == 0

    @given(
        stream_seed=st.integers(0, 50),
        shuffle_seed=st.integers(0, 50),
    )
    @settings(max_examples=25, deadline=None)
    def test_coalesced_stream_decrypts_identically(
        self, stream_seed, shuffle_seed
    ):
        """PDS-side coalescing changes the ciphertexts (it multiplies
        them) but never the decrypted fold — additivity is the contract."""
        deltas = make_stream(stream_seed, pds_count=10, deltas_per_pds=4)
        reference = serial_fold(deltas)

        batcher = DeltaBatcher(PUBLIC.n, SPEC)
        for delta in interleave(deltas, shuffle_seed):
            assert batcher.add(1, delta) is True
        coalesced = [delta for _, delta in batcher.flush()]
        assert len(coalesced) == batcher.added - batcher.coalesced

        state = StandingAggregate(PUBLIC.n, SPEC)
        state.fold_many(coalesced)
        for got, want in zip(state.current(), reference.current()):
            assert PRIVATE.decrypt_signed(got) == PRIVATE.decrypt_signed(
                want
            )
        assert state.duplicates == 0

    @given(
        stream_seed=st.integers(0, 30),
        replay_seed=st.integers(0, 30),
    )
    @settings(max_examples=20, deadline=None)
    def test_replays_are_rejected_through_the_batch_path(
        self, stream_seed, replay_seed
    ):
        deltas = make_stream(stream_seed, pds_count=8, deltas_per_pds=3)
        reference = serial_fold(deltas)

        rng = random.Random(replay_seed)
        replayed = list(deltas)
        for _ in range(5):
            replayed.append(rng.choice(deltas))  # duplicate seqs

        state = StandingAggregate(PUBLIC.n, SPEC)
        accepted = state.fold_many(replayed, engine=FoldEngine(
            PUBLIC.n_squared, shard_size=4
        ))
        assert accepted == len(deltas)
        assert state.duplicates == 5
        assert state.current() == reference.current()

    def test_worker_count_cannot_change_shard_geometry(self):
        """The shard key depends on group size and shard_size only."""
        deltas = make_stream(3, pds_count=20, deltas_per_pds=2)
        engine_a = FoldEngine(PUBLIC.n_squared, shard_size=4)
        engine_b = FoldEngine(PUBLIC.n_squared, shard_size=4)
        buckets_a = engine_a.partition(deltas)
        buckets_b = engine_b.partition(deltas)
        assert [[d.pds_id for d in b] for b in buckets_a] == [
            [d.pds_id for d in b] for b in buckets_b
        ]
        assert len(buckets_a) == -(-len(deltas) // 4)
        assert engine_a.product(deltas) == engine_b.product(deltas)


class TestDeltaBatcher:
    def test_duplicates_dropped_before_coalescing(self):
        deltas = make_stream(5, pds_count=3, deltas_per_pds=2)
        batcher = DeltaBatcher(PUBLIC.n, SPEC)
        for delta in deltas:
            assert batcher.add(7, delta) is True
        # Replaying any delta is refused — folding it into a pending
        # product would double-count before the SSI ever saw the batch.
        assert batcher.add(7, deltas[0]) is False
        assert batcher.duplicates == 1

    def test_coalescing_never_crosses_panes(self):
        pool = PUBLIC.blinding_pool(seed=11)
        one = EncryptedDelta(1, 1, 0, PUBLIC.encrypt(5, pool=pool),
                             PUBLIC.encrypt(1, pool=pool))
        two = EncryptedDelta(1, 2, SPEC.pane_width,
                             PUBLIC.encrypt(3, pool=pool),
                             PUBLIC.encrypt(1, pool=pool))
        batcher = DeltaBatcher(PUBLIC.n, SPEC)
        batcher.add(1, one)
        batcher.add(1, two)
        assert batcher.coalesced == 0
        assert [d.timestamp for _, d in batcher.flush()] == [
            0, SPEC.pane_width
        ]

    def test_flush_round_trips_the_batch_codec(self):
        deltas = make_stream(9, pds_count=6, deltas_per_pds=3)
        batcher = DeltaBatcher(PUBLIC.n, SPEC)
        for delta in deltas:
            batcher.add(2, delta)
        entries = batcher.flush()
        assert decode_delta_batch(encode_delta_batch(entries)) == entries
        assert batcher.pending == 0
        assert batcher.flushed_deltas == len(entries)


class TestFoldManyAtomicity:
    def test_late_batch_raises_before_any_state_change(self):
        deltas = make_stream(4, pds_count=4, deltas_per_pds=2)
        state = StandingAggregate(PUBLIC.n, SPEC)
        state.advance(SPEC.width)  # seal everything
        before = (state.current(), dict(state._last_seq))
        try:
            state.fold_many(deltas)
        except ProtocolError:
            pass
        else:  # pragma: no cover
            raise AssertionError("late batch must raise")
        assert (state.current(), dict(state._last_seq)) == before
