"""Sharded parallel collection: determinism, equality, and wiring.

The contract under test is the E23 acceptance property: for every protocol
family (and the Paillier secure sum), running the collection phase with any
worker count produces *exactly* the same results — same ciphertext bytes,
same accounting, same final aggregates — because shard geometry and seeds
never depend on scheduling.
"""

import random

import pytest

from repro.crypto.paillier import generate_keypair
from repro.globalq.histogram import EquiDepthBucketizer, HistogramProtocol
from repro.globalq.noise import WHITE_NOISE, NoisePlan, NoiseProtocol
from repro.globalq.parallel import (
    ShardedCollector,
    WorkerPool,
    collect_encrypted_sum,
    shard_seed,
    shard_slices,
)
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery, plaintext_answer
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.smc.parties import Channel
from repro.smc.secure_sum import paillier_secure_sum
from repro.workloads.people import PersonRecord

CITIES = ["paris", "lyon", "lille", "nantes"]


def make_nodes(count: int) -> list[PdsNode]:
    return [
        PdsNode(
            i,
            [
                PersonRecord(
                    {"city": CITIES[i % len(CITIES)], "salary": float(i % 97)}
                )
            ],
        )
        for i in range(count)
    ]


NODES = make_nodes(120)
QUERY = AggregateQuery.sum("salary", group_by="city")
TRUTH = plaintext_answer([n.records for n in NODES], QUERY)


class TestShardPlan:
    def test_slices_cover_population_exactly(self):
        slices = shard_slices(10, 3)
        assert slices == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert shard_slices(0, 4) == []
        with pytest.raises(ValueError):
            shard_slices(5, 0)

    def test_shard_seeds_stable_and_distinct(self):
        seeds = [shard_seed(7, i) for i in range(50)]
        assert seeds == [shard_seed(7, i) for i in range(50)]
        assert len(set(seeds)) == 50
        assert shard_seed(8, 0) != shard_seed(7, 0)


class TestShardedCollector:
    def test_worker_count_cannot_change_ciphertexts(self):
        fleet = TokenFleet(3)
        outputs = []
        for workers in (1, 2, 3):
            collected = ShardedCollector(
                workers=workers, shard_size=16, base_seed=5
            ).collect(NODES, QUERY, TokenFleet(3), with_group_tag=True)
            outputs.append(
                [
                    (item.pds_id, [c.blob for c in item.contributions])
                    for item in collected
                ]
            )
        assert outputs[0] == outputs[1] == outputs[2]
        del fleet

    def test_shard_size_does_change_ciphertexts(self):
        # Nonce seeds derive from the shard stream, so geometry is part of
        # the determinism contract — pin that it matters.
        one = ShardedCollector(workers=1, shard_size=16).collect(
            NODES, QUERY, TokenFleet(3)
        )
        other = ShardedCollector(workers=1, shard_size=32).collect(
            NODES, QUERY, TokenFleet(3)
        )
        assert [i.contributions[0].blob for i in one] != [
            i.contributions[0].blob for i in other
        ]

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ShardedCollector(workers=0)


class TestWorkerPool:
    """Persistent pool reuse: same results, one executor, explicit close."""

    def test_pool_reuse_matches_per_call_results(self):
        with WorkerPool(workers=2) as pool:
            pooled_one = ShardedCollector(
                shard_size=16, base_seed=5, pool=pool
            ).collect(NODES, QUERY, TokenFleet(3))
            pooled_two = ShardedCollector(
                shard_size=16, base_seed=5, pool=pool
            ).collect(NODES, QUERY, TokenFleet(3))
        percall = ShardedCollector(
            workers=2, shard_size=16, base_seed=5
        ).collect(NODES, QUERY, TokenFleet(3))

        def blobs(collected):
            return [
                (i.pds_id, [c.blob for c in i.contributions])
                for i in collected
            ]

        assert blobs(pooled_one) == blobs(pooled_two) == blobs(percall)

    def test_executor_is_lazy_and_reused(self):
        pool = WorkerPool(workers=2)
        assert pool._executor is None  # nothing spawned until first use
        first = pool.executor
        assert pool.executor is first
        pool.close()

    def test_close_is_idempotent_and_final(self):
        pool = WorkerPool(workers=1)
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(RuntimeError):
            pool.submit(len, ())

    def test_closed_pool_rejected_by_collector(self):
        pool = WorkerPool(workers=2)
        pool.close()
        with pytest.raises(RuntimeError):
            ShardedCollector(shard_size=16, pool=pool).collect(
                NODES[:8], QUERY, TokenFleet(3)
            )

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_protocols_share_a_pool(self):
        with WorkerPool(workers=2) as pool:
            pooled = SecureAggregationProtocol(
                TokenFleet(0), rng=random.Random(1), shard_size=32, pool=pool
            ).run(NODES, QUERY)
        percall = SecureAggregationProtocol(
            TokenFleet(0), rng=random.Random(1), workers=2, shard_size=32
        ).run(NODES, QUERY)
        assert pooled.result == percall.result == TRUTH

    def test_paillier_sum_accepts_pool(self):
        pub, priv = generate_keypair(bits=256, rng=random.Random(321))
        values = [3 * v for v in range(48)]
        with WorkerPool(workers=2) as pool:
            pooled = paillier_secure_sum(
                values, pub, priv, Channel(), shard_size=16, pool=pool
            )
        percall = paillier_secure_sum(
            values, pub, priv, Channel(), workers=2, shard_size=16
        )
        assert pooled.total == percall.total == sum(values)


@pytest.mark.parametrize("workers", [1, 2])
class TestFamilyEquality:
    """Full protocol runs: sharded path == truth, any worker count."""

    def test_secure_aggregation(self, workers):
        report = SecureAggregationProtocol(
            TokenFleet(0),
            rng=random.Random(1),
            workers=workers,
            shard_size=32,
        ).run(NODES, QUERY)
        assert report.result == TRUTH
        assert report.tuples_sent == len(NODES)

    def test_noise(self, workers):
        plan = NoisePlan(WHITE_NOISE, 0.4, tuple(CITIES))
        report = NoiseProtocol(
            TokenFleet(0),
            plan,
            rng=random.Random(1),
            workers=workers,
            shard_size=32,
        ).run(NODES, QUERY)
        assert report.result == TRUTH
        assert report.fake_tuples_sent > 0

    def test_histogram(self, workers):
        bucketizer = EquiDepthBucketizer({c: 1.0 for c in CITIES}, 2)
        report = HistogramProtocol(
            TokenFleet(0),
            bucketizer,
            rng=random.Random(1),
            workers=workers,
            shard_size=32,
        ).run(NODES, QUERY)
        assert report.result == TRUTH


class TestFullReportEquality:
    def test_serial_and_pooled_reports_identical(self):
        def run(workers):
            return SecureAggregationProtocol(
                TokenFleet(0),
                rng=random.Random(9),
                workers=workers,
                shard_size=16,
            ).run(NODES, QUERY)

        serial, pooled = run(1), run(2)
        assert serial.result == pooled.result
        assert serial.tuples_sent == pooled.tuples_sent
        assert serial.comm_bytes == pooled.comm_bytes
        assert serial.comm_messages == pooled.comm_messages
        assert serial.token_decryptions == pooled.token_decryptions

    def test_noise_accounting_identical(self):
        plan = NoisePlan(WHITE_NOISE, 0.5, tuple(CITIES))

        def run(workers):
            return NoiseProtocol(
                TokenFleet(0),
                plan,
                rng=random.Random(2),
                workers=workers,
                shard_size=16,
            ).run(NODES, QUERY)

        serial, pooled = run(1), run(2)
        assert serial.fake_tuples_sent == pooled.fake_tuples_sent
        assert serial.comm_bytes == pooled.comm_bytes
        assert serial.ssi_tag_histogram == pooled.ssi_tag_histogram

    def test_legacy_path_unchanged_by_default(self):
        # workers=None must keep the original node-at-a-time rng pattern.
        legacy = SecureAggregationProtocol(
            TokenFleet(0), rng=random.Random(1)
        ).run(NODES, QUERY)
        assert legacy.result == TRUTH


class TestEncryptedSumShards:
    PUB, PRIV = generate_keypair(bits=256, rng=random.Random(321))

    def test_partials_merge_to_exact_sum(self):
        values = [v * 3 for v in range(90)]
        for workers in (1, 2):
            shards = collect_encrypted_sum(
                values, self.PUB, workers=workers, shard_size=32
            )
            assert [s.shard_index for s in shards] == [0, 1, 2]
            combined = 1
            for shard in shards:
                combined = self.PUB.add(combined, shard.partial)
            assert self.PRIV.decrypt(combined) == sum(values)

    def test_shard_partials_deterministic(self):
        values = list(range(50))
        a = collect_encrypted_sum(values, self.PUB, workers=1, shard_size=20)
        b = collect_encrypted_sum(values, self.PUB, workers=2, shard_size=20)
        assert [s.partial for s in a] == [s.partial for s in b]

    def test_secure_sum_wiring(self):
        values = [7 * v for v in range(64)]
        channel = Channel()
        scalar = paillier_secure_sum(
            values, self.PUB, self.PRIV, channel, random.Random(1)
        )
        batched = paillier_secure_sum(
            values, self.PUB, self.PRIV, Channel(), workers=1, shard_size=16
        )
        pooled = paillier_secure_sum(
            values, self.PUB, self.PRIV, Channel(), workers=2, shard_size=16
        )
        assert scalar.total == batched.total == pooled.total == sum(values)
        # Batching collapses the full-exponentiation count: 4 shards pay a
        # 33-exponentiation pool each instead of one per site.
        assert scalar.crypto.modexps == len(values) + 1
        assert batched.crypto.modexps == pooled.crypto.modexps == 4 * 33 + 1

    def test_scalar_path_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            paillier_secure_sum([1, 2], self.PUB, self.PRIV, Channel())
