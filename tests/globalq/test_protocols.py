"""Integration tests: all three [TNP14] protocol families.

The load-bearing claims: every family returns the exact plaintext answer
under an honest SSI, and their *leak profiles* differ exactly as the
tutorial says (nothing / group frequencies / flattened buckets).
"""

import random

import pytest

from repro.globalq.attacks import histogram_flatness
from repro.globalq.histogram import EquiDepthBucketizer, HistogramProtocol
from repro.globalq.noise import (
    COMPLEMENTARY_NOISE,
    WHITE_NOISE,
    NoisePlan,
    NoiseProtocol,
)
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery, plaintext_answer
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.workloads.people import CITIES, generate_population


@pytest.fixture(scope="module")
def setup():
    population = generate_population(80, seed=7, skew=1.2)
    nodes = [PdsNode(i, records) for i, records in enumerate(population)]
    fleet = TokenFleet(seed=1)
    return population, nodes, fleet


QUERIES = [
    AggregateQuery.count(group_by="city", where=(("kind", "profile"),)),
    AggregateQuery.sum("kwh", group_by="city", where=(("kind", "energy"),)),
    AggregateQuery.avg("age", where=(("kind", "profile"),)),
    AggregateQuery.count(where=(("diagnosis", "flu"),)),
]


def city_prior():
    return {city: 1.0 / (rank + 1) for rank, city in enumerate(CITIES)}


class TestSecureAggregation:
    @pytest.mark.parametrize("query", QUERIES)
    def test_exact_answers(self, setup, query):
        population, nodes, fleet = setup
        report = SecureAggregationProtocol(fleet, rng=random.Random(3)).run(
            nodes, query
        )
        expected = plaintext_answer(population, query)
        assert report.result.keys() == expected.keys()
        for group in expected:
            assert report.result[group] == pytest.approx(expected[group])

    def test_no_tags_leaked(self, setup):
        _, nodes, fleet = setup
        report = SecureAggregationProtocol(fleet, rng=random.Random(3)).run(
            nodes, QUERIES[0]
        )
        assert report.ssi_tag_histogram == {}

    def test_every_tuple_decrypted_once(self, setup):
        _, nodes, fleet = setup
        report = SecureAggregationProtocol(fleet, rng=random.Random(3)).run(
            nodes, QUERIES[0]
        )
        assert report.token_decryptions == report.tuples_sent

    def test_partition_size_controls_invocations(self, setup):
        _, nodes, fleet = setup
        small = SecureAggregationProtocol(
            fleet, partition_size=10, rng=random.Random(3)
        ).run(nodes, QUERIES[0])
        large = SecureAggregationProtocol(
            fleet, partition_size=40, rng=random.Random(3)
        ).run(nodes, QUERIES[0])
        assert small.token_invocations > large.token_invocations

    def test_honest_run_never_flags_cheating(self, setup):
        _, nodes, fleet = setup
        report = SecureAggregationProtocol(fleet, rng=random.Random(3)).run(
            nodes, QUERIES[0]
        )
        assert not report.cheating_detected


class TestNoiseProtocol:
    @pytest.mark.parametrize("query", QUERIES)
    def test_exact_answers_without_noise(self, setup, query):
        population, nodes, fleet = setup
        report = NoiseProtocol(fleet, rng=random.Random(5)).run(nodes, query)
        expected = plaintext_answer(population, query)
        for group in expected:
            assert report.result[group] == pytest.approx(expected[group])

    @pytest.mark.parametrize("mode", [WHITE_NOISE, COMPLEMENTARY_NOISE])
    def test_fakes_do_not_change_answers(self, setup, mode):
        population, nodes, fleet = setup
        query = QUERIES[0]
        plan = NoisePlan(mode=mode, ratio=2.0, domain=tuple(CITIES))
        report = NoiseProtocol(fleet, noise=plan, rng=random.Random(6)).run(
            nodes, query
        )
        expected = plaintext_answer(population, query)
        # Fakes may create apparent groups with zero real tuples; real
        # groups must be exact and zero-groups empty of mass.
        for group in expected:
            assert report.result[group] == pytest.approx(expected[group])
        for group, value in report.result.items():
            if group not in expected:
                assert value == 0.0
        assert report.fake_tuples_sent > 0

    def test_tags_leak_frequencies(self, setup):
        _, nodes, fleet = setup
        report = NoiseProtocol(fleet, rng=random.Random(5)).run(
            nodes, QUERIES[0]
        )
        assert len(report.ssi_tag_histogram) > 1
        assert sum(report.ssi_tag_histogram.values()) == report.tuples_sent

    def test_complementary_noise_flattens_faster_than_white(self, setup):
        _, nodes, fleet = setup
        query = QUERIES[0]
        flatness = {}
        for mode in (WHITE_NOISE, COMPLEMENTARY_NOISE):
            plan = NoisePlan(mode=mode, ratio=1.5, domain=tuple(CITIES))
            report = NoiseProtocol(
                fleet, noise=plan, rng=random.Random(8)
            ).run(nodes, query)
            flatness[mode] = histogram_flatness(report.ssi_tag_histogram)
        none = NoiseProtocol(fleet, rng=random.Random(8)).run(nodes, query)
        assert flatness[WHITE_NOISE] > histogram_flatness(none.ssi_tag_histogram)
        assert flatness[COMPLEMENTARY_NOISE] >= flatness[WHITE_NOISE]

    def test_noise_costs_bandwidth(self, setup):
        _, nodes, fleet = setup
        query = QUERIES[0]
        quiet = NoiseProtocol(fleet, rng=random.Random(9)).run(nodes, query)
        plan = NoisePlan(mode=WHITE_NOISE, ratio=2.0, domain=tuple(CITIES))
        noisy = NoiseProtocol(fleet, noise=plan, rng=random.Random(9)).run(
            nodes, query
        )
        assert noisy.comm_bytes > quiet.comm_bytes * 2


class TestHistogramProtocol:
    @pytest.mark.parametrize("query", QUERIES[:2])
    def test_exact_answers(self, setup, query):
        population, nodes, fleet = setup
        bucketizer = EquiDepthBucketizer(city_prior(), num_buckets=3)
        report = HistogramProtocol(fleet, bucketizer, rng=random.Random(4)).run(
            nodes, query
        )
        expected = plaintext_answer(population, query)
        for group in expected:
            assert report.result[group] == pytest.approx(expected[group])

    def test_bucket_leak_coarser_than_tags(self, setup):
        """Histogram family leaks ≤ #buckets categories vs one per group."""
        _, nodes, fleet = setup
        query = QUERIES[0]
        bucketizer = EquiDepthBucketizer(city_prior(), num_buckets=3)
        hist_report = HistogramProtocol(
            fleet, bucketizer, rng=random.Random(4)
        ).run(nodes, query)
        tag_report = NoiseProtocol(fleet, rng=random.Random(4)).run(nodes, query)
        assert len(hist_report.ssi_bucket_histogram) <= 3
        assert len(tag_report.ssi_tag_histogram) > len(
            hist_report.ssi_bucket_histogram
        )

    def test_equidepth_flatter_than_raw_frequencies(self, setup):
        _, nodes, fleet = setup
        query = QUERIES[0]
        bucketizer = EquiDepthBucketizer(city_prior(), num_buckets=3)
        hist_report = HistogramProtocol(
            fleet, bucketizer, rng=random.Random(4)
        ).run(nodes, query)
        tag_report = NoiseProtocol(fleet, rng=random.Random(4)).run(nodes, query)
        assert histogram_flatness(
            hist_report.ssi_bucket_histogram
        ) > histogram_flatness(tag_report.ssi_tag_histogram)


class TestEquiDepthBucketizer:
    def test_covers_all_values(self):
        bucketizer = EquiDepthBucketizer(city_prior(), num_buckets=4)
        assert {bucketizer(city) for city in CITIES} <= set(range(4))

    def test_unknown_value_goes_to_last_bucket(self):
        bucketizer = EquiDepthBucketizer(city_prior(), num_buckets=4)
        assert bucketizer("atlantis") == bucketizer.num_buckets - 1

    def test_single_bucket(self):
        bucketizer = EquiDepthBucketizer({"a": 1.0, "b": 1.0}, num_buckets=1)
        assert bucketizer("a") == bucketizer("b") == 0

    def test_invalid_inputs(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            EquiDepthBucketizer({}, 2)
        with pytest.raises(ProtocolError):
            EquiDepthBucketizer({"a": 1.0}, 0)
        with pytest.raises(ProtocolError):
            EquiDepthBucketizer({"a": 0.0}, 2)


class TestDisconnectedAggregators:
    def test_failures_are_retried_result_exact(self, setup):
        population, nodes, fleet = setup
        query = QUERIES[0]
        report = SecureAggregationProtocol(
            fleet,
            partition_size=12,
            rng=random.Random(7),
            aggregator_failure_rate=0.4,
        ).run(nodes, query)
        expected = plaintext_answer(population, query)
        for group in expected:
            assert report.result[group] == pytest.approx(expected[group])
        assert report.aggregator_retries > 0
        assert not report.cheating_detected  # disconnections are not attacks

    def test_no_failures_no_retries(self, setup):
        _, nodes, fleet = setup
        report = SecureAggregationProtocol(
            fleet, rng=random.Random(8)
        ).run(nodes, QUERIES[0])
        assert report.aggregator_retries == 0

    def test_retries_cost_bandwidth(self, setup):
        _, nodes, fleet = setup
        stable = SecureAggregationProtocol(
            fleet, partition_size=12, rng=random.Random(9)
        ).run(nodes, QUERIES[0])
        flaky = SecureAggregationProtocol(
            fleet,
            partition_size=12,
            rng=random.Random(9),
            aggregator_failure_rate=0.5,
        ).run(nodes, QUERIES[0])
        assert flaky.comm_bytes > stable.comm_bytes

    def test_invalid_failure_rate(self, setup):
        _, _, fleet = setup
        with pytest.raises(ValueError):
            SecureAggregationProtocol(fleet, aggregator_failure_rate=1.0)
