"""Standing queries: delta-fold exactness against full recollection.

The contract under test is the delta-maintenance invariant: after *any*
interleaving of insert / update / forget / churn events, decrypting the
SSI's folded ciphertext state equals a full plaintext recollection over the
current online membership — exactly, because contributions are integers and
Paillier arithmetic is exact. The stateful machine drives random
interleavings (the satellite-4 coverage task); the example tests pin window
algebra, replay rejection and the wire codec.
"""

import random

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.crypto.paillier import generate_keypair
from repro.errors import ProtocolError, QueryError
from repro.globalq.continuous import (
    CIPHER_IDENTITY,
    DeltaEmitter,
    EncryptedDelta,
    StandingQuery,
    StandingView,
    WindowSpec,
    contribution_of,
    recollect,
    update_from_wire,
)
from repro.globalq.queries import AggregateQuery
from repro.net.codec import decode_delta, encode_delta
from repro.service.population import slim_population
from repro.service.standing import StandingRegistry
from repro.workloads.people import PersonRecord

# One small key for the whole module: 128 bits keeps exponentiations cheap
# while exercising the full signed range logic.
PUBLIC, PRIVATE = generate_keypair(bits=128, rng=random.Random(42))

SUM_SALARY = AggregateQuery.sum("salary")


def decrypt_pair(pair):
    return PRIVATE.decrypt_signed(pair[0]), PRIVATE.decrypt_signed(pair[1])


class TestWindowSpec:
    def test_tumbling_defaults(self):
        spec = WindowSpec(width=10)
        assert spec.pane_width == 10
        assert spec.panes_per_window == 1
        assert spec.tumbling

    def test_sliding_panes(self):
        spec = WindowSpec(width=20, slide=5)
        assert spec.pane_width == 5
        assert spec.panes_per_window == 4
        assert not spec.tumbling

    def test_slide_must_divide_width(self):
        with pytest.raises(QueryError):
            WindowSpec(width=10, slide=3)

    def test_slide_must_not_exceed_width(self):
        with pytest.raises(QueryError):
            WindowSpec(width=5, slide=10)

    def test_round_trips_through_dict(self):
        spec = WindowSpec(width=12, slide=4)
        assert WindowSpec.from_dict(spec.to_dict()) == spec

    def test_wire_form_may_omit_slide(self):
        """Regression: a tumbling SUBSCRIBE sends only ``width``."""
        assert WindowSpec.from_dict({"width": 3}) == WindowSpec(width=3)
        assert WindowSpec.from_dict({"width": 3, "slide": None}) == (
            WindowSpec(width=3)
        )

    def test_malformed_wire_forms_rejected(self):
        for data in ({}, {"width": "wide"}, {"width": 4, "slide": "x"}):
            with pytest.raises(QueryError, match="malformed window spec"):
                WindowSpec.from_dict(data)


class TestContributions:
    def test_count_and_sum(self):
        records = [
            PersonRecord({"city": "Paris", "salary": 1200.0}),
            PersonRecord({"city": "Oslo", "salary": 800.0}),
        ]
        assert contribution_of(records, SUM_SALARY) == (2000, 2)
        assert contribution_of(records, AggregateQuery.count()) == (2, 2)

    def test_where_filters_locally(self):
        records = [
            PersonRecord({"city": "Paris", "salary": 100.0}),
            PersonRecord({"city": "Oslo", "salary": 70.0}),
        ]
        query = AggregateQuery.sum("salary", where=(("city", "Paris"),))
        assert contribution_of(records, query) == (100, 1)

    def test_non_integer_values_are_rejected(self):
        records = [PersonRecord({"salary": 99.5})]
        with pytest.raises(QueryError):
            contribution_of(records, SUM_SALARY)

    def test_group_by_is_rejected(self):
        with pytest.raises(QueryError):
            DeltaEmitter(PUBLIC, AggregateQuery.count(group_by="city"))


class TestDeltaFold:
    def test_bootstrap_then_forget_round_trips(self):
        emitter = DeltaEmitter(PUBLIC, SUM_SALARY, seed=3)
        standing = StandingQuery(SUM_SALARY, WindowSpec(width=4), PUBLIC.n)
        nodes = slim_population(10)
        for node in nodes.online_nodes():
            standing.fold(emitter.refresh(node, True, 0))
        assert decrypt_pair(standing.current()) == recollect(
            nodes.online_nodes(), SUM_SALARY
        )
        # forget() retracts: the delta stream must go negative and match.
        nodes.forget(3)
        delta = emitter.refresh(nodes.node(3), True, 1)
        standing.fold(delta)
        assert decrypt_pair(standing.current()) == recollect(
            nodes.online_nodes(), SUM_SALARY
        )

    def test_duplicate_sequence_is_folded_once(self):
        emitter = DeltaEmitter(PUBLIC, SUM_SALARY, seed=5)
        standing = StandingQuery(SUM_SALARY, WindowSpec(width=4), PUBLIC.n)
        pop = slim_population(3)
        deltas = [emitter.refresh(n, True, 0) for n in pop.online_nodes()]
        for delta in deltas:
            assert standing.fold(delta) is True
        for delta in deltas:  # replay the whole stream
            assert standing.fold(delta) is False
        assert standing.state.duplicates == 3
        assert decrypt_pair(standing.current()) == recollect(
            pop.online_nodes(), SUM_SALARY
        )

    def test_late_delta_is_a_protocol_error(self):
        standing = StandingQuery(SUM_SALARY, WindowSpec(width=2), PUBLIC.n)
        standing.advance(4)  # seals through t=4
        late = EncryptedDelta(0, 1, 3, CIPHER_IDENTITY, CIPHER_IDENTITY)
        with pytest.raises(ProtocolError):
            standing.fold(late)

    def test_sliding_window_is_the_pane_product(self):
        """width=4/slide=2: each boundary's window covers the last 2 panes."""
        emitter = DeltaEmitter(PUBLIC, SUM_SALARY, seed=9)
        standing = StandingQuery(
            SUM_SALARY, WindowSpec(width=4, slide=2), PUBLIC.n
        )
        pop = slim_population(6)
        pane_net = {}  # pane index -> plaintext net change
        previous = recollect(pop.online_nodes(), SUM_SALARY)

        def apply_event(t, pds_id):
            pop.forget(pds_id)
            delta = emitter.refresh(pop.node(pds_id), True, t)
            if delta is not None:
                standing.fold(delta)

        for node in pop.online_nodes():  # bootstrap in pane 0
            standing.fold(emitter.refresh(node, True, 0))
        pane_net[0] = recollect(pop.online_nodes(), SUM_SALARY)
        apply_event(2, 0)  # pane 1
        apply_event(3, 1)  # pane 1
        state_at_4 = recollect(pop.online_nodes(), SUM_SALARY)
        updates = standing.advance(4)
        assert [u.window_end for u in updates] == [2, 4]
        final = updates[-1]
        # live at t=4 == recollection of everything folded before t=4.
        assert decrypt_pair((final.live_value, final.live_count)) == state_at_4
        # the sliding window [0, 4) covers both panes = the full net change.
        assert decrypt_pair(
            (final.window_value, final.window_count)
        ) == state_at_4
        del previous, pane_net

    def test_updates_carry_negative_window_net_change(self):
        emitter = DeltaEmitter(PUBLIC, SUM_SALARY, seed=11)
        standing = StandingQuery(SUM_SALARY, WindowSpec(width=2), PUBLIC.n)
        pop = slim_population(4)
        for node in pop.online_nodes():
            standing.fold(emitter.refresh(node, True, 0))
        (first,) = standing.advance(2)
        before = recollect(pop.online_nodes(), SUM_SALARY)
        pop.forget(2)  # only a retraction in the second window
        standing.fold(emitter.refresh(pop.node(2), True, 2))
        (second,) = standing.advance(4)
        window_total, window_count = decrypt_pair(
            (second.window_value, second.window_count)
        )
        after = recollect(pop.online_nodes(), SUM_SALARY)
        assert window_total == after[0] - before[0] < 0
        assert window_count == after[1] - before[1] == -1
        assert decrypt_pair((second.live_value, second.live_count)) == after
        assert first.index == 1 and second.index == 2


class TestStandingView:
    def test_view_decrypts_and_feeds_a_timeseries(self):
        from repro.hardware.flash import (
            BlockAllocator,
            FlashGeometry,
            NandFlash,
        )
        from repro.timeseries.series import TimeSeriesStore

        allocator = BlockAllocator(
            NandFlash(
                FlashGeometry(page_size=256, pages_per_block=8, num_blocks=64)
            )
        )
        series = TimeSeriesStore(allocator, name="standing")
        query = AggregateQuery.avg("salary")
        emitter = DeltaEmitter(PUBLIC, query, seed=13)
        standing = StandingQuery(query, WindowSpec(width=2), PUBLIC.n)
        view = StandingView(PRIVATE, query, series=series)
        pop = slim_population(8)
        for node in pop.online_nodes():
            standing.fold(emitter.refresh(node, True, 0))
        for update in standing.advance(6):
            view.ingest(update)
        total, count = recollect(pop.online_nodes(), query)
        expected = total / count
        assert [w.value for w in view.windows] == [expected] * 3
        # The standing query is now an embedded time series.
        assert series.range_aggregate(0, 10, "AVG") == expected
        assert series.count == 3


class TestDeltaCodec:
    def test_round_trip(self):
        emitter = DeltaEmitter(PUBLIC, SUM_SALARY, seed=17)
        pop = slim_population(1)
        delta = emitter.refresh(pop.node(0), True, 7)
        encoded = encode_delta(12, delta)
        sub_id, decoded = decode_delta(encoded)
        assert sub_id == 12
        assert decoded == delta

    def test_truncated_payload_raises(self):
        emitter = DeltaEmitter(PUBLIC, SUM_SALARY, seed=19)
        pop = slim_population(1)
        encoded = encode_delta(1, emitter.refresh(pop.node(0), True, 0))
        with pytest.raises(ProtocolError):
            decode_delta(encoded[:-3])

    def test_update_payload_round_trips(self):
        emitter = DeltaEmitter(PUBLIC, SUM_SALARY, seed=23)
        standing = StandingQuery(SUM_SALARY, WindowSpec(width=2), PUBLIC.n)
        pop = slim_population(3)
        for node in pop.online_nodes():
            standing.fold(emitter.refresh(node, True, 0))
        (update,) = standing.advance(2)
        payload = {
            "window_start": update.window_start,
            "window_end": update.window_end,
            "index": update.index,
            "live_value": f"{update.live_value:x}",
            "live_count": f"{update.live_count:x}",
            "window_value": f"{update.window_value:x}",
            "window_count": f"{update.window_count:x}",
            "deltas": update.deltas,
            "version": update.version,
        }
        assert update_from_wire(payload) == update
        with pytest.raises(ProtocolError):
            update_from_wire({"window_start": 0})


# ---------------------------------------------------------------------------
# Satellite 4: random insert/update/forget/churn interleavings
# ---------------------------------------------------------------------------
class StandingMachine(RuleBasedStateMachine):
    """Folded ciphertext state == plaintext recollection, after every event.

    Drives a real :class:`ServicePopulation` + :class:`StandingRegistry`
    (two live subscriptions: a filtered SUM and a global COUNT) through
    random mutations and clock advances; the invariant decrypts the folded
    state after *every* rule and compares against full recollection.
    """

    def __init__(self) -> None:
        super().__init__()
        self.population = slim_population(8, seed=31)
        self.registry = StandingRegistry(self.population)
        from repro.service.descriptor import (
            FAMILY_SECURE_AGG,
            QueryDescriptor,
        )

        self.subs = [
            self.registry.subscribe(
                QueryDescriptor(FAMILY_SECURE_AGG, SUM_SALARY),
                WindowSpec(width=4, slide=2),
                PUBLIC,
            ),
            self.registry.subscribe(
                QueryDescriptor(FAMILY_SECURE_AGG, AggregateQuery.count()),
                WindowSpec(width=3),
                PUBLIC,
            ),
        ]
        self.time = 0
        # live totals already verified per subscription, to check window
        # net changes telescope correctly.
        self._last_live = {sub.sub_id: None for sub in self.subs}

    @rule(pds=st.integers(0, 7))
    def forget(self, pds):
        self.population.forget(pds)

    @rule(pds=st.integers(0, 7))
    def flip(self, pds):
        self.population.set_online(
            pds, not self.population.is_online(pds)
        )

    @rule(pds=st.integers(0, 7), salary=st.integers(0, 5000), extra=st.booleans())
    def update(self, pds, salary, extra):
        records = [PersonRecord({"city": "Paris", "salary": float(salary)})]
        if extra:
            records.append(
                PersonRecord({"city": "Oslo", "salary": float(salary // 2)})
            )
        self.population.update_records(pds, records)

    @rule(step=st.integers(1, 3))
    def tick(self, step):
        self.time += step
        published = self.registry.advance(self.time)
        for sub in self.subs:
            for update in published.get(sub.sub_id, []):
                live = decrypt_pair((update.live_value, update.live_count))
                window = decrypt_pair(
                    (update.window_value, update.window_count)
                )
                previous = self._last_live[sub.sub_id]
                if sub.spec.tumbling and previous is not None:
                    # Tumbling windows telescope: net change == live delta.
                    assert window == (
                        live[0] - previous[0],
                        live[1] - previous[1],
                    )
                self._last_live[sub.sub_id] = live

    @invariant()
    def folded_state_equals_recollection(self):
        for sub in self.subs:
            got = decrypt_pair(sub.standing.current())
            want = recollect(
                self.population.online_nodes(), sub.descriptor.query
            )
            assert got == want

    @invariant()
    def no_duplicate_folds(self):
        for sub in self.subs:
            assert sub.standing.state.duplicates == 0


StandingMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
TestStandingStateful = StandingMachine.TestCase
