"""Tests for private graph queries (the Part III conclusion's hard case)."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.globalq.graphq import (
    DistributedGraph,
    centralized_reachability,
    private_reachability,
)
from repro.globalq.protocol import TokenFleet
from repro.smc.parties import Channel


def make_graph(num_nodes=30, k=4, seed=1) -> tuple[DistributedGraph, nx.Graph]:
    graph = nx.connected_watts_strogatz_graph(num_nodes, k, 0.2, seed=seed)
    adjacency = {node: set(graph.neighbors(node)) for node in graph}
    return DistributedGraph(adjacency, TokenFleet(seed=seed)), graph


class TestPrivateReachability:
    def test_distance_matches_networkx(self):
        dgraph, graph = make_graph()
        for source, target in [(0, 15), (3, 27), (10, 11)]:
            report = private_reachability(
                dgraph, source, target, max_hops=15, channel=Channel()
            )
            assert report.reachable
            assert report.distance == nx.shortest_path_length(
                graph, source, target
            )
            assert report.rounds == report.distance

    def test_self_query_costs_nothing(self):
        dgraph, _ = make_graph()
        report = private_reachability(dgraph, 5, 5, 10, Channel())
        assert report.reachable and report.distance == 0
        assert report.token_contacts == 0

    def test_hop_bound_limits_search(self):
        dgraph, graph = make_graph(num_nodes=40, k=2, seed=3)
        far = max(
            graph.nodes, key=lambda n: nx.shortest_path_length(graph, 0, n)
        )
        distance = nx.shortest_path_length(graph, 0, far)
        if distance > 2:
            report = private_reachability(dgraph, 0, far, 2, Channel())
            assert not report.reachable
            assert report.rounds == 2

    def test_disconnected_target_unreachable(self):
        fleet = TokenFleet(seed=9)
        adjacency = {0: {1}, 1: {0}, 2: {3}, 3: {2}}
        dgraph = DistributedGraph(adjacency, fleet)
        report = private_reachability(dgraph, 0, 3, 10, Channel())
        assert not report.reachable
        assert report.distance is None

    def test_unknown_member_rejected(self):
        dgraph, _ = make_graph()
        with pytest.raises(ProtocolError):
            private_reachability(dgraph, 0, 999, 5, Channel())

    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(ProtocolError, match="not symmetric"):
            DistributedGraph({0: {1}, 1: set()}, TokenFleet(seed=1))


class TestLeakProfiles:
    def test_unpadded_leaks_access_pattern(self):
        dgraph, graph = make_graph()
        report = private_reachability(dgraph, 0, 20, 15, Channel())
        # The SSI saw a strict subset of tokens queried: the pattern leak.
        assert 0 < report.observed_contacts < len(graph)

    def test_padded_pattern_is_uniform(self):
        dgraph, graph = make_graph()
        unpadded = private_reachability(dgraph, 0, 20, 15, Channel())
        padded = private_reachability(dgraph, 0, 20, 15, Channel(), padded=True)
        assert padded.distance == unpadded.distance  # same answer
        assert padded.observed_contacts == len(graph)  # uniform pattern
        assert padded.comm_bytes > unpadded.comm_bytes  # the price

    def test_padded_cost_is_population_times_rounds(self):
        dgraph, graph = make_graph()
        report = private_reachability(dgraph, 0, 20, 15, Channel(), padded=True)
        assert report.token_contacts == len(graph) * report.rounds

    def test_centralized_is_one_round_full_leak(self):
        dgraph, graph = make_graph()
        report = centralized_reachability(dgraph, 0, 20, Channel())
        assert report.rounds == 1
        assert report.observed_contacts == len(graph)
        assert report.distance == nx.shortest_path_length(graph, 0, 20)


class TestProperties:
    @given(st.integers(0, 29), st.integers(0, 29), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_property_distance_agrees_with_networkx(self, source, target, seed):
        dgraph, graph = make_graph(seed=seed)
        report = private_reachability(dgraph, source, target, 20, Channel())
        expected = nx.shortest_path_length(graph, source, target)
        assert report.reachable
        assert report.distance == expected
