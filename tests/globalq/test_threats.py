"""Threat-model tests: frequency attacks and weakly-malicious detection."""

import random

import pytest

from repro.globalq.attacks import frequency_analysis, histogram_flatness
from repro.globalq.noise import WHITE_NOISE, NoisePlan, NoiseProtocol
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery, plaintext_answer
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.globalq.ssi import SsiBehavior
from repro.globalq.verification import (
    detection_probability,
    participating_pds_ids,
    participation_audit,
)
from repro.workloads.people import CITIES, generate_population

QUERY = AggregateQuery.count(group_by="city", where=(("kind", "profile"),))


@pytest.fixture(scope="module")
def setup():
    population = generate_population(100, seed=21, skew=1.3)
    nodes = [PdsNode(i, records) for i, records in enumerate(population)]
    fleet = TokenFleet(seed=2)
    return population, nodes, fleet


def true_tag_mapping(fleet, population):
    cities = {records[0]["city"] for records in population}
    return {
        fleet.deterministic.encrypt(city.encode()): city for city in cities
    }


def prior():
    return {city: 1.0 / (rank + 1) for rank, city in enumerate(CITIES)}


class TestFrequencyAnalysis:
    def test_attack_succeeds_without_noise(self, setup):
        population, nodes, fleet = setup
        report = NoiseProtocol(fleet, rng=random.Random(1)).run(nodes, QUERY)
        result = frequency_analysis(
            report.ssi_tag_histogram, prior(), true_tag_mapping(fleet, population)
        )
        # Zipf-skewed data: rank matching recovers most of the mass.
        assert result.tuple_accuracy > 0.5

    def test_noise_degrades_attack(self, setup):
        population, nodes, fleet = setup
        mapping = true_tag_mapping(fleet, population)
        clean = NoiseProtocol(fleet, rng=random.Random(2)).run(nodes, QUERY)
        true_counts = dict(clean.ssi_tag_histogram)
        accuracies = {}
        for ratio in (0.0, 4.0):
            plan = (
                NoisePlan(WHITE_NOISE, ratio, tuple(CITIES))
                if ratio
                else NoisePlan()
            )
            report = NoiseProtocol(fleet, noise=plan, rng=random.Random(2)).run(
                nodes, QUERY
            )
            accuracies[ratio] = frequency_analysis(
                report.ssi_tag_histogram,
                prior(),
                mapping,
                true_tuple_counts=true_counts,
            ).tuple_accuracy
        assert accuracies[4.0] < accuracies[0.0]

    def test_flatness_bounds(self):
        assert histogram_flatness({}) == 1.0
        assert histogram_flatness({b"a": 5, b"b": 5}) == 1.0
        assert histogram_flatness({b"a": 10, b"b": 1}) == pytest.approx(0.1)

    def test_empty_truth(self):
        result = frequency_analysis({b"t": 3}, {"x": 1.0}, {})
        assert result.tuple_accuracy == 0.0


class TestWeaklyMaliciousSsi:
    def test_forgeries_always_detected(self, setup):
        _, nodes, fleet = setup
        behavior = SsiBehavior(forge_count=5)
        report = SecureAggregationProtocol(
            fleet, ssi_behavior=behavior, rng=random.Random(3)
        ).run(nodes, QUERY)
        assert report.integrity_failures == 5
        assert report.cheating_detected

    def test_duplicates_detected(self, setup):
        _, nodes, fleet = setup
        behavior = SsiBehavior(duplicate_fraction=0.3)
        report = SecureAggregationProtocol(
            fleet, ssi_behavior=behavior, partition_size=10, rng=random.Random(4)
        ).run(nodes, QUERY)
        assert report.duplicates_detected > 0
        assert report.cheating_detected

    def test_drops_change_result_but_audit_catches(self, setup):
        population, nodes, fleet = setup
        behavior = SsiBehavior(drop_fraction=0.4)
        protocol = SecureAggregationProtocol(
            fleet, ssi_behavior=behavior, rng=random.Random(5)
        )
        # Re-run the phases manually to keep the aggregation outcomes.
        from repro.globalq.protocol import TrustedAggregator
        from repro.globalq.ssi import SupportingServerInfrastructure

        ssi = SupportingServerInfrastructure(behavior, random.Random(5))
        for node in nodes:
            ssi.collect(node.contributions(QUERY, fleet))
        partitions = ssi.partition_random(16)
        outcomes = [
            TrustedAggregator(fleet).aggregate(partition)
            for partition in partitions
        ]
        expected_ids = {node.pds_id for node in nodes}
        audit = participation_audit(
            expected_ids, outcomes, sample_size=20, rng=random.Random(6)
        )
        assert audit.cheating_detected
        assert len(participating_pds_ids(outcomes)) < len(nodes)

    def test_honest_ssi_passes_audit(self, setup):
        _, nodes, fleet = setup
        from repro.globalq.protocol import TrustedAggregator
        from repro.globalq.ssi import SupportingServerInfrastructure

        ssi = SupportingServerInfrastructure()
        for node in nodes:
            ssi.collect(node.contributions(QUERY, fleet))
        outcomes = [
            TrustedAggregator(fleet).aggregate(partition)
            for partition in ssi.partition_random(16)
        ]
        audit = participation_audit(
            {node.pds_id for node in nodes},
            outcomes,
            sample_size=50,
            rng=random.Random(7),
        )
        assert not audit.cheating_detected

    def test_detection_probability_formula(self):
        assert detection_probability(0.0, 100) == 0.0
        assert detection_probability(1.0, 1) == 1.0
        assert detection_probability(0.5, 2) == pytest.approx(0.75)
        with pytest.raises(ValueError):
            detection_probability(1.5, 3)
        with pytest.raises(ValueError):
            detection_probability(0.5, -1)

    def test_result_integrity_despite_duplicates_flag(self, setup):
        """Honest result is exact; cheated runs are flagged, not silently off."""
        population, nodes, fleet = setup
        honest = SecureAggregationProtocol(fleet, rng=random.Random(8)).run(
            nodes, QUERY
        )
        expected = plaintext_answer(population, QUERY)
        for group in expected:
            assert honest.result[group] == pytest.approx(expected[group])
