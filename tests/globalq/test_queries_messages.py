"""Tests for global query semantics and wire formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError, QueryError
from repro.globalq.messages import (
    FLAG_FAKE,
    EncryptedContribution,
    Payload,
    pack_payload,
    unpack_payload,
)
from repro.globalq.queries import (
    GLOBAL_GROUP,
    Accumulator,
    AggregateQuery,
    local_contributions,
    plaintext_answer,
    record_matches,
)
from repro.workloads.people import PersonRecord, generate_population


def record(**attrs) -> PersonRecord:
    return PersonRecord(attrs)


class TestAggregateQuery:
    def test_constructors(self):
        assert AggregateQuery.count().aggregate == "COUNT"
        assert AggregateQuery.sum("kwh").attribute == "kwh"
        assert AggregateQuery.avg("age", group_by="city").group_by == "city"

    def test_sum_needs_attribute(self):
        with pytest.raises(QueryError):
            AggregateQuery("SUM")

    def test_unknown_aggregate(self):
        with pytest.raises(QueryError):
            AggregateQuery("MEDIAN")


class TestMatching:
    def test_where_equality(self):
        query = AggregateQuery.count(where=[("city", "lyon")])
        assert record_matches(record(city="lyon"), query)
        assert not record_matches(record(city="paris"), query)

    def test_missing_aggregate_attribute_excludes(self):
        query = AggregateQuery.sum("kwh")
        assert not record_matches(record(city="lyon"), query)
        assert record_matches(record(kwh=10), query)

    def test_missing_group_attribute_excludes(self):
        query = AggregateQuery.count(group_by="city")
        assert not record_matches(record(age=5), query)


class TestLocalContributions:
    def test_count_contributions(self):
        records = [record(city="lyon"), record(city="paris")]
        query = AggregateQuery.count(group_by="city")
        assert local_contributions(records, query) == [
            ("lyon", 1.0),
            ("paris", 1.0),
        ]

    def test_sum_without_group(self):
        records = [record(kwh=10), record(kwh=20)]
        query = AggregateQuery.sum("kwh")
        assert local_contributions(records, query) == [
            (GLOBAL_GROUP, 10.0),
            (GLOBAL_GROUP, 20.0),
        ]

    def test_where_filters_locally(self):
        records = [record(kwh=10, city="lyon"), record(kwh=99, city="nice")]
        query = AggregateQuery.sum("kwh", where=[("city", "lyon")])
        assert local_contributions(records, query) == [(GLOBAL_GROUP, 10.0)]


class TestAccumulator:
    def test_merge_associative(self):
        a, b, direct = Accumulator(), Accumulator(), Accumulator()
        for group, value in [("x", 1.0), ("y", 2.0)]:
            a.add(group, value)
            direct.add(group, value)
        for group, value in [("x", 3.0), ("z", 4.0)]:
            b.add(group, value)
            direct.add(group, value)
        a.merge(b)
        query = AggregateQuery.sum("v", group_by="g")
        assert a.finalize(query) == direct.finalize(query)

    def test_finalize_avg(self):
        acc = Accumulator()
        acc.add("g", 10.0)
        acc.add("g", 20.0)
        assert acc.finalize(AggregateQuery.avg("v"))["g"] == 15.0

    def test_serialized_size(self):
        acc = Accumulator()
        acc.add("abc", 1.0)
        assert acc.serialized_size() == 3 + 16


class TestPlaintextAnswer:
    def test_count_by_city_totals_population(self):
        population = generate_population(60, seed=1)
        query = AggregateQuery.count(group_by="city", where=[("kind", "profile")])
        answer = plaintext_answer(population, query)
        assert sum(answer.values()) == 60

    def test_avg_consistent_with_sum_count(self):
        population = generate_population(40, seed=2)
        where = [("kind", "health")]
        avg = plaintext_answer(
            population, AggregateQuery.avg("consultations", "city", where)
        )
        total = plaintext_answer(
            population, AggregateQuery.sum("consultations", "city", where)
        )
        count = plaintext_answer(
            population, AggregateQuery.count("city", where)
        )
        for city in avg:
            assert avg[city] == pytest.approx(total[city] / count[city])


class TestPayloadWire:
    def test_roundtrip(self):
        payload = Payload(7, 3, "lyon", 12.5, fake=True)
        assert unpack_payload(pack_payload(payload)) == payload

    def test_fake_flag_on_the_wire(self):
        real = pack_payload(Payload(1, 2, "g", 0.0, fake=False))
        fake = pack_payload(Payload(1, 2, "g", 0.0, fake=True))
        # Flags byte sits right after pds_id and sequence (two u32s).
        assert real[8] == 0
        assert fake[8] == FLAG_FAKE
        assert unpack_payload(real).fake is False
        assert unpack_payload(fake).fake is True

    def test_too_short_rejected(self):
        with pytest.raises(ProtocolError, match="too short"):
            unpack_payload(b"\x01")
        with pytest.raises(ProtocolError, match="too short"):
            unpack_payload(b"")

    def test_invalid_utf8_group_rejected(self):
        blob = pack_payload(Payload(1, 2, "city", 1.0)) + b"\xff\xfe"
        with pytest.raises(ProtocolError, match="UTF-8"):
            unpack_payload(blob)

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
        st.text(max_size=30),
        st.floats(allow_nan=False, allow_infinity=False),
        st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, pds_id, sequence, group, value, fake):
        payload = Payload(pds_id, sequence, group, value, fake)
        assert unpack_payload(pack_payload(payload)) == payload


class TestWireSize:
    def test_blob_only(self):
        assert EncryptedContribution(blob=b"12345").wire_size() == 5

    def test_group_tag_adds_its_length(self):
        contribution = EncryptedContribution(blob=b"12345", group_tag=b"abc")
        assert contribution.wire_size() == 5 + 3

    def test_bucket_id_adds_four_bytes(self):
        contribution = EncryptedContribution(blob=b"12345", bucket_id=2)
        assert contribution.wire_size() == 5 + 4

    def test_all_fields(self):
        contribution = EncryptedContribution(
            blob=b"12345", group_tag=b"abc", bucket_id=0
        )
        assert contribution.wire_size() == 5 + 3 + 4

    def test_empty_tag_costs_nothing_but_is_present(self):
        contribution = EncryptedContribution(blob=b"", group_tag=b"")
        assert contribution.wire_size() == 0


class TestWhereOperators:
    def test_range_operators(self):
        from repro.globalq.queries import AggregateQuery, record_matches

        young = AggregateQuery.count(where=(("age", "<", 30),))
        assert record_matches(record(age=25), young)
        assert not record_matches(record(age=30), young)
        between = AggregateQuery.count(
            where=(("age", ">=", 18), ("age", "<=", 65))
        )
        assert record_matches(record(age=40), between)
        assert not record_matches(record(age=70), between)

    def test_not_equal(self):
        from repro.globalq.queries import AggregateQuery, record_matches

        query = AggregateQuery.count(where=(("city", "!=", "paris"),))
        assert record_matches(record(city="lyon"), query)
        assert not record_matches(record(city="paris"), query)

    def test_missing_attribute_never_matches_operator(self):
        from repro.globalq.queries import AggregateQuery, record_matches

        query = AggregateQuery.count(where=(("age", ">", 10),))
        assert not record_matches(record(city="lyon"), query)

    def test_incomparable_types_never_match(self):
        from repro.globalq.queries import AggregateQuery, record_matches

        query = AggregateQuery.count(where=(("age", ">", 10),))
        assert not record_matches(record(age="forty"), query)

    def test_unknown_operator_rejected(self):
        from repro.globalq.queries import AggregateQuery, record_matches

        query = AggregateQuery.count(where=(("age", "~", 10),))
        with pytest.raises(QueryError, match="unknown operator"):
            record_matches(record(age=5), query)

    def test_malformed_condition_rejected(self):
        from repro.globalq.queries import AggregateQuery, record_matches

        query = AggregateQuery.count(where=(("age",),))
        with pytest.raises(QueryError, match="malformed"):
            record_matches(record(age=5), query)

    def test_range_query_through_protocol(self):
        """End to end: a range WHERE works inside secure aggregation."""
        import random

        from repro.globalq.protocol import PdsNode, TokenFleet
        from repro.globalq.queries import AggregateQuery, plaintext_answer
        from repro.globalq.secureagg import SecureAggregationProtocol

        population = generate_population(40, seed=15)
        nodes = [PdsNode(i, records) for i, records in enumerate(population)]
        query = AggregateQuery.count(
            group_by="city",
            where=(("kind", "profile"), ("age", ">=", 60)),
        )
        report = SecureAggregationProtocol(
            TokenFleet(seed=3), rng=random.Random(1)
        ).run(nodes, query)
        expected = plaintext_answer(population, query)
        assert report.result == expected
