"""Tests for the embedded time-series store and downsampling."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError, StorageError
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.timeseries.downsample import downsample
from repro.timeseries.series import TimeSeriesStore


def make_allocator(page_size=128, blocks=2048) -> BlockAllocator:
    flash = NandFlash(
        FlashGeometry(page_size=page_size, pages_per_block=8, num_blocks=blocks)
    )
    return BlockAllocator(flash)


def load_series(points) -> TimeSeriesStore:
    store = TimeSeriesStore(make_allocator())
    for timestamp, value in points:
        store.append(timestamp, value)
    store.flush()
    return store


def naive(points, t0, t1, aggregate):
    inside = [value for ts, value in points if t0 <= ts <= t1]
    if aggregate == "COUNT":
        return float(len(inside))
    if not inside:
        return None
    if aggregate == "SUM":
        return sum(inside)
    if aggregate == "AVG":
        return sum(inside) / len(inside)
    if aggregate == "MIN":
        return min(inside)
    return max(inside)


SERIES = [(ts, float((ts * 13) % 97)) for ts in range(0, 1000, 2)]


class TestAppend:
    def test_timestamps_must_increase(self):
        store = TimeSeriesStore(make_allocator())
        store.append(10, 1.0)
        with pytest.raises(StorageError, match="not increasing"):
            store.append(10, 2.0)

    def test_count(self):
        store = load_series(SERIES)
        assert store.count == len(SERIES)


class TestRangeAggregate:
    @pytest.mark.parametrize("aggregate", ["COUNT", "SUM", "AVG", "MIN", "MAX"])
    def test_matches_naive(self, aggregate):
        store = load_series(SERIES)
        for t0, t1 in [(0, 998), (100, 500), (101, 103), (7, 7)]:
            assert store.range_aggregate(t0, t1, aggregate) == pytest.approx(
                naive(SERIES, t0, t1, aggregate)
            )

    def test_empty_range(self):
        store = load_series(SERIES)
        assert store.range_aggregate(1, 1, "COUNT") == 0.0  # odd ts absent
        assert store.range_aggregate(1, 1, "SUM") is None

    def test_unflushed_points_visible(self):
        store = TimeSeriesStore(make_allocator())
        store.append(5, 2.0)
        assert store.range_aggregate(0, 10, "SUM") == 2.0

    def test_invalid_inputs(self):
        store = load_series(SERIES)
        with pytest.raises(QueryError):
            store.range_aggregate(10, 5, "SUM")
        with pytest.raises(QueryError):
            store.range_aggregate(0, 10, "MEDIAN")

    def test_interior_pages_answered_from_summaries(self):
        """The E12 claim: only boundary data pages are read."""
        store = load_series(SERIES)
        store.range_aggregate(100, 900, "SUM")
        stats = store.last_range
        assert stats.data_pages <= 2  # at most the two boundary pages
        assert stats.summary_pages >= 1
        # A raw scan of the same range touches far more data pages.
        list(store.scan_range(100, 900))
        assert store.last_range.data_pages > 10

    def test_whole_series_zero_data_pages(self):
        store = load_series(SERIES)
        total = store.range_aggregate(-10**6, 10**6, "SUM")
        assert total == pytest.approx(sum(v for _, v in SERIES))
        assert store.last_range.data_pages == 0  # summaries suffice

    def test_queries_across_the_flush_boundary(self):
        """The open end of a window: flushed pages + the RAM tail.

        Points appended since the last flush have no summary record yet;
        a range straddling the flush boundary must still count every one
        of them (pinned against a naive fold, all five aggregates).
        """
        store = TimeSeriesStore(make_allocator())
        points = [(ts, float((ts * 7) % 31)) for ts in range(0, 120)]
        for ts, value in points[:80]:
            store.append(ts, value)
        store.flush()
        for ts, value in points[80:]:  # the unflushed RAM tail
            store.append(ts, value)
        assert store.data.buffered_records()  # the tail really is in RAM
        for t0, t1 in [(60, 119), (79, 80), (0, 200), (85, 110)]:
            for aggregate in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
                assert store.range_aggregate(
                    t0, t1, aggregate
                ) == pytest.approx(naive(points, t0, t1, aggregate))

    def test_last_range_reset_even_when_nothing_is_read(self):
        """Regression: a query over an empty region must not leave the
        previous query's page counts in ``last_range``."""
        store = load_series(SERIES)
        store.range_aggregate(100, 900, "SUM")
        assert store.last_range.total_pages > 0
        store.range_aggregate(10**6, 10**6 + 1, "SUM")
        # The new query read summary pages only to rule pages out.
        assert store.last_range.data_pages == 0


class TestWindows:
    def test_tumbling_windows(self):
        store = load_series(SERIES)
        windows = store.windows(0, 400, width=100, aggregate="COUNT")
        assert [start for start, _ in windows] == [0, 100, 200, 300]
        assert all(count == 50.0 for _, count in windows)

    def test_window_validation(self):
        store = load_series(SERIES)
        with pytest.raises(QueryError):
            store.windows(0, 100, width=0)

    def test_sweep_accounts_every_window(self):
        """Regression: ``last_range`` after ``windows()`` is the whole
        sweep's IO, not the final window's (a 10-window E12 report used to
        under-count page reads by ~10×)."""
        store = load_series(SERIES)
        per_window = []
        start = 0
        while start < 1000:
            store.range_aggregate(start, start + 99, "SUM")
            per_window.append(store.last_range.total_pages)
            start += 100
        store.windows(0, 1000, width=100, aggregate="SUM")
        assert store.last_range.total_pages == sum(per_window)
        assert store.last_range.total_pages > max(per_window)


class TestScanRange:
    def test_points_in_order(self):
        store = load_series(SERIES)
        points = list(store.scan_range(200, 300))
        assert points == [(ts, v) for ts, v in SERIES if 200 <= ts <= 300]

    def test_partial_consumption_reports_its_own_stats(self):
        """Regression: a half-consumed scan used to leave the *previous*
        query's stats in ``last_range``, attributing its reads to nothing."""
        store = load_series(SERIES)
        store.range_aggregate(0, 998, "SUM")
        previous = store.last_range
        scan = store.scan_range(200, 300)
        next(scan)
        assert store.last_range is not previous
        assert store.last_range.data_pages >= 1  # the page it just read
        scan.close()


class TestDownsample:
    def test_bucket_averages(self):
        store = load_series(SERIES)
        coarse = downsample(store, make_allocator(), bucket_width=100, aggregate="AVG")
        points = list(coarse.scan_range(0, 10**6))
        assert len(points) == 10
        for start, value in points:
            assert value == pytest.approx(naive(SERIES, start, start + 99, "AVG"))

    def test_count_buckets(self):
        store = load_series(SERIES)
        coarse = downsample(store, make_allocator(), 250, aggregate="COUNT")
        assert [v for _, v in coarse.scan_range(0, 10**6)] == [125.0] * 4

    def test_validation(self):
        store = load_series(SERIES)
        with pytest.raises(QueryError):
            downsample(store, make_allocator(), 0)
        with pytest.raises(QueryError):
            downsample(store, make_allocator(), 10, aggregate="MODE")

    def test_space_shrinks(self):
        store = load_series(SERIES)
        coarse = downsample(store, make_allocator(), 100)
        assert coarse.count < store.count / 10


class TestProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        st.integers(0, 300),
        st.integers(0, 300),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_sum_matches_naive(self, values, a, b):
        t0, t1 = min(a, b), max(a, b)
        points = [(i, v) for i, v in enumerate(values)]
        store = load_series(points)
        assert store.range_aggregate(t0, t1, "SUM") == pytest.approx(
            naive(points, t0, t1, "SUM")
        )
