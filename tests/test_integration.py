"""Full-stack integration: the tutorial's whole story in one scenario.

A citizen federates her raw exports into a PDS (Part I), queries them with
the embedded engines (Part II), a statistics office runs a protected global
query over a population including her (Part III), the result set is
published k-anonymously, and the audit trail accounts for everything.
"""

import random

import pytest

from repro.globalq.noise import WHITE_NOISE, NoisePlan, NoiseProtocol
from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery, plaintext_answer
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.pds.acl import Subject
from repro.pds.importers import federate
from repro.pds.population import PdsPopulation
from repro.ppdp.generalize import QuasiIdentifier, age_hierarchy, city_hierarchy
from repro.ppdp.kanon import anonymize_with_tokens
from repro.workloads.people import CITIES

MBOX = """From doctor@clinic.fr Mon Mar 10 10:00:00 2014
From: doctor@clinic.fr
Subject: flu prescription ready

Pick up the prescription at the pharmacy.
"""

BANK_CSV = "date,label,amount\n2014-03-01,EDF ELECTRICITY,84.50\n"
METER_CSV = "month,kwh\n1,312\n2,290\n"

QUERIER = Subject("insee", "querier")


class TestCitizenLifecycle:
    def test_federate_then_search_then_audit(self):
        population = PdsPopulation(10, seed=30)
        alice = population.servers[0]
        reports = federate(
            alice, {"mbox": MBOX, "bank-csv": BANK_CSV, "meter-csv": METER_CSV}
        )
        assert sum(report.imported for report in reports.values()) == 4

        # Embedded search over federated + synthetic content.
        hits = alice.search(alice.owner, "flu prescription")
        assert hits and hits[0][1].kind == "email"

        # The chain has recorded the search.
        assert alice.audit.entries()[-1].action == "search"
        assert alice.audit.verify_chain()

    def test_population_query_end_to_end(self):
        population = PdsPopulation(30, seed=31)
        nodes = population.nodes_for(QUERIER)
        query = AggregateQuery.avg(
            "age", group_by="city", where=(("kind", "profile"),)
        )
        truth = plaintext_answer([node.records for node in nodes], query)
        for protocol in (
            SecureAggregationProtocol(population.fleet, rng=random.Random(1)),
            NoiseProtocol(
                population.fleet,
                noise=NoisePlan(WHITE_NOISE, 1.0, tuple(CITIES)),
                rng=random.Random(1),
            ),
        ):
            report = protocol.run(nodes, query)
            for group, value in truth.items():
                assert report.result[group] == pytest.approx(value)
        # Every citizen's audit log shows the aggregate releases.
        for server in population.servers:
            actions = [entry.action for entry in server.audit.entries()]
            assert actions.count("aggregate") >= 1

    def test_query_then_publish_anonymously(self):
        population = PdsPopulation(40, seed=32)
        nodes_full = population.nodes_for(QUERIER)
        # Project each PDS's health record for publishing.
        nodes = [
            PdsNode(
                node.pds_id,
                [r for r in node.records if r.get("kind") == "health"],
            )
            for node in nodes_full
        ]
        qis = [
            QuasiIdentifier("age", age_hierarchy()),
            QuasiIdentifier("city", city_hierarchy()),
        ]
        result = anonymize_with_tokens(
            nodes, population.fleet, qis, "diagnosis", k=4,
            rng=random.Random(2),
        )
        assert result.k_of() >= 4
        assert len(result.records) == 40
        # Published rows carry generalized QIs only.
        for age_band, region, _ in result.records:
            assert not age_band.isdigit() or result.levels[0] == 0
            assert region in ("north", "south", "*") or result.levels[1] == 0

    def test_range_where_through_population(self):
        population = PdsPopulation(25, seed=33)
        nodes = population.nodes_for(QUERIER)
        query = AggregateQuery.count(
            where=(("kind", "profile"), ("age", ">=", 40))
        )
        report = SecureAggregationProtocol(
            population.fleet, rng=random.Random(3)
        ).run(nodes, query)
        expected = plaintext_answer([n.records for n in nodes], query)
        assert report.result == expected
