"""Open-loop load generation and saturation-knee analysis."""

import asyncio

import pytest

from repro.service import (
    LoadReport,
    OpenLoopLoadGenerator,
    ServiceConfig,
    SsiQueryService,
    find_knee,
    run_query,
    slim_population,
    standard_mix,
)


def run(coro):
    return asyncio.run(coro)


class TestOpenLoop:
    def test_run_accounts_every_arrival(self):
        async def scenario():
            population = slim_population(60)
            service = SsiQueryService(
                population,
                ServiceConfig(
                    max_in_flight=2, cache_capacity=8, record_snapshots=True
                ),
            )
            service.start()
            generator = OpenLoopLoadGenerator(service, standard_mix(), seed=3)
            report = await generator.run(
                rate=200.0, duration_s=0.2, keep_results=True
            )
            await service.stop()
            return population, service, report

        population, service, report = run(scenario())
        assert report.offered > 0
        assert report.completed + report.shed + report.errors == report.offered
        assert report.errors == 0
        assert report.latency_ms.count == report.completed
        assert sum(report.offered_by_class.values()) == report.offered
        # Stable population + warm cache: repeats hit.
        assert report.cache_hits > 0
        # Every kept result reproduces bit-identically.
        for served in report.results:
            if served.snapshot is None:
                continue
            reference = run_query(
                served.descriptor,
                served.snapshot.nodes,
                population.fleet,
                served.seed,
                service.config.domain,
            )
            assert reference.result == served.result

    def test_open_loop_pressure_sheds(self):
        async def scenario():
            population = slim_population(150)
            service = SsiQueryService(
                population,
                ServiceConfig(
                    max_in_flight=1, max_queue_depth=2, cache_capacity=0
                ),
            )
            service.start()
            generator = OpenLoopLoadGenerator(service, standard_mix(), seed=1)
            report = await generator.run(rate=400.0, duration_s=0.15)
            await service.stop()
            return report

        report = run(scenario())
        # An open-loop generator keeps offering at rate even though the
        # service is saturated — admission control must shed.
        assert report.shed > 0
        assert report.completed + report.shed + report.errors == report.offered

    def test_rejects_nonpositive_rate(self):
        async def scenario():
            service = SsiQueryService(slim_population(5))
            generator = OpenLoopLoadGenerator(service, standard_mix())
            with pytest.raises(ValueError):
                await generator.run(rate=0.0, duration_s=0.1)

        run(scenario())


class TestKnee:
    def _report(self, rate, offered, completed):
        report = LoadReport(rate=rate, duration_s=1.0)
        report.offered = offered
        report.completed = completed
        return report

    def test_knee_is_highest_keeping_up(self):
        reports = [
            self._report(1.0, 10, 10),
            self._report(2.0, 20, 19),
            self._report(4.0, 40, 38),
            self._report(8.0, 80, 41),
            self._report(16.0, 160, 44),
        ]
        knee = find_knee(reports)
        assert knee["knee_rate_qps"] == 4.0
        assert knee["saturated_rates"] == [8.0, 16.0]
        assert knee["knee_efficiency"] >= 0.9

    def test_all_saturated_falls_back_to_lowest(self):
        reports = [self._report(4.0, 40, 10), self._report(8.0, 80, 11)]
        knee = find_knee(reports)
        assert knee["knee_rate_qps"] == 4.0
        assert knee["saturated_rates"] == [4.0, 8.0]

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            find_knee([])
