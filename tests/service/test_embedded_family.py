"""The embedded-spj family: Part II aggregates served by the SSI service.

The family routes a descriptor to the service-hosted columnar engine
instead of a population protocol. The contract under test: the answer is
executor-independent (batch vs legacy), reproducible via the same
``run_query`` reference path as every other family, and the descriptor
round-trips through its canonical form.
"""

import asyncio
import random

import pytest

from repro.errors import QueryError
from repro.globalq.queries import AggregateQuery
from repro.service import (
    FAMILY_EMBEDDED,
    QueryDescriptor,
    ServiceConfig,
    SsiQueryService,
    embedded_mix,
    run_embedded,
    run_query,
    slim_population,
)

#: Small hosted database: keeps the get-or-build registry cheap in tests.
ROWS = 400


def run(coro):
    return asyncio.run(coro)


class TestEmbeddedRunner:
    def test_batch_and_legacy_executors_answer_identically(self):
        """Executor choice is configuration: answers must be bit-identical."""
        for descriptor in embedded_mix(ROWS).descriptors():
            batch = run_embedded(descriptor)
            legacy = run_embedded(descriptor, batch_size=0)
            explicit = run_embedded(descriptor, batch_size=16)
            assert batch.result == legacy.result == explicit.result
            assert batch.protocol == FAMILY_EMBEDDED
            assert batch.num_pds == 1
            assert batch.tuples_sent == 0  # nothing leaves the token

    def test_run_query_routes_embedded_without_population(self):
        """The reference path needs no nodes/fleet/seed for this family."""
        descriptor = embedded_mix(ROWS).descriptors()[0]
        report = run_query(descriptor, [], None, seed=123, domain=())
        assert report.result == run_embedded(descriptor).result

    def test_descriptor_canonical_roundtrip_keeps_embedded_rows(self):
        for descriptor in embedded_mix(ROWS).descriptors():
            assert descriptor.embedded_rows == ROWS
            restored = QueryDescriptor.from_canonical(descriptor.canonical())
            assert restored == descriptor
        # embedded_rows is part of the canonical form (it determines the
        # answer), so differing sizes must never share a cache key.
        a, b = embedded_mix(ROWS).descriptors()[0], embedded_mix(
            ROWS + 1
        ).descriptors()[0]
        assert a.canonical() != b.canonical()

    def test_malformed_embedded_queries_are_rejected(self):
        flat_attr = QueryDescriptor(
            FAMILY_EMBEDDED,
            AggregateQuery.sum("Price"),
            embedded_rows=ROWS,
        )
        with pytest.raises(QueryError):
            run_embedded(flat_attr)
        range_where = QueryDescriptor(
            FAMILY_EMBEDDED,
            AggregateQuery.count(
                where=(("LINEITEM.Quantity", ">", 10),)
            ),
            embedded_rows=ROWS,
        )
        with pytest.raises(QueryError):
            run_embedded(range_where)


class TestServiceIntegration:
    def _serve(self, config: ServiceConfig):
        async def scenario():
            population = slim_population(20)
            service = SsiQueryService(population, config)
            service.start()
            mix = embedded_mix(ROWS)
            rng = random.Random(7)
            tasks = [
                asyncio.ensure_future(service.submit(mix.pick(rng)))
                for _ in range(8)
            ]
            served = await asyncio.gather(*tasks)
            await service.stop()
            return served

        return run(scenario())

    def test_service_serves_embedded_queries_reproducibly(self):
        served = self._serve(
            ServiceConfig(max_in_flight=4, cache_capacity=0)
        )
        assert len(served) == 8
        for result in served:
            assert result.descriptor.family == FAMILY_EMBEDDED
            reference = run_embedded(result.descriptor)
            assert reference.result == result.result

    def test_service_engine_config_does_not_change_answers(self):
        batch_served = self._serve(
            ServiceConfig(max_in_flight=2, cache_capacity=0)
        )
        legacy_served = self._serve(
            ServiceConfig(
                max_in_flight=2, cache_capacity=0, embedded_batch_size=0
            )
        )
        key = lambda r: r.descriptor.canonical()
        batch_by_key = {key(r): r.result for r in batch_served}
        for result in legacy_served:
            assert batch_by_key[key(result)] == result.result
