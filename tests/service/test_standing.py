"""Standing subscriptions at the service: wire frames + cache coherence.

Covers the two service-side seams of the delta-maintenance PR:

* the SUBSCRIBE/DELTA/UPDATE wire path — a querier registers a standing
  query by frame, PDS deltas fold over the wire, boundary updates come
  back as frames the querier decrypts;
* the satellite-2 regression — a ``forget()`` landing between a worker's
  dequeue-time cache re-check and its ``put()`` must not let a cached
  result be served (or inserted) for a version a subscriber already saw a
  delta supersede. The purge, the delta fold and the floor raise all run
  in one synchronous listener chain, and get/put are atomic against it.
"""

import asyncio
import random

import pytest

from repro.crypto.paillier import generate_keypair
from repro.globalq.continuous import (
    DeltaBatcher,
    DeltaEmitter,
    StandingView,
    WindowSpec,
    recollect,
    update_from_wire,
)
from repro.globalq.queries import AggregateQuery
from repro.net.bus import MessageBus
from repro.net.codec import (
    KIND_DELTA,
    KIND_DELTA_BATCH,
    KIND_SUBSCRIBE,
    KIND_UPDATE,
    Frame,
    decode_json_payload,
    encode_delta,
    encode_delta_batch,
    encode_json_payload,
)
from repro.service import (
    CacheEntry,
    QueryDescriptor,
    ResultCache,
    ServiceConfig,
    SsiQueryService,
    slim_population,
)
from repro.service.descriptor import FAMILY_SECURE_AGG
from repro.service.standing import StandingRegistry


def run(coro):
    return asyncio.run(coro)


PUBLIC, PRIVATE = generate_keypair(bits=128, rng=random.Random(99))
SUM = QueryDescriptor(FAMILY_SECURE_AGG, AggregateQuery.sum("salary"))
COUNT = QueryDescriptor(FAMILY_SECURE_AGG, AggregateQuery.count())


class TestRegistryCoherence:
    """The ResultCache must never serve across a folded delta."""

    def test_forget_purges_and_raises_the_floor(self):
        population = slim_population(20)
        cache = ResultCache(8, population)
        registry = StandingRegistry(population, cache=cache)
        registry.subscribe(SUM, WindowSpec(width=4), PUBLIC)
        entry = CacheEntry(
            version=population.version, result={"*": 1.0}, seed=0
        )
        assert cache.put(SUM, entry) is True
        assert cache.get(SUM) is entry
        # The forget's listener chain purges AND raises the floor before
        # _notify returns — by the time any thread observes the new
        # version, the stale entry is unservable.
        population.forget(5)
        assert cache.get(SUM) is None
        # Satellite-2 interleaving: a worker that re-checked the cache
        # before the forget now finishes and puts its (old-version)
        # result — the atomic version check refuses it.
        assert cache.put(SUM, entry) is False
        assert cache.stats.stale_results_dropped == 1

    def test_floor_refuses_entries_at_a_superseded_version(self):
        """A delta without a membership event (wire-fed) blocks caching."""
        population = slim_population(10)
        cache = ResultCache(8, population)
        registry = StandingRegistry(population, cache=cache)
        sub = registry.subscribe(
            COUNT, WindowSpec(width=2), PUBLIC, local_source=False
        )
        emitter = DeltaEmitter(PUBLIC, COUNT.query, seed=1)
        delta = emitter.refresh(population.node(0), True, 0)
        registry.ingest(sub.sub_id, delta)
        # The floor is now version+1: an entry at the *current* version is
        # still refused, because the subscriber's view is already ahead.
        entry = CacheEntry(
            version=population.version, result={"*": 10.0}, seed=0
        )
        assert cache.put(COUNT, entry) is False
        assert cache.stats.coherence_refusals >= 1
        # Once the population itself moves, caching resumes.
        population.set_online(1, False)
        entry = CacheEntry(
            version=population.version, result={"*": 9.0}, seed=0
        )
        assert cache.put(COUNT, entry) is True

    def test_get_purges_below_floor(self):
        population = slim_population(10)
        cache = ResultCache(8, population)
        entry = CacheEntry(
            version=population.version, result={"*": 1.0}, seed=0
        )
        cache.put(SUM, entry)
        # Simulate a wire delta raising the floor with no version bump.
        cache.note_delta(SUM.canonical(), population.version + 1)
        assert cache.get(SUM) is None
        assert cache.stats.coherence_refusals >= 1

    def test_churn_interleaving_under_service_load(self):
        """End-to-end: churn + standing subscription + concurrent queries.

        Every non-cached answer must equal plaintext recollection at its
        recorded version... and every *cached* answer must reflect the
        population state the subscriber's folded aggregate reflects — no
        hit may straddle a folded delta.
        """

        async def scenario():
            population = slim_population(60)
            service = SsiQueryService(
                population,
                ServiceConfig(
                    max_in_flight=2, cache_capacity=8, record_snapshots=True
                ),
            )
            sub = service.standing.subscribe(SUM, WindowSpec(width=4), PUBLIC)
            service.start()
            rng = random.Random(5)
            answers = []
            for step in range(1, 13):
                if rng.random() < 0.5:
                    population.forget(rng.randrange(len(population)))
                else:
                    pds = rng.randrange(len(population))
                    population.set_online(pds, not population.is_online(pds))
                served = await service.submit(SUM)
                folded = PRIVATE.decrypt_signed(sub.standing.current()[0])
                answers.append((served, folded, population.version))
                service.standing.advance(step)
            await service.stop()
            return answers

        for served, folded, version in run(scenario()):
            # The folded ciphertext state and the served aggregate describe
            # the same population state whenever the answer is current.
            if served.version == version:
                assert served.result.get("*", 0.0) == float(folded)


class TestWireStandingPath:
    def test_subscribe_delta_update_round_trip(self):
        async def scenario():
            bus = MessageBus()
            ssi = bus.register("ssi")
            querier = bus.register("querier")
            pds = bus.register("pds-0")
            population = slim_population(12)
            service = SsiQueryService(population, ServiceConfig())
            service.start()
            server = asyncio.ensure_future(service.serve_endpoint(ssi))

            request = dict(
                SUM.to_dict(),
                request_id=1,
                window={"width": 2, "slide": 2},
                public_n=f"{PUBLIC.n:x}",
                start=0,
            )
            await querier.send(
                "ssi",
                Frame(KIND_SUBSCRIBE, "querier", 1, encode_json_payload(request)),
            )
            ack = await querier.recv(timeout=5.0)
            body = decode_json_payload(ack.payload)
            sub_id = body["subscription"]

            # The PDS fleet pushes its own bootstrap deltas over the wire.
            emitter = DeltaEmitter(PUBLIC, SUM.query, seed=2)
            for node in population.online_nodes():
                delta = emitter.refresh(node, True, 0)
                await pds.send(
                    "ssi",
                    Frame(KIND_DELTA, "pds-0", delta.pds_id, encode_delta(sub_id, delta)),
                )
            await asyncio.sleep(0.05)  # let the receive loop drain
            sent = await service.publish_windows(2, endpoint=ssi)
            update_frame = await querier.recv(timeout=5.0)

            server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass
            await service.stop()
            return population, ack, sent, update_frame

        population, ack, sent, update_frame = run(scenario())
        assert ack.kind == KIND_SUBSCRIBE
        assert sent == 1
        assert update_frame.kind == KIND_UPDATE
        update = update_from_wire(decode_json_payload(update_frame.payload))
        view = StandingView(PRIVATE, SUM.query)
        window = view.ingest(update)
        assert (window.total, window.count) == recollect(
            population.online_nodes(), SUM.query
        )

    def test_malformed_subscribe_is_rejected(self):
        async def scenario():
            bus = MessageBus()
            ssi = bus.register("ssi")
            querier = bus.register("querier")
            service = SsiQueryService(slim_population(5), ServiceConfig())
            service.start()
            server = asyncio.ensure_future(service.serve_endpoint(ssi))
            bad = dict(
                COUNT.to_dict(),
                request_id=2,
                window={"width": 10, "slide": 3},  # slide doesn't divide
                public_n=f"{PUBLIC.n:x}",
            )
            await querier.send(
                "ssi",
                Frame(KIND_SUBSCRIBE, "querier", 1, encode_json_payload(bad)),
            )
            reply = await querier.recv(timeout=5.0)
            server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass
            await service.stop()
            return reply

        reply = run(scenario())
        body = decode_json_payload(reply.payload)
        assert "error" in body

    def test_delta_batch_round_trip_matches_recollection(self):
        """A coalesced DELTA_BATCH frame folds to the same published
        window a one-frame-one-fold stream would — the batched wire path
        end to end, equality gate armed."""

        async def scenario():
            bus = MessageBus()
            ssi = bus.register("ssi")
            querier = bus.register("querier")
            pds = bus.register("pds-0")
            population = slim_population(16)
            service = SsiQueryService(population, ServiceConfig())
            service.start()
            server = asyncio.ensure_future(service.serve_endpoint(ssi))

            request = dict(
                SUM.to_dict(),
                request_id=1,
                window={"width": 2, "slide": 2},
                public_n=f"{PUBLIC.n:x}",
                start=0,
            )
            await querier.send(
                "ssi",
                Frame(KIND_SUBSCRIBE, "querier", 1, encode_json_payload(request)),
            )
            ack = await querier.recv(timeout=5.0)
            sub_id = decode_json_payload(ack.payload)["subscription"]

            # PDS side: every bootstrap delta coalesces into one frame.
            emitter = DeltaEmitter(PUBLIC, SUM.query, seed=2)
            batcher = DeltaBatcher(PUBLIC.n, WindowSpec(width=2, slide=2))
            for node in population.online_nodes():
                delta = emitter.refresh(node, True, 0)
                batcher.add(sub_id, delta)
            await pds.send(
                "ssi",
                Frame(
                    KIND_DELTA_BATCH,
                    "pds-0",
                    1,
                    encode_delta_batch(batcher.flush()),
                ),
            )
            await asyncio.sleep(0.05)
            sent = await service.publish_windows(2, endpoint=ssi)
            update_frame = await querier.recv(timeout=5.0)
            batches = service.registry.counter("globalq.ingest.deltas").value

            server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass
            await service.stop()
            return population, sent, update_frame, batches

        population, sent, update_frame, ingested = run(scenario())
        assert sent == 1
        assert ingested == len(population)
        update = update_from_wire(decode_json_payload(update_frame.payload))
        view = StandingView(PRIVATE, SUM.query)
        window = view.ingest(update)
        assert (window.total, window.count) == recollect(
            population.online_nodes(), SUM.query
        )

    def test_overflowing_ingest_queue_sheds_not_grows(self):
        """Past the knee the bounded ingest queue sheds with the typed
        counter — offered == folded + shed, queue depth stays bounded."""

        async def scenario():
            population = slim_population(8)
            service = SsiQueryService(
                population,
                ServiceConfig(ingest_queue_depth=4, ingest_batch_max=2),
            )
            sub = service.standing.subscribe(
                COUNT, WindowSpec(width=4), PUBLIC, local_source=False
            )
            service.start()
            emitter = DeltaEmitter(PUBLIC, COUNT.query, seed=3)
            offered = 0
            # Burst without yielding: the worker cannot drain in between,
            # so everything past the bound must shed.
            for node in population.online_nodes():
                delta = emitter.refresh(node, True, 0)
                frame = Frame(
                    KIND_DELTA, "pds-0", delta.pds_id,
                    encode_delta(sub.sub_id, delta),
                )
                service.ingest_frame(frame)
                offered += 1
            await service.drain_ingest()
            registry = service.registry
            folded = registry.counter("globalq.ingest.folded").value
            shed = registry.counter("globalq.ingest.shed").value
            depth = registry.gauge("globalq.ingest.queue_depth").value
            await service.stop()
            return offered, folded, shed, depth

        offered, folded, shed, depth = run(scenario())
        assert shed > 0
        assert folded + shed == offered
        assert depth <= 4

    def test_malformed_delta_is_counted_not_fatal(self):
        async def scenario():
            bus = MessageBus()
            ssi = bus.register("ssi")
            pds = bus.register("pds-0")
            service = SsiQueryService(slim_population(5), ServiceConfig())
            service.start()
            server = asyncio.ensure_future(service.serve_endpoint(ssi))
            await pds.send("ssi", Frame(KIND_DELTA, "pds-0", 1, b"garbage"))
            await asyncio.sleep(0.05)
            rejected = service.registry.counter("globalq.delta.rejected").value
            server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass
            await service.stop()
            return rejected

        assert run(scenario()) == 1

    def test_poison_frame_does_not_tear_down_the_endpoint(self):
        """Satellite regression: malformed DELTA and DELTA_BATCH payloads
        count under service.delta.rejected and the reader loop survives —
        a good delta sent *after* the poison still folds."""

        async def scenario():
            bus = MessageBus()
            ssi = bus.register("ssi")
            pds = bus.register("pds-0")
            population = slim_population(6)
            service = SsiQueryService(population, ServiceConfig())
            sub = service.standing.subscribe(
                COUNT, WindowSpec(width=4), PUBLIC, local_source=False
            )
            service.start()
            server = asyncio.ensure_future(service.serve_endpoint(ssi))

            await pds.send("ssi", Frame(KIND_DELTA, "pds-0", 1, b"\x00" * 7))
            await pds.send(
                "ssi", Frame(KIND_DELTA_BATCH, "pds-0", 2, b"\x02garbage")
            )
            emitter = DeltaEmitter(PUBLIC, COUNT.query, seed=4)
            delta = emitter.refresh(population.node(0), True, 0)
            await pds.send(
                "ssi",
                Frame(KIND_DELTA, "pds-0", 3, encode_delta(sub.sub_id, delta)),
            )
            await asyncio.sleep(0.05)
            await service.drain_ingest()
            rejected = service.registry.counter(
                "service.delta.rejected"
            ).value
            folded = service.registry.counter("globalq.delta.folded").value

            server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass
            await service.stop()
            return rejected, folded

        rejected, folded = run(scenario())
        assert rejected == 2
        assert folded == 1
