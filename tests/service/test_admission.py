"""Admission control: typed shedding, bounded depth, class fairness."""

import asyncio

import pytest

from repro.errors import NetError
from repro.service.admission import AdmissionController, Overloaded


def run(coro):
    return asyncio.run(coro)


class TestShedding:
    def test_rejects_beyond_depth_with_typed_error(self):
        async def scenario():
            ctrl = AdmissionController(max_queue_depth=2)
            ctrl.submit("a", "t1")
            ctrl.submit("b", "t2")
            with pytest.raises(Overloaded) as excinfo:
                ctrl.submit("a", "t3")
            return excinfo.value, ctrl

        exc, ctrl = run(scenario())
        assert isinstance(exc, NetError)  # catchable as the net family
        assert exc.query_class == "a"
        assert exc.queued == 2
        assert exc.limit == 2
        assert ctrl.stats.admitted == 2
        assert ctrl.stats.shed == 1
        assert ctrl.stats.shed_by_class == {"a": 1}

    def test_depth_is_summed_across_classes(self):
        async def scenario():
            ctrl = AdmissionController(max_queue_depth=3)
            for i, cls in enumerate(["a", "b", "c"]):
                ctrl.submit(cls, i)
            with pytest.raises(Overloaded):
                ctrl.submit("d", 99)
            return ctrl

        ctrl = run(scenario())
        assert ctrl.depth == 3
        assert ctrl.stats.queue_depth_high_water == 3

    def test_zero_depth_sheds_everything(self):
        async def scenario():
            ctrl = AdmissionController(max_queue_depth=0)
            with pytest.raises(Overloaded):
                ctrl.submit("a", 1)

        run(scenario())


class TestFairness:
    def test_round_robin_across_classes(self):
        async def scenario():
            ctrl = AdmissionController(max_queue_depth=16)
            # A burst of class a, then one each of b and c.
            for i in range(4):
                ctrl.submit("a", ("a", i))
            ctrl.submit("b", ("b", 0))
            ctrl.submit("c", ("c", 0))
            return [await ctrl.next_ticket() for _ in range(6)]

        order = run(scenario())
        # b and c are each served before a's burst drains.
        assert order.index(("b", 0)) < order.index(("a", 2))
        assert order.index(("c", 0)) < order.index(("a", 3))
        # FIFO within a class.
        a_order = [t for t in order if t[0] == "a"]
        assert a_order == [("a", i) for i in range(4)]

    def test_waits_for_submission(self):
        async def scenario():
            ctrl = AdmissionController(max_queue_depth=4)
            waiter = asyncio.ensure_future(ctrl.next_ticket())
            await asyncio.sleep(0)
            assert not waiter.done()
            ctrl.submit("a", "late")
            return await waiter

        assert run(scenario()) == "late"

    def test_drain_empties_all_queues(self):
        async def scenario():
            ctrl = AdmissionController(max_queue_depth=8)
            for i in range(3):
                ctrl.submit("a", i)
            ctrl.submit("b", 9)
            drained = ctrl.drain()
            return ctrl, drained

        ctrl, drained = run(scenario())
        assert sorted(drained, key=str) == [0, 1, 2, 9]
        assert ctrl.depth == 0

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=-1)
