"""Service-side telemetry: shed accounting, flight-recorder bundles,
the TELEMETRY wire endpoint, and worker-loop track names."""

import asyncio
import json
import random

from repro.globalq.protocol import PdsNode, TokenFleet
from repro.globalq.queries import AggregateQuery
from repro.net.bus import MessageBus
from repro.obs import check as obs_check
from repro.obs import top
from repro.obs.telemetry import Telemetry
from repro.service import (
    FAMILY_SECURE_AGG,
    QueryDescriptor,
    ServiceConfig,
    ServicePopulation,
    SsiQueryService,
)
from repro.service.admission import Overloaded
from repro.workloads.people import CITIES, PersonRecord


def make_population(count: int = 32) -> ServicePopulation:
    rng = random.Random(23)
    nodes = [
        PdsNode(
            i,
            [
                PersonRecord(
                    {
                        "city": CITIES[rng.randrange(len(CITIES))],
                        "salary": float(1200 + rng.randrange(1800)),
                    }
                )
            ],
        )
        for i in range(count)
    ]
    return ServicePopulation(nodes, TokenFleet(0))


DESCRIPTOR = QueryDescriptor(FAMILY_SECURE_AGG, AggregateQuery.sum("salary"))


class TestOverloadedBurst:
    """A forced shed burst leaves a validating bundle with queue depths."""

    def test_burst_dumps_a_bundle_with_queue_depths(self, tmp_path):
        asyncio.run(self._burst(tmp_path))

    async def _burst(self, tmp_path):
        with Telemetry(sample_rate=1.0, dump_dir=tmp_path) as bundle:
            service = SsiQueryService(
                make_population(),
                ServiceConfig(
                    max_in_flight=1, max_queue_depth=1, cache_capacity=0
                ),
                telemetry=bundle,
            )
            service.start()
            try:
                outcomes = await asyncio.gather(
                    *(service.submit(DESCRIPTOR) for _ in range(6)),
                    return_exceptions=True,
                )
            finally:
                await service.stop()
            sheds = [o for o in outcomes if isinstance(o, Overloaded)]
            served = [o for o in outcomes if not isinstance(o, Exception)]
            assert sheds and served  # overload, not outage

            registry = service.registry.snapshot()
            assert registry["service.shed"] == len(sheds)
            assert registry[f"service.shed.{DESCRIPTOR.query_class}"] == len(
                sheds
            )
            assert registry["service.shed_queue_depth"] >= 1

            assert bundle.recorder.triggers == len(sheds)
            assert bundle.recorder.last_trigger["reason"] == "overloaded"
            assert bundle.recorder.dumps

            path = bundle.recorder.dumps[0]
            assert obs_check.check_file(path) == []
            lines = [
                json.loads(line) for line in path.read_text().splitlines()
            ]
            header = lines[0]
            assert header["reason"] == "overloaded"
            assert header["details"]["queue_depth"] >= 1
            assert header["details"]["query_class"] == DESCRIPTOR.query_class
            # The frozen metrics snapshot is the *service* registry: the
            # shedding queue depth rides inside the bundle.
            snapshot = lines[-1]["snapshot"]
            assert snapshot["service.shed_queue_depth"] >= 1
            # The always-keep channel captured each shed as an event.
            shed_events = [
                r
                for r in lines
                if r["type"] == "event" and r["name"] == "service.shed"
            ]
            assert shed_events
            assert all(
                e["attrs"]["queue_depth"] >= 1 for e in shed_events
            )

    def test_sheds_recorded_even_when_trace_unsampled(self):
        asyncio.run(self._unsampled())

    async def _unsampled(self):
        with Telemetry(sample_rate=0.0) as bundle:
            service = SsiQueryService(
                make_population(),
                ServiceConfig(
                    max_in_flight=1, max_queue_depth=1, cache_capacity=0
                ),
                telemetry=bundle,
            )
            service.start()
            try:
                outcomes = await asyncio.gather(
                    *(service.submit(DESCRIPTOR) for _ in range(4)),
                    return_exceptions=True,
                )
            finally:
                await service.stop()
        sheds = [o for o in outcomes if isinstance(o, Overloaded)]
        assert sheds
        # Spans were sampled away, but the anomaly channel still fired.
        assert bundle.recorder.triggers == len(sheds)
        assert any(
            e["name"] == "service.shed" for e in bundle.tracer.events
        )


class TestTelemetryEndpoint:
    def test_wire_snapshot_and_dashboard_render(self):
        asyncio.run(self._round_trip())

    async def _round_trip(self):
        with Telemetry(sample_rate=1.0) as bundle:
            service = SsiQueryService(
                make_population(),
                ServiceConfig(max_in_flight=2),
                telemetry=bundle,
            )
            service.start()
            bus = MessageBus(rng=random.Random(9))
            server = asyncio.ensure_future(
                service.serve_endpoint(bus.register("ssi"))
            )
            try:
                await service.submit(DESCRIPTOR)
                snapshot = await top.fetch(bus.register("operator"))
            finally:
                server.cancel()
                await service.stop()
        assert snapshot["metrics"]["service.completed"] == 1
        assert snapshot["telemetry"]["sampler"]["rate"] == 1.0
        assert snapshot["telemetry"]["spans_recorded"] > 0
        rendered = top.render(snapshot)
        assert "SSI telemetry" in rendered
        assert "completed=1" in rendered
        assert "sampling: rate=1.0" in rendered

    def test_snapshot_without_bundle_omits_telemetry(self):
        asyncio.run(self._plain())

    async def _plain(self):
        service = SsiQueryService(
            make_population(), ServiceConfig(max_in_flight=1)
        )
        service.start()
        try:
            await service.submit(DESCRIPTOR)
        finally:
            await service.stop()
        snapshot = service.telemetry_snapshot()
        assert snapshot["metrics"]["service.completed"] == 1
        assert "telemetry" not in snapshot
        # The dashboard renders a plain snapshot too.
        assert "completed=1" in top.render(snapshot)


class TestWorkerTrackNames:
    def test_worker_loops_are_named_perfetto_tracks(self):
        asyncio.run(self._run())

    async def _run(self):
        from repro.obs.export import chrome_trace

        with Telemetry(sample_rate=1.0) as bundle:
            service = SsiQueryService(
                make_population(),
                ServiceConfig(max_in_flight=2, cache_capacity=0),
                telemetry=bundle,
            )
            service.start()
            try:
                await asyncio.gather(
                    *(service.submit(DESCRIPTOR) for _ in range(3))
                )
            finally:
                await service.stop()
        names = set(bundle.tracer.track_names.values())
        assert "ssi-worker-0" in names
        document = chrome_trace(bundle.tracer)
        thread_meta = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "ssi-worker-0" in thread_meta


class TestLatencySloPath:
    def test_completions_feed_the_slo_monitor(self):
        asyncio.run(self._run())

    async def _run(self):
        with Telemetry(
            sample_rate=1.0,
            slo_p99_ms={DESCRIPTOR.query_class: 0.000001},
            slo_window=2,
        ) as bundle:
            service = SsiQueryService(
                make_population(),
                ServiceConfig(max_in_flight=1, cache_capacity=0),
                telemetry=bundle,
            )
            service.start()
            try:
                for _ in range(2):
                    await service.submit(DESCRIPTOR)
            finally:
                await service.stop()
        # An absurdly tight SLO guarantees the window breached.
        assert bundle.slo.breaches.get(DESCRIPTOR.query_class, 0) >= 1
        assert bundle.recorder.last_trigger["reason"] == "slo_breach"
