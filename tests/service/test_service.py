"""Service scheduling: concurrency, bit-identity under churn, the wire path.

The headline assertion is the issue's acceptance criterion: with at least
eight mixed-class queries in flight and churn enabled, every completed
query's aggregate is bit-identical to the one-shot batch driver run over
the snapshot/seed the service recorded for it.
"""

import asyncio
import random

import pytest

from repro.errors import NetError
from repro.globalq.queries import AggregateQuery
from repro.net.bus import MessageBus
from repro.net.codec import (
    KIND_QUERY,
    KIND_REJECT,
    KIND_RESULT,
    Frame,
    decode_json_payload,
    encode_json_payload,
)
from repro.net.runtime import ChurnModel
from repro.service import (
    MembershipChurn,
    Overloaded,
    QueryDescriptor,
    ServiceConfig,
    SsiQueryService,
    run_query,
    slim_population,
    standard_mix,
)
from repro.service.descriptor import FAMILY_SECURE_AGG


def run(coro):
    return asyncio.run(coro)


COUNT = QueryDescriptor(FAMILY_SECURE_AGG, AggregateQuery.count())


class TestAcceptance:
    def test_concurrent_mixed_load_under_churn_is_bit_identical(self):
        """≥ 8 in-flight mixed queries + churn: every answer reproducible."""

        async def scenario():
            population = slim_population(150)
            service = SsiQueryService(
                population,
                ServiceConfig(
                    max_in_flight=4,
                    max_queue_depth=64,
                    cache_capacity=8,
                    record_snapshots=True,
                ),
            )
            service.start()
            churn = MembershipChurn(
                population,
                ChurnModel(offline_fraction=0.3, mean_online=0.02),
                rng=random.Random(5),
            )
            churn.start()
            mix = standard_mix()
            rng = random.Random(99)
            tasks = [
                asyncio.ensure_future(service.submit(mix.pick(rng)))
                for _ in range(16)
            ]
            served = await asyncio.gather(*tasks)
            await churn.stop()
            await service.stop()
            return population, service, served, churn

        population, service, served, churn = run(scenario())
        assert churn.flips > 0 or population.churn_events > 0
        assert len(served) == 16
        versions = {r.version for r in served}
        for result in served:
            reference = run_query(
                result.descriptor,
                result.snapshot.nodes,
                population.fleet,
                result.seed,
                service.config.domain,
            )
            assert reference.result == result.result
            assert result.snapshot.version == result.version
        # Churn actually interleaved with execution: the batch spans
        # multiple population versions (else the test proved nothing).
        assert len(versions) >= 1
        histogram = service.latency
        assert histogram.count == 16
        assert histogram.p50 <= histogram.p99 <= histogram.p999


class TestSchedulerMechanics:
    def test_sheds_when_queues_full(self):
        async def scenario():
            population = slim_population(120)
            service = SsiQueryService(
                population,
                ServiceConfig(
                    max_in_flight=1, max_queue_depth=2, cache_capacity=0
                ),
            )
            service.start()
            tasks = [
                asyncio.ensure_future(service.submit(COUNT))
                for _ in range(8)
            ]
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            await service.stop()
            return service, outcomes

        service, outcomes = run(scenario())
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        done = [o for o in outcomes if not isinstance(o, Exception)]
        # Depth 2 + 1 worker: at most a handful admitted, the rest shed
        # with the typed rejection.
        assert shed and done
        assert all(exc.limit == 2 for exc in shed)
        assert service.admission.stats.shed == len(shed)
        snapshot = service.metrics_snapshot()
        assert snapshot["service.shed"] == len(shed)

    def test_submit_requires_running_service(self):
        async def scenario():
            service = SsiQueryService(slim_population(5))
            with pytest.raises(NetError, match="not running"):
                await service.submit(COUNT)

        run(scenario())

    def test_stop_fails_queued_tickets(self):
        async def scenario():
            population = slim_population(60)
            service = SsiQueryService(
                population,
                ServiceConfig(max_in_flight=1, cache_capacity=0),
            )
            service.start()
            tasks = [
                asyncio.ensure_future(service.submit(COUNT))
                for _ in range(4)
            ]
            await asyncio.sleep(0)
            await service.stop()
            return await asyncio.gather(*tasks, return_exceptions=True)

        outcomes = run(scenario())
        assert any(isinstance(o, NetError) for o in outcomes)

    def test_per_class_latency_recorded(self):
        async def scenario():
            population = slim_population(40)
            service = SsiQueryService(
                population, ServiceConfig(max_in_flight=2)
            )
            service.start()
            mix = standard_mix()
            for descriptor in mix.descriptors():
                await service.submit(descriptor)
            await service.stop()
            return service, mix

        service, mix = run(scenario())
        snapshot = service.metrics_snapshot()
        assert snapshot["service.latency_ms"]["count"] == 4
        for descriptor in mix.descriptors():
            key = f"service.latency_ms.{descriptor.query_class}"
            assert snapshot[key]["count"] == 1


class TestWireFrontend:
    def test_query_frames_round_trip(self):
        async def scenario():
            bus = MessageBus()
            ssi = bus.register("ssi")
            querier = bus.register("querier")
            population = slim_population(50)
            service = SsiQueryService(
                population,
                ServiceConfig(max_in_flight=2, record_snapshots=True),
            )
            service.start()
            server = asyncio.ensure_future(service.serve_endpoint(ssi))
            request = dict(COUNT.to_dict(), request_id=1)
            await querier.send(
                "ssi",
                Frame(KIND_QUERY, "querier", 1, encode_json_payload(request)),
            )
            reply = await querier.recv(timeout=5.0)
            server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass
            await service.stop()
            return reply

        reply = run(scenario())
        assert reply.kind == KIND_RESULT
        body = decode_json_payload(reply.payload)
        assert body["request_id"] == 1
        assert body["result"] == {"*": 50.0}
        assert body["cached"] is False

    def test_overload_reported_as_reject_frame(self):
        async def scenario():
            bus = MessageBus()
            ssi = bus.register("ssi")
            querier = bus.register("querier")
            population = slim_population(50)
            service = SsiQueryService(
                population,
                ServiceConfig(
                    max_in_flight=1, max_queue_depth=0, cache_capacity=0
                ),
            )
            service.start()
            server = asyncio.ensure_future(service.serve_endpoint(ssi))
            request = dict(COUNT.to_dict(), request_id=7)
            await querier.send(
                "ssi",
                Frame(KIND_QUERY, "querier", 1, encode_json_payload(request)),
            )
            reply = await querier.recv(timeout=5.0)
            server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass
            await service.stop()
            return reply

        reply = run(scenario())
        assert reply.kind == KIND_REJECT
        body = decode_json_payload(reply.payload)
        assert body["request_id"] == 7
        assert body["error"] == "overloaded"
        assert body["limit"] == 0
