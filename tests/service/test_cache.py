"""Result-cache exactness: hits never change answers, churn always recomputes.

The two properties the satellite checklist names:

* serve → churn/forget → serve **recomputes**, and the recomputation equals
  a fresh one-shot batch run over the current population;
* a cache **hit** never changes an aggregate — it is byte-for-byte the
  answer the service would compute fresh at the same version (hypothesis
  property over random populations/mutations).
"""

import asyncio
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.globalq.queries import AggregateQuery, plaintext_answer
from repro.service import (
    CacheEntry,
    QueryDescriptor,
    ResultCache,
    ServiceConfig,
    SsiQueryService,
    derive_seed,
    run_query,
    slim_population,
    standard_mix,
)
from repro.service.descriptor import FAMILY_SECURE_AGG


def run(coro):
    return asyncio.run(coro)


def make_service(count=80, **overrides):
    population = slim_population(count)
    defaults = dict(
        max_in_flight=2, cache_capacity=8, record_snapshots=True
    )
    defaults.update(overrides)
    return population, SsiQueryService(population, ServiceConfig(**defaults))


SUM = QueryDescriptor(FAMILY_SECURE_AGG, AggregateQuery.sum("salary"))


class TestVersionExactness:
    def test_hit_until_churn_then_recompute(self):
        async def scenario():
            population, service = make_service()
            service.start()
            first = await service.submit(SUM)
            hit = await service.submit(SUM)
            population.set_online(3, False)
            after = await service.submit(SUM)
            await service.stop()
            return population, first, hit, after

        population, first, hit, after = run(scenario())
        assert not first.cached and hit.cached
        assert hit.result == first.result and hit.version == first.version
        # Churn forced a recomputation at the new version...
        assert not after.cached
        assert after.version == population.version
        # ...equal to a fresh one-shot batch run over the current population.
        fresh = run_query(
            SUM,
            population.snapshot().nodes,
            population.fleet,
            derive_seed(SUM, population.version),
            ("paris",),
        )
        assert after.result == fresh.result
        # And the node really is gone from the answer.
        assert after.result["*"] < first.result["*"]

    def test_forget_invalidates_and_excludes_records(self):
        async def scenario():
            population, service = make_service()
            service.start()
            before = await service.submit(SUM)
            removed = population.forget(7)
            after = await service.submit(SUM)
            await service.stop()
            return population, before, after, removed

        population, before, after, removed = run(scenario())
        assert removed == 1
        assert not after.cached
        truth = plaintext_answer(
            [n.records for n in population.snapshot().nodes], SUM.query
        )
        assert after.result == truth
        assert after.result["*"] < before.result["*"]

    def test_every_mix_class_recomputes_after_forget(self):
        async def scenario():
            population, service = make_service(count=60)
            service.start()
            mix = standard_mix()
            first = [await service.submit(d) for d in mix.descriptors()]
            population.forget(11)
            second = [await service.submit(d) for d in mix.descriptors()]
            await service.stop()
            return population, service, first, second

        population, service, first, second = run(scenario())
        for before, after in zip(first, second):
            assert not after.cached
            assert after.version == population.version
            fresh = run_query(
                after.descriptor,
                after.snapshot.nodes,
                population.fleet,
                after.seed,
                service.config.domain,
            )
            assert after.result == fresh.result


class TestCacheMechanics:
    def test_put_refuses_stale_snapshot(self):
        population = slim_population(10)
        cache = ResultCache(4, population)
        entry = CacheEntry(version=population.version, result={"*": 1.0}, seed=0)
        population.set_online(2, False)  # version moved past the entry
        assert not cache.put(SUM, entry)
        assert cache.stats.stale_results_dropped == 1
        assert cache.get(SUM) is None

    def test_lru_eviction(self):
        population = slim_population(4)
        cache = ResultCache(2, population)
        descriptors = [
            QueryDescriptor(
                FAMILY_SECURE_AGG, AggregateQuery.count(), partition_size=n
            )
            for n in (2, 3, 4)
        ]
        for descriptor in descriptors:
            cache.put(
                descriptor,
                CacheEntry(population.version, {"*": 0.0}, seed=0),
            )
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(descriptors[0]) is None  # oldest evicted
        assert cache.get(descriptors[2]) is not None

    def test_capacity_zero_disables(self):
        population = slim_population(4)
        cache = ResultCache(0, population)
        assert not cache.enabled
        assert not cache.put(SUM, CacheEntry(0, {"*": 0.0}, seed=0))
        assert cache.get(SUM) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1, slim_population(2))


class TestHitNeverChangesAggregates:
    @settings(max_examples=15, deadline=None)
    @given(
        count=st.integers(min_value=5, max_value=40),
        mutations=st.lists(
            st.tuples(st.sampled_from(["churn", "forget"]), st.integers(0, 4)),
            max_size=4,
        ),
        repeats=st.integers(min_value=1, max_value=3),
    )
    def test_property(self, count, mutations, repeats):
        async def scenario():
            population, service = make_service(count=count, cache_capacity=4)
            service.start()
            mix = standard_mix()
            rng = random.Random(count)
            for kind, offset in mutations:
                pds_id = offset % len(population)
                if kind == "churn":
                    population.set_online(pds_id, rng.random() < 0.5)
                else:
                    population.forget(pds_id)
            descriptor = mix.pick(rng)
            baseline = await service.submit(descriptor)
            replays = [
                await service.submit(descriptor) for _ in range(repeats)
            ]
            await service.stop()
            return population, baseline, replays

        population, baseline, replays = run(scenario())
        fresh = run_query(
            baseline.descriptor,
            baseline.snapshot.nodes,
            population.fleet,
            baseline.seed,
            ServiceConfig().domain,
        )
        assert baseline.result == fresh.result
        for replay in replays:
            # Population unchanged since baseline: every replay is a hit
            # and the aggregate is byte-identical.
            assert replay.cached
            assert replay.result == baseline.result
            assert replay.version == baseline.version
            assert replay.seed == baseline.seed
