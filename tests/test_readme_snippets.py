"""The README's code blocks must actually run (docs-rot guard)."""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_with_python_blocks(self):
        blocks = python_blocks()
        assert len(blocks) >= 2

    def test_every_python_block_executes(self):
        for block in python_blocks():
            namespace: dict = {}
            exec(compile(block, "<README>", "exec"), namespace)  # noqa: S102

    def test_architecture_section_names_real_packages(self):
        import importlib

        text = README.read_text()
        for line in text.splitlines():
            match = re.match(r"^(repro\.\w+)\s", line)
            if match:
                importlib.import_module(match.group(1))

    def test_example_table_paths_exist(self):
        root = README.parent
        for match in re.finditer(r"`(examples/\w+\.py)`", README.read_text()):
            assert (root / match.group(1)).exists(), match.group(1)
