"""Unit tests for the experiment harness (the benches' reporting layer)."""

import pytest

from repro.bench.harness import Experiment, render_table, run_and_print


def sample() -> Experiment:
    experiment = Experiment(
        experiment_id="EX",
        title="Sample",
        claim="numbers line up",
        columns=["name", "value", "ratio"],
    )
    experiment.add_row("alpha", 1234, 0.5)
    experiment.add_row("b", 2, 12345.678)
    return experiment


class TestExperiment:
    def test_row_arity_checked(self):
        experiment = sample()
        with pytest.raises(ValueError, match="row has 2 values"):
            experiment.add_row("only", 2)

    def test_column_extraction(self):
        experiment = sample()
        assert experiment.column("value") == [1234, 2]
        with pytest.raises(ValueError):
            experiment.column("missing")


class TestRenderTable:
    def test_header_and_alignment(self):
        text = render_table(sample())
        lines = text.splitlines()
        assert lines[0] == "== EX: Sample =="
        assert lines[1].startswith("claim:")
        header, divider, first, second = lines[2:6]
        # Every line is padded to the same total width per column.
        assert len(header) == len(divider) == len(first) == len(second)
        assert first.startswith("alpha")
        assert second.startswith("b")

    def test_float_formatting(self):
        text = render_table(sample())
        assert "0.50" in text  # mid-range floats: two decimals
        assert "1.23e+04" in text  # large floats: compact scientific

    def test_empty_experiment_renders(self):
        experiment = Experiment("E0", "Empty", "nothing", ["a", "b"])
        text = render_table(experiment)
        assert "E0" in text and "a" in text

    def test_run_and_print_returns_experiment(self, capsys):
        experiment = run_and_print(sample)
        captured = capsys.readouterr()
        assert "== EX: Sample ==" in captured.out
        assert experiment.rows


class TestJsonMode:
    def test_not_requested_by_default(self, monkeypatch):
        import sys

        from repro.bench.harness import json_requested

        monkeypatch.delenv("BENCH_JSON", raising=False)
        monkeypatch.setattr(sys, "argv", ["bench"])
        assert not json_requested()

    def test_requested_via_flag_or_env(self, monkeypatch):
        import sys

        from repro.bench.harness import json_requested

        monkeypatch.setattr(sys, "argv", ["bench", "--json"])
        assert json_requested()
        monkeypatch.setattr(sys, "argv", ["bench"])
        monkeypatch.setenv("BENCH_JSON", "1")
        assert json_requested()

    def test_write_json_roundtrips(self, tmp_path):
        import json

        from repro.bench.harness import write_json

        path = write_json(sample(), directory=str(tmp_path))
        assert path == tmp_path / "BENCH_EX.json"
        data = json.loads(path.read_text())
        assert data["experiment_id"] == "EX"
        assert data["title"] == "Sample"
        assert data["claim"] == "numbers line up"
        assert data["columns"] == ["name", "value", "ratio"]
        assert data["rows"] == [["alpha", 1234, 0.5], ["b", 2, 12345.678]]

    def test_run_and_print_writes_when_requested(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_JSON", "1")
        monkeypatch.setenv("BENCH_JSON_DIR", str(tmp_path))
        run_and_print(sample)
        assert (tmp_path / "BENCH_EX.json").exists()

    def test_run_and_print_skips_without_request(self, tmp_path, monkeypatch):
        monkeypatch.delenv("BENCH_JSON", raising=False)
        monkeypatch.setenv("BENCH_JSON_DIR", str(tmp_path))
        import sys

        monkeypatch.setattr(sys, "argv", ["bench"])
        run_and_print(sample)
        assert not list(tmp_path.iterdir())
