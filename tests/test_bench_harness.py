"""Unit tests for the experiment harness (the benches' reporting layer)."""

import pytest

from repro.bench.harness import Experiment, render_table, run_and_print


def sample() -> Experiment:
    experiment = Experiment(
        experiment_id="EX",
        title="Sample",
        claim="numbers line up",
        columns=["name", "value", "ratio"],
    )
    experiment.add_row("alpha", 1234, 0.5)
    experiment.add_row("b", 2, 12345.678)
    return experiment


class TestExperiment:
    def test_row_arity_checked(self):
        experiment = sample()
        with pytest.raises(ValueError, match="row has 2 values"):
            experiment.add_row("only", 2)

    def test_column_extraction(self):
        experiment = sample()
        assert experiment.column("value") == [1234, 2]
        with pytest.raises(ValueError):
            experiment.column("missing")


class TestRenderTable:
    def test_header_and_alignment(self):
        text = render_table(sample())
        lines = text.splitlines()
        assert lines[0] == "== EX: Sample =="
        assert lines[1].startswith("claim:")
        header, divider, first, second = lines[2:6]
        # Every line is padded to the same total width per column.
        assert len(header) == len(divider) == len(first) == len(second)
        assert first.startswith("alpha")
        assert second.startswith("b")

    def test_float_formatting(self):
        text = render_table(sample())
        assert "0.50" in text  # mid-range floats: two decimals
        assert "1.23e+04" in text  # large floats: compact scientific

    def test_empty_experiment_renders(self):
        experiment = Experiment("E0", "Empty", "nothing", ["a", "b"])
        text = render_table(experiment)
        assert "E0" in text and "a" in text

    def test_run_and_print_returns_experiment(self, capsys):
        experiment = run_and_print(sample)
        captured = capsys.readouterr()
        assert "== EX: Sample ==" in captured.out
        assert experiment.rows
