"""Tests for the log-structured key-value store."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.hardware.flash import BlockAllocator, FlashGeometry, NandFlash
from repro.hardware.ram import RamArena
from repro.keyvalue.kv import LogKeyValueStore


def make_allocator(page_size=128, blocks=4096) -> BlockAllocator:
    flash = NandFlash(
        FlashGeometry(page_size=page_size, pages_per_block=8, num_blocks=blocks)
    )
    return BlockAllocator(flash)


@pytest.fixture
def store() -> LogKeyValueStore:
    return LogKeyValueStore(make_allocator())


class TestPutGet:
    def test_roundtrip(self, store):
        store.put(b"name", b"alice")
        store.flush()
        assert store.get(b"name") == b"alice"

    def test_missing_key(self, store):
        store.put(b"a", b"1")
        store.flush()
        assert store.get(b"zzz") is None

    def test_latest_version_wins(self, store):
        for version in range(20):
            store.put(b"counter", str(version).encode())
        store.flush()
        assert store.get(b"counter") == b"19"

    def test_unflushed_writes_visible(self, store):
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_empty_value_is_not_delete(self, store):
        store.put(b"k", b"")
        store.flush()
        assert store.get(b"k") == b""

    def test_empty_key_rejected(self, store):
        with pytest.raises(StorageError):
            store.put(b"", b"v")


class TestDelete:
    def test_tombstone_hides_value(self, store):
        store.put(b"k", b"v")
        store.delete(b"k")
        store.flush()
        assert store.get(b"k") is None

    def test_put_after_delete_revives(self, store):
        store.put(b"k", b"v1")
        store.delete(b"k")
        store.put(b"k", b"v2")
        store.flush()
        assert store.get(b"k") == b"v2"

    def test_items_excludes_tombstones(self, store):
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        store.delete(b"a")
        assert store.items() == {b"b": b"2"}


class TestGetCost:
    def test_summary_scan_prunes_pages(self):
        store = LogKeyValueStore(make_allocator(page_size=256))
        for i in range(3000):
            store.put(f"user:{i:05d}".encode(), b"x" * 20)
        store.flush()
        assert store.get(b"user:01234") == b"x" * 20
        stats = store.last_get
        assert stats.data_pages <= 3  # one true page + rare false positives
        assert stats.summary_pages < store.data_pages / 3


class TestCompaction:
    def test_compaction_preserves_live_state(self):
        store = LogKeyValueStore(make_allocator())
        rng = random.Random(5)
        model: dict[bytes, bytes] = {}
        for op in range(800):
            key = f"k{rng.randrange(60)}".encode()
            if rng.random() < 0.25:
                store.delete(key)
                model.pop(key, None)
            else:
                value = f"v{op}".encode()
                store.put(key, value)
                model[key] = value
        compacted = store.compact(RamArena(64 * 1024), sort_buffer_bytes=1024)
        assert compacted.items() == model
        for key, value in model.items():
            assert compacted.get(key) == value
        assert compacted.get(b"k-deleted-nope") is None

    def test_compaction_reclaims_space(self):
        allocator = make_allocator()
        store = LogKeyValueStore(allocator)
        for version in range(2000):
            store.put(b"hot-key", str(version).encode())
        store.flush()
        old_pages = store.data_pages
        compacted = store.compact(RamArena(64 * 1024), sort_buffer_bytes=2048)
        store.drop()  # bulk block reclamation of the old generation
        assert compacted.data_pages < old_pages / 100
        assert compacted.get(b"hot-key") == b"1999"

    def test_compaction_drops_tombstones(self):
        store = LogKeyValueStore(make_allocator())
        for i in range(50):
            store.put(f"k{i}".encode(), b"v")
            store.delete(f"k{i}".encode())
        compacted = store.compact(RamArena(64 * 1024))
        assert compacted.items() == {}
        assert compacted.record_count == 0

    def test_compaction_is_sequential_only(self):
        """The flash model would raise on any random write; also check
        erases only come from run reclamation."""
        allocator = make_allocator()
        store = LogKeyValueStore(allocator)
        for i in range(1500):
            store.put(f"k{i % 100}".encode(), str(i).encode())
        flash = allocator.flash
        before = flash.stats.snapshot()
        store.compact(RamArena(64 * 1024), sort_buffer_bytes=1024)
        delta = flash.stats.delta(before)
        assert delta.page_programs > 0
        assert delta.block_erases < delta.page_programs

    def test_invalid_sort_buffer(self, store):
        store.put(b"k", b"v")
        with pytest.raises(StorageError):
            store.compact(RamArena(1024), sort_buffer_bytes=0)


class TestPropertyAgainstDict:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([b"a", b"b", b"c", b"d"]),
                st.one_of(st.none(), st.binary(max_size=8)),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_store_equals_dict(self, operations):
        store = LogKeyValueStore(make_allocator())
        model: dict[bytes, bytes] = {}
        for key, value in operations:
            if value is None:
                store.delete(key)
                model.pop(key, None)
            else:
                store.put(key, value)
                model[key] = value
        store.flush()
        for key in (b"a", b"b", b"c", b"d"):
            assert store.get(key) == model.get(key)
        compacted = store.compact(RamArena(64 * 1024), sort_buffer_bytes=512)
        assert compacted.items() == model
