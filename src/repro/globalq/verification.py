"""Detection primitives against a weakly malicious SSI ([ANP13] spirit).

The covert adversary drops, replays or forges contributions but fears being
caught. Three complementary defences, each exercised by E9:

* **forgery** — blobs are authenticated with the fleet key; a forged blob
  fails decryption inside the first token that touches it (counted as an
  ``integrity_failure`` in every protocol report);
* **replay** — ``(pds_id, sequence)`` pairs are unique by construction;
  collisions across partitions surface at the querier merge
  (``duplicates_detected``);
* **omission** — no single token sees the whole bag, so drops are caught by
  a *participation audit*: the querier samples ``k`` registered PDSs and
  checks their contributions arrived; an SSI dropping a fraction ``f``
  survives with probability ``(1 - f)^k``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.globalq.protocol import AggregationOutcome


@dataclass
class AuditResult:
    """Outcome of a participation audit."""

    sampled: int
    missing: list[int]

    @property
    def cheating_detected(self) -> bool:
        return bool(self.missing)


def participating_pds_ids(outcomes: list[AggregationOutcome]) -> set[int]:
    """Distinct PDS ids whose contributions actually reached a token."""
    seen: set[int] = set()
    for outcome in outcomes:
        seen.update(pds_id for pds_id, _ in outcome.seen_pds_sequences)
    return seen


def participation_audit(
    expected_ids: set[int],
    outcomes: list[AggregationOutcome],
    sample_size: int,
    rng: random.Random,
) -> AuditResult:
    """Sample ``sample_size`` expected participants; report the absent ones.

    ``expected_ids`` should be restricted to PDSs known to have contributed
    (e.g. all registered ones for a COUNT(*) census); sampling a PDS whose
    WHERE matched nothing would be a false alarm.
    """
    present = participating_pds_ids(outcomes)
    population = sorted(expected_ids)
    if not population:
        return AuditResult(sampled=0, missing=[])
    sample_size = min(sample_size, len(population))
    sampled = rng.sample(population, sample_size)
    missing = sorted(pds_id for pds_id in sampled if pds_id not in present)
    return AuditResult(sampled=sample_size, missing=missing)


def detection_probability(drop_fraction: float, sample_size: int) -> float:
    """Analytic P[audit catches an SSI dropping ``drop_fraction``]."""
    if not 0.0 <= drop_fraction <= 1.0:
        raise ValueError("drop fraction must be in [0, 1]")
    if sample_size < 0:
        raise ValueError("sample size must be non-negative")
    return 1.0 - (1.0 - drop_fraction) ** sample_size
