"""Histogram-based protocol: equi-depth bucketization à la Hacigümüş.

Third [TNP14] family, following [HILM02]/[HIM04]: the group domain is cut
into **equi-depth buckets** using a public (approximate) frequency prior —
each bucket covers about the same *mass*, not the same number of values.
A contribution exposes only its cleartext ``bucket_id``; the SSI partitions
by bucket, and one trusted token per bucket decrypts and aggregates its
partition exactly.

Leak profile: the bucket histogram — by equi-depth construction close to
flat, hence far less informative than per-group frequencies (E8 quantifies
the attacker's loss). Cost profile: like the noise family without fakes, but
partials carry every group of the bucket.
"""

from __future__ import annotations

import random

from repro.errors import ProtocolError
from repro.globalq.parallel import (
    DEFAULT_SHARD_SIZE,
    ShardedCollector,
    WorkerPool,
)
from repro.globalq.protocol import (
    PdsNode,
    ProtocolReport,
    TokenFleet,
    TrustedAggregator,
    finalize_partials,
)
from repro.globalq.queries import AggregateQuery
from repro.globalq.ssi import SsiBehavior, SupportingServerInfrastructure, HONEST
from repro.smc.parties import Channel


class EquiDepthBucketizer:
    """Public mapping ``group value -> bucket id`` built from a prior.

    ``prior`` maps each domain value to its (approximate, public) frequency;
    buckets are filled greedily in domain order until each holds roughly
    ``1/num_buckets`` of the mass.
    """

    def __init__(self, prior: dict[str, float], num_buckets: int) -> None:
        if num_buckets < 1:
            raise ProtocolError("need at least one bucket")
        if not prior:
            raise ProtocolError("empty prior distribution")
        total = sum(prior.values())
        if total <= 0:
            raise ProtocolError("prior has no mass")
        target = total / num_buckets
        self.assignment: dict[str, int] = {}
        bucket, mass = 0, 0.0
        for value in sorted(prior):
            self.assignment[value] = bucket
            mass += prior[value]
            if mass >= target and bucket < num_buckets - 1:
                bucket += 1
                mass = 0.0
        self.num_buckets = bucket + 1

    def __call__(self, group: str) -> int:
        try:
            return self.assignment[group]
        except KeyError:
            # Unknown values go to the last bucket (public convention).
            return self.num_buckets - 1

    def bucket_of(self, group: str) -> int:
        return self(group)


class HistogramProtocol:
    """The equi-depth bucket family."""

    name = "histogram-based"

    def __init__(
        self,
        fleet: TokenFleet,
        bucketizer: EquiDepthBucketizer,
        ssi_behavior: SsiBehavior = HONEST,
        rng: random.Random | None = None,
        workers: int | None = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        collection_seed: int = 0,
        pool: WorkerPool | None = None,
    ) -> None:
        self.fleet = fleet
        self.bucketizer = bucketizer
        self.ssi_behavior = ssi_behavior
        self.rng = rng or random.Random(0)
        #: ``None`` = original loop; an int routes collection through the
        #: sharded executor (the bucketizer ships to workers whole — it is
        #: a plain public mapping). ``pool`` reuses a persistent
        #: :class:`WorkerPool` across queries.
        self.workers = workers
        self.shard_size = shard_size
        self.collection_seed = collection_seed
        self.pool = pool

    def run(
        self, nodes: list[PdsNode], query: AggregateQuery
    ) -> ProtocolReport:
        channel = Channel()
        ssi = SupportingServerInfrastructure(self.ssi_behavior, self.rng)

        # Phase 1: collection with cleartext bucket ids.
        tuples_sent = 0
        if self.workers is None and self.pool is None:
            for node in nodes:
                contributions = node.contributions(
                    query, self.fleet, bucketizer=self.bucketizer
                )
                tuples_sent += len(contributions)
                for contribution in contributions:
                    channel.send(
                        f"pds-{node.pds_id}",
                        "ssi",
                        contribution.blob + b"\x00" * 4,
                    )
                ssi.collect(contributions)
        else:
            collector = ShardedCollector(
                self.workers or 1, self.shard_size, self.collection_seed,
                pool=self.pool,
            )
            collected = collector.collect(
                nodes, query, self.fleet, bucketizer=self.bucketizer
            )
            for item in collected:
                tuples_sent += len(item.contributions)
                for contribution in item.contributions:
                    channel.send(
                        f"pds-{item.pds_id}",
                        "ssi",
                        contribution.blob + b"\x00" * 4,
                    )
                ssi.collect(item.contributions)

        # Phase 2: partition by bucket.
        partitions = ssi.partition_by_bucket()

        # Phase 3: per-bucket aggregation, querier merge.
        outcomes = []
        decryptions = 0
        for index, (_, partition) in enumerate(sorted(partitions.items())):
            for contribution in partition:
                channel.send("ssi", f"aggregator-{index}", contribution.blob)
            outcome = TrustedAggregator(self.fleet).aggregate(partition)
            decryptions += len(partition)
            outcomes.append(outcome)
        result, failures, duplicates = finalize_partials(
            outcomes, query, channel
        )
        return ProtocolReport(
            result=result,
            protocol=self.name,
            num_pds=len(nodes),
            tuples_sent=tuples_sent,
            fake_tuples_sent=0,
            token_decryptions=decryptions,
            token_invocations=len(partitions) + 1,
            comm_bytes=channel.stats.bytes,
            comm_messages=channel.stats.messages,
            integrity_failures=failures,
            duplicates_detected=duplicates,
            ssi_bucket_histogram=dict(ssi.observations.bucket_counts),
        )
