"""Private graph queries: the inherently hard case of Part III's conclusion.

    *"Graph based queries (private secure network queries) have an inherent
    difficulty because the security must be assured all along a path."*

This module makes the difficulty measurable. The setting: a social graph
distributed over the PDS population — each citizen's token knows only its
own adjacency. A querier wants reachability/distance between two members
without any adjacency list ever reaching the SSI in the clear.

The traversal protocol is frontier BFS, one **round per hop**: the querier
token decrypts the current frontier's adjacencies (fetched, encrypted,
through the SSI) before it even knows whom to contact next — rounds cannot
be collapsed, which is exactly the "along a path" sequentiality. Two modes:

* **unpadded** — only frontier members are contacted each round. Cheap, but
  the SSI watches *which* tokens talk: the access pattern traces the path
  (the leak is reported, not hidden);
* **padded** — every token is contacted every round and answers with a
  (real or dummy) fixed-size encrypted blob. The access pattern becomes
  uniform — no leak — at bandwidth ``n x rounds``, the price the conclusion
  alludes to.

A centralized baseline (everyone uploads their adjacency once) costs one
round but leaks the entire graph to whoever aggregates it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.globalq.protocol import TokenFleet
from repro.smc.parties import Channel

_NODE = struct.Struct("<I")


def _pack_adjacency(neighbors: set[int]) -> bytes:
    """Length-prefixed adjacency: count, then sorted node ids."""
    return _NODE.pack(len(neighbors)) + b"".join(
        _NODE.pack(node) for node in sorted(neighbors)
    )


def _unpack_adjacency(data: bytes) -> set[int]:
    (count,) = _NODE.unpack_from(data, 0)
    return {
        _NODE.unpack_from(data, _NODE.size * (1 + index))[0]
        for index in range(count)
    }


@dataclass
class GraphQueryReport:
    """Outcome and cost/leak profile of one private traversal."""

    reachable: bool
    distance: int | None
    rounds: int
    token_contacts: int
    comm_bytes: int
    #: Distinct tokens the SSI saw being queried — the access-pattern leak.
    #: In padded mode this equals the whole population (uniform = no info).
    observed_contacts: int
    padded: bool


class DistributedGraph:
    """Adjacency held per token; only ciphertext crosses the SSI."""

    def __init__(
        self, adjacency: dict[int, set[int]], fleet: TokenFleet
    ) -> None:
        for node, neighbors in adjacency.items():
            for neighbor in neighbors:
                if node not in adjacency.get(neighbor, set()):
                    raise ProtocolError(
                        f"adjacency not symmetric: {node} -> {neighbor}"
                    )
        self.adjacency = adjacency
        self.fleet = fleet
        self._cipher = fleet.payload_cipher()
        self._max_degree = max(
            (len(neighbors) for neighbors in adjacency.values()), default=0
        )

    # ------------------------------------------------------------------
    def fetch_encrypted(self, node: int, padded: bool) -> bytes:
        """What the node's token hands the SSI for forwarding.

        Padded mode pads every answer to the maximum degree so answer
        *sizes* cannot distinguish real frontier members from dummies.
        """
        payload = _pack_adjacency(self.adjacency.get(node, set()))
        if padded:
            # Fixed-size answers: sizes cannot distinguish frontier members
            # from dummies. The length prefix makes padding unambiguous.
            payload = payload.ljust(_NODE.size * (1 + self._max_degree), b"\x00")
        return self._cipher.encrypt(payload)

    def decrypt_adjacency(self, blob: bytes) -> set[int]:
        return _unpack_adjacency(self._cipher.decrypt(blob))


def private_reachability(
    graph: DistributedGraph,
    source: int,
    target: int,
    max_hops: int,
    channel: Channel,
    padded: bool = False,
) -> GraphQueryReport:
    """BFS over encrypted adjacencies, one SSI round per hop."""
    if source not in graph.adjacency or target not in graph.adjacency:
        raise ProtocolError("source and target must be graph members")
    if source == target:
        return GraphQueryReport(True, 0, 0, 0, 0, 0, padded)

    population = sorted(graph.adjacency)
    visited = {source}
    frontier = {source}
    contacts = 0
    observed: set[int] = set()
    rounds = 0
    while frontier and rounds < max_hops:
        rounds += 1
        contact_set = population if padded else sorted(frontier)
        next_frontier: set[int] = set()
        for node in contact_set:
            blob = graph.fetch_encrypted(node, padded)
            channel.send(f"token-{node}", "ssi", blob)
            channel.send("ssi", "querier-token", blob)
            contacts += 1
            observed.add(node)
            if node in frontier:  # dummies are decrypted but discarded
                next_frontier |= graph.decrypt_adjacency(blob)
        next_frontier -= visited
        if target in next_frontier:
            return GraphQueryReport(
                reachable=True,
                distance=rounds,
                rounds=rounds,
                token_contacts=contacts,
                comm_bytes=channel.stats.bytes,
                observed_contacts=len(observed),
                padded=padded,
            )
        visited |= next_frontier
        frontier = next_frontier
    return GraphQueryReport(
        reachable=False,
        distance=None,
        rounds=rounds,
        token_contacts=contacts,
        comm_bytes=channel.stats.bytes,
        observed_contacts=len(observed),
        padded=padded,
    )


def centralized_reachability(
    graph: DistributedGraph,
    source: int,
    target: int,
    channel: Channel,
) -> GraphQueryReport:
    """The leaky baseline: every adjacency uploaded once, BFS locally.

    One round, but the aggregator reconstructs the entire social graph —
    the privacy failure the private protocol exists to avoid.
    """
    adjacency: dict[int, set[int]] = {}
    for node in sorted(graph.adjacency):
        payload = _pack_adjacency(graph.adjacency[node])
        channel.send(f"token-{node}", "aggregator", payload)
        adjacency[node] = set(graph.adjacency[node])
    # Plain BFS at the aggregator.
    from collections import deque

    queue = deque([(source, 0)])
    seen = {source}
    while queue:
        node, distance = queue.popleft()
        if node == target:
            return GraphQueryReport(
                True, distance, 1, len(adjacency), channel.stats.bytes,
                len(adjacency), False,
            )
        for neighbor in adjacency[node]:
            if neighbor not in seen:
                seen.add(neighbor)
                queue.append((neighbor, distance + 1))
    return GraphQueryReport(
        False, None, 1, len(adjacency), channel.stats.bytes,
        len(adjacency), False,
    )
