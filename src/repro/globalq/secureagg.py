"""Secure-aggregation protocol: non-deterministic encryption, zero leak.

First of the [TNP14] families: contributions carry *only* a
non-deterministically encrypted blob, so the SSI learns nothing — not even
whether two tuples share a group. The price is that the SSI cannot partition
usefully: it cuts the bag into fixed-size **random** partitions, every
partition may contain every group, and each aggregator token must decrypt
its whole partition and ship a per-group partial to the querier.

Leak profile: none (ciphertext count and sizes only).
Cost profile: every tuple symmetric-decrypted once by some token; partial
results of size O(#groups) per partition.
"""

from __future__ import annotations

import math
import random

from repro.globalq.parallel import (
    DEFAULT_SHARD_SIZE,
    ShardedCollector,
    WorkerPool,
)
from repro.globalq.protocol import (
    PdsNode,
    ProtocolReport,
    TokenFleet,
    TrustedAggregator,
    finalize_partials,
)
from repro.globalq.queries import AggregateQuery
from repro.globalq.ssi import SsiBehavior, SupportingServerInfrastructure, HONEST
from repro.smc.parties import Channel


class SecureAggregationProtocol:
    """The non-deterministic-encryption family."""

    name = "secure-aggregation"

    def __init__(
        self,
        fleet: TokenFleet,
        partition_size: int | None = None,
        ssi_behavior: SsiBehavior = HONEST,
        rng: random.Random | None = None,
        aggregator_failure_rate: float = 0.0,
        workers: int | None = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        collection_seed: int = 0,
        pool: WorkerPool | None = None,
    ) -> None:
        if not 0.0 <= aggregator_failure_rate < 1.0:
            raise ValueError("failure rate must be in [0, 1)")
        self.fleet = fleet
        self.partition_size = partition_size
        self.ssi_behavior = ssi_behavior
        self.rng = rng or random.Random(0)
        #: ``None`` keeps the original node-at-a-time collection loop;
        #: an integer routes collection through the sharded executor
        #: (``workers=1`` = serial shards, ``>1`` = process pool). Shard
        #: geometry and seeds never depend on the worker count, so any two
        #: worker settings produce bit-identical contributions.
        self.workers = workers
        self.shard_size = shard_size
        self.collection_seed = collection_seed
        #: A persistent :class:`WorkerPool` routes collection through the
        #: sharded executor without paying pool spawn cost per query (the
        #: long-lived service configuration).
        self.pool = pool
        #: Probability that an assigned token disconnects before answering.
        #: Tokens are "low powered, highly disconnected": the SSI simply
        #: reassigns the (ciphertext) partition to another connected token.
        self.aggregator_failure_rate = aggregator_failure_rate

    def run(
        self, nodes: list[PdsNode], query: AggregateQuery
    ) -> ProtocolReport:
        channel = Channel()
        ssi = SupportingServerInfrastructure(self.ssi_behavior, self.rng)

        # Phase 1: collection (blobs only — no tags, no buckets).
        tuples_sent = 0
        if self.workers is None and self.pool is None:
            for node in nodes:
                contributions = node.contributions(query, self.fleet)
                tuples_sent += len(contributions)
                for contribution in contributions:
                    channel.send(
                        f"pds-{node.pds_id}", "ssi", contribution.blob
                    )
                ssi.collect(contributions)
        else:
            collector = ShardedCollector(
                self.workers or 1, self.shard_size, self.collection_seed,
                pool=self.pool,
            )
            for item in collector.collect(nodes, query, self.fleet):
                tuples_sent += len(item.contributions)
                for contribution in item.contributions:
                    channel.send(
                        f"pds-{item.pds_id}", "ssi", contribution.blob
                    )
                ssi.collect(item.contributions)

        # Phase 2: random partitioning (the best a blind SSI can do).
        size = self.partition_size or max(
            1, int(math.sqrt(max(1, len(ssi.stored))))
        )
        partitions = ssi.partition_random(size)

        # Phase 3: one trusted token per partition, then the querier merge.
        # A token may disconnect mid-partition; the SSI reassigns the same
        # ciphertext partition to another token (pure retry: aggregation is
        # deterministic and side-effect free until the partial is returned).
        outcomes = []
        decryptions = 0
        retries = 0
        for index, partition in enumerate(partitions):
            while True:
                for contribution in partition:
                    channel.send("ssi", f"aggregator-{index}", contribution.blob)
                if self.rng.random() < self.aggregator_failure_rate:
                    retries += 1
                    if retries > 100 * max(1, len(partitions)):
                        raise RuntimeError("no connected tokens available")
                    continue
                aggregator = TrustedAggregator(self.fleet)
                outcome = aggregator.aggregate(partition)
                decryptions += len(partition)
                outcomes.append(outcome)
                break
        result, failures, duplicates = finalize_partials(
            outcomes, query, channel
        )
        return ProtocolReport(
            result=result,
            protocol=self.name,
            num_pds=len(nodes),
            tuples_sent=tuples_sent,
            fake_tuples_sent=0,
            token_decryptions=decryptions,
            token_invocations=len(partitions) + 1,
            comm_bytes=channel.stats.bytes,
            comm_messages=channel.stats.messages,
            integrity_failures=failures,
            duplicates_detected=duplicates,
            aggregator_retries=retries,
            ssi_tag_histogram=dict(ssi.observations.group_tag_counts),
        )
