"""The Supporting Server Infrastructure (SSI): powerful but untrusted.

The asymmetric architecture's second half: an always-available cloud that
stores, partitions and routes encrypted contributions, but is never allowed
plaintext. Two behaviours from the tutorial's threat-model slide:

* **honest-but-curious** — follows the protocol, records everything it sees
  (:attr:`observations`) for offline inference (fed to
  :mod:`repro.globalq.attacks`);
* **weakly malicious** (covert adversary) — may drop, duplicate or forge
  contributions, but wants to avoid detection; the knobs below set how
  aggressively it cheats, and :mod:`repro.globalq.verification` measures how
  reliably it gets caught.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.globalq.messages import EncryptedContribution


@dataclass(frozen=True)
class SsiBehavior:
    """How the SSI deviates from the protocol (all zeros = semi-honest)."""

    drop_fraction: float = 0.0
    duplicate_fraction: float = 0.0
    forge_count: int = 0

    @property
    def is_honest(self) -> bool:
        return (
            self.drop_fraction == 0.0
            and self.duplicate_fraction == 0.0
            and self.forge_count == 0
        )


HONEST = SsiBehavior()


@dataclass
class SsiObservations:
    """Everything an honest-but-curious SSI can write down."""

    total_contributions: int = 0
    group_tag_counts: Counter = field(default_factory=Counter)
    bucket_counts: Counter = field(default_factory=Counter)
    blob_bytes: int = 0


class SupportingServerInfrastructure:
    """Stores contributions, partitions them, optionally cheats."""

    def __init__(
        self,
        behavior: SsiBehavior = HONEST,
        rng: random.Random | None = None,
    ) -> None:
        self.behavior = behavior
        self.rng = rng or random.Random(0)
        self.stored: list[EncryptedContribution] = []
        self.observations = SsiObservations()
        self._forged = False

    # ------------------------------------------------------------------
    # Collection (with covert attacks applied on the way in)
    # ------------------------------------------------------------------
    def collect(self, contributions: list[EncryptedContribution]) -> None:
        for contribution in contributions:
            if self.rng.random() < self.behavior.drop_fraction:
                continue  # silently discard
            self._store(contribution)
            if self.rng.random() < self.behavior.duplicate_fraction:
                self._store(contribution)  # replay

    def _ensure_forgeries(self) -> None:
        """Inject ``forge_count`` fabricated blobs once, before partitioning."""
        if self._forged:
            return
        self._forged = True
        for _ in range(self.behavior.forge_count):
            self._store(self._forge())

    def _store(self, contribution: EncryptedContribution) -> None:
        self.stored.append(contribution)
        obs = self.observations
        obs.total_contributions += 1
        obs.blob_bytes += len(contribution.blob)
        if contribution.group_tag is not None:
            obs.group_tag_counts[contribution.group_tag] += 1
        if contribution.bucket_id is not None:
            obs.bucket_counts[contribution.bucket_id] += 1

    def _forge(self) -> EncryptedContribution:
        """A forged blob: without keys it cannot authenticate (detection!)."""
        blob = self.rng.getrandbits(8 * 64).to_bytes(64, "little")
        template = self.rng.choice(self.stored) if self.stored else None
        return EncryptedContribution(
            blob=blob,
            group_tag=template.group_tag if template else None,
            bucket_id=template.bucket_id if template else None,
        )

    # ------------------------------------------------------------------
    # Partitioning services (all operate on ciphertext metadata only)
    # ------------------------------------------------------------------
    def partition_random(
        self, partition_size: int
    ) -> list[list[EncryptedContribution]]:
        """Fixed-size random partitions (all the SSI can do without tags)."""
        self._ensure_forgeries()
        if partition_size < 1:
            raise ValueError("partition size must be >= 1")
        shuffled = list(self.stored)
        self.rng.shuffle(shuffled)
        return [
            shuffled[start : start + partition_size]
            for start in range(0, len(shuffled), partition_size)
        ]

    def partition_by_group_tag(self) -> dict[bytes, list[EncryptedContribution]]:
        """Group by deterministic tag (noise-based family)."""
        self._ensure_forgeries()
        partitions: dict[bytes, list[EncryptedContribution]] = {}
        for contribution in self.stored:
            if contribution.group_tag is None:
                raise ValueError("contribution has no group tag to partition on")
            partitions.setdefault(contribution.group_tag, []).append(contribution)
        return partitions

    def partition_by_bucket(self) -> dict[int, list[EncryptedContribution]]:
        """Group by cleartext histogram bucket (histogram family)."""
        self._ensure_forgeries()
        partitions: dict[int, list[EncryptedContribution]] = {}
        for contribution in self.stored:
            if contribution.bucket_id is None:
                raise ValueError("contribution has no bucket id to partition on")
            partitions.setdefault(contribution.bucket_id, []).append(contribution)
        return partitions
