"""Sharded parallel execution of the [TNP14] collection phase.

The collection phase is embarrassingly parallel — every PDS encrypts its
own contributions with fleet-wide keys — yet the protocol drivers iterated
nodes one at a time, capping experiments at a few thousand PDSs. This
module fans collection out over a process pool without giving up
reproducibility:

* the population is cut into fixed-size **shards** (shard geometry never
  depends on the worker count);
* each shard derives its randomness from a **deterministic shard seed**
  (SHA-256 of ``base_seed || shard index``), and every PDS inside a shard
  draws its fake plan and cipher-nonce seed from the shard stream in node
  order — so the produced ciphertexts are bit-identical whether the shard
  runs in-process, in any worker, or in any order;
* workers rebuild the :class:`~repro.globalq.protocol.TokenFleet` from its
  key-derivation seed, so no key material crosses the process boundary
  inside live objects.

``workers=1`` is a true serial fallback (no pool, no pickling) that runs
the very same shard function, which is what makes ``parallel == serial``
an *exact* equality the tests and bench E23 assert, not an approximation.

The same machinery drives the Paillier secure-sum collection
(:func:`collect_encrypted_sum`): each shard encrypts its sites through a
shard-seeded :class:`~repro.crypto.fastexp.BlindingPool` and returns one
partial homomorphic aggregate for the SSI to merge.
"""

from __future__ import annotations

import hashlib
import os
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro import obs
from repro.globalq.queries import AggregateQuery, local_contributions
from repro.obs import telemetry

#: Nodes per shard. Fixed (never derived from the worker count) so that
#: changing ``workers`` cannot change a single ciphertext.
DEFAULT_SHARD_SIZE = 512


def shard_seed(base_seed: int, index: int) -> int:
    """Deterministic 64-bit seed of shard ``index`` (scheduling-independent)."""
    digest = hashlib.sha256(f"shard:{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def shard_slices(count: int, shard_size: int) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` shard bounds over ``count`` items."""
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    return [
        (start, min(start + shard_size, count))
        for start in range(0, count, shard_size)
    ]


class WorkerPool:
    """A persistent process pool shared across repeated collections.

    The per-call paths below spawn (and tear down) a fresh
    :class:`~concurrent.futures.ProcessPoolExecutor` on every collect —
    fine for one-shot benches, ruinous for a long-lived query service
    where every query would pay worker start-up again. A ``WorkerPool``
    keeps the workers alive between calls: pass it to
    :class:`ShardedCollector`/:func:`collect_encrypted_sum` (or the
    protocol families' ``pool=`` argument) and call :meth:`close` when the
    service shuts down. Shard seeds do not depend on which pool executes
    them, so routing through a shared pool cannot change a single
    ciphertext.

    ``submit`` is thread-safe (it delegates to the executor), so
    concurrent queries of one service can share one pool.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The live executor (workers spawn lazily on first use)."""
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def submit(self, fn, *args):
        return self.executor.submit(fn, *args)

    def close(self) -> None:
        """Shut the workers down; idempotent, and the pool stays closed."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Symmetric collection ([TNP14] families)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CollectTask:
    """Everything one worker needs to collect one shard (all picklable)."""

    shard_index: int
    shard_seed: int
    fleet_seed: int
    query: AggregateQuery
    nodes: tuple
    with_group_tag: bool = False
    bucketizer: object = None
    noise: object = None
    #: Distributed trace context of the submitting span (or None): lets a
    #: worker process record its shard span for adoption by the submitter.
    trace: object = None


@dataclass
class NodeContributions:
    """One PDS's collection output, tagged for accounting in the driver."""

    pds_id: int
    contributions: list
    fake_count: int


def collect_shard(task: CollectTask):
    """Collect one shard: the unit of work both serial and pooled paths run.

    Per node, in order: (1) plan fakes from the shard stream, (2) draw the
    cipher-nonce seed, (3) encrypt. The fixed draw order is the whole
    determinism contract.

    When the task carries a sampled trace context and runs in a worker
    process, the shard's execution span is recorded locally and shipped
    back wrapped in a :class:`~repro.obs.telemetry.TracedResult` for the
    submitter to adopt; otherwise the plain contribution list returns.
    """
    # Imported here: the family modules import this module at top level.
    from repro.globalq.noise import plan_fakes
    from repro.globalq.protocol import TokenFleet

    with telemetry.remote_recording(
        task.trace, f"worker-{os.getpid()}"
    ) as recording:
        with obs.span(
            "globalq.collect.shard.exec",
            shard=task.shard_index,
            nodes=len(task.nodes),
        ):
            fleet = TokenFleet(task.fleet_seed)
            rng = random.Random(task.shard_seed)
            out = []
            for node in task.nodes:
                fakes = None
                if task.noise is not None:
                    real = local_contributions(node.records, task.query)
                    fakes = plan_fakes(real, task.noise, rng)
                cipher_seed = rng.getrandbits(64)
                contributions = node.contributions(
                    task.query,
                    fleet,
                    with_group_tag=task.with_group_tag,
                    bucketizer=task.bucketizer,
                    fakes=fakes,
                    cipher_seed=cipher_seed,
                )
                out.append(
                    NodeContributions(
                        node.pds_id, contributions, len(fakes or ())
                    )
                )
    if recording is not None:
        return recording.wrap(out)
    return out


class ShardedCollector:
    """Runs the collection phase over deterministic shards, optionally pooled.

    ``workers=1`` executes shards inline; ``workers>1`` fans them out over
    a :class:`~concurrent.futures.ProcessPoolExecutor`. Results always come
    back in shard order. One ``globalq.collect.shard`` obs span brackets
    each shard (inline execution, or the wait for its worker result).
    """

    def __init__(
        self,
        workers: int = 1,
        shard_size: int = DEFAULT_SHARD_SIZE,
        base_seed: int = 0,
        pool: WorkerPool | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        #: A persistent :class:`WorkerPool` to reuse instead of spawning a
        #: fresh process pool per collect; ``workers`` then follows the
        #: pool's width. ``None`` keeps the legacy per-call behaviour.
        self.pool = pool
        self.workers = pool.workers if pool is not None else workers
        self.shard_size = shard_size
        self.base_seed = base_seed

    def _tasks(self, nodes, query, fleet, with_group_tag, bucketizer, noise):
        trace = telemetry.propagated()
        return [
            CollectTask(
                shard_index=index,
                shard_seed=shard_seed(self.base_seed, index),
                fleet_seed=fleet.seed,
                query=query,
                nodes=tuple(nodes[start:stop]),
                with_group_tag=with_group_tag,
                bucketizer=bucketizer,
                noise=noise,
                trace=trace,
            )
            for index, (start, stop) in enumerate(
                shard_slices(len(nodes), self.shard_size)
            )
        ]

    def collect(
        self,
        nodes,
        query: AggregateQuery,
        fleet,
        with_group_tag: bool = False,
        bucketizer=None,
        noise=None,
    ) -> list[NodeContributions]:
        """Collect the whole population; flat list in population order."""
        tasks = self._tasks(
            nodes, query, fleet, with_group_tag, bucketizer, noise
        )
        results: list[NodeContributions] = []

        def drain(submit) -> None:
            futures = [submit(collect_shard, task) for task in tasks]
            for task, future in zip(tasks, futures):
                with obs.span(
                    "globalq.collect.shard",
                    shard=task.shard_index,
                    nodes=len(task.nodes),
                ) as shard_span:
                    results.extend(
                        telemetry.adopt(future.result(), shard_span)
                    )

        if self.pool is not None:
            drain(self.pool.submit)
        elif self.workers == 1:
            for task in tasks:
                with obs.span(
                    "globalq.collect.shard",
                    shard=task.shard_index,
                    nodes=len(task.nodes),
                ) as shard_span:
                    results.extend(
                        telemetry.adopt(collect_shard(task), shard_span)
                    )
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                drain(pool.submit)
        return results


# ----------------------------------------------------------------------
# Homomorphic collection (Paillier secure sum)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SumShardTask:
    """One shard of a Paillier secure-sum collection (picklable)."""

    shard_index: int
    shard_seed: int
    n: int
    values: tuple
    stock_size: int
    subset_size: int
    #: Distributed trace context of the submitting span (or None).
    trace: object = None


@dataclass
class SumShardResult:
    """Partial homomorphic aggregate of one shard."""

    shard_index: int
    partial: int
    ciphertext_bytes: tuple
    modexps: int


def sum_shard(task: SumShardTask):
    """Encrypt one shard of sites batched and fold it homomorphically.

    Returns a :class:`SumShardResult`, wrapped in a
    :class:`~repro.obs.telemetry.TracedResult` when the task's trace
    context asked this worker process to record its execution span.
    """
    # Local import keeps worker start-up (and pickling) minimal.
    from repro.crypto.paillier import PaillierPublicKey

    with telemetry.remote_recording(
        task.trace, f"worker-{os.getpid()}"
    ) as recording:
        with obs.span(
            "smc.secure_sum.shard.exec",
            shard=task.shard_index,
            sites=len(task.values),
        ):
            public = PaillierPublicKey(n=task.n, n_squared=task.n * task.n)
            pool = public.blinding_pool(
                seed=task.shard_seed,
                stock_size=task.stock_size,
                subset_size=task.subset_size,
            )
            ciphertexts = public.encrypt_batch(task.values, pool=pool)
            partial = 1
            sizes = []
            for ciphertext in ciphertexts:
                partial = public.add(partial, ciphertext)
                sizes.append((ciphertext.bit_length() + 7) // 8)
            # One pow for the pool generator plus one fixed-base eval per
            # stock entry is all the full-width exponentiation performed.
            result = SumShardResult(
                shard_index=task.shard_index,
                partial=partial,
                ciphertext_bytes=tuple(sizes),
                modexps=1 + task.stock_size,
            )
    if recording is not None:
        return recording.wrap(result)
    return result


def collect_encrypted_sum(
    values,
    public,
    workers: int = 1,
    shard_size: int = DEFAULT_SHARD_SIZE,
    base_seed: int = 0,
    stock_size: int = 32,
    subset_size: int = 8,
    pool: WorkerPool | None = None,
) -> list[SumShardResult]:
    """Sharded batched encryption of ``values``; partials in shard order.

    ``pool`` reuses a persistent :class:`WorkerPool` (the worker count then
    follows the pool); ``None`` keeps the legacy behaviour of spawning a
    process pool per call when ``workers > 1``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if pool is not None:
        workers = pool.workers
    trace = telemetry.propagated()
    tasks = [
        SumShardTask(
            shard_index=index,
            shard_seed=shard_seed(base_seed, index),
            n=public.n,
            values=tuple(values[start:stop]),
            stock_size=stock_size,
            subset_size=subset_size,
            trace=trace,
        )
        for index, (start, stop) in enumerate(
            shard_slices(len(values), shard_size)
        )
    ]
    results: list[SumShardResult] = []

    def drain(submit) -> None:
        from repro.crypto.fastexp import count_modexp

        futures = [submit(sum_shard, task) for task in tasks]
        for task, future in zip(tasks, futures):
            with obs.span(
                "smc.secure_sum.shard",
                shard=task.shard_index,
                sites=len(task.values),
            ) as shard_span:
                result = telemetry.adopt(future.result(), shard_span)
                # Workers counted their exponentiations in their own
                # process; mirror them into this process's registry. An
                # adopted exec span's counters land in shard_span's child
                # counts, cancelling the mirror out of its self_counters.
                count_modexp(result.modexps)
                results.append(result)

    if pool is not None:
        drain(pool.submit)
    elif workers == 1:
        for task in tasks:
            with obs.span(
                "smc.secure_sum.shard",
                shard=task.shard_index,
                sites=len(task.values),
            ) as shard_span:
                results.append(
                    telemetry.adopt(sum_shard(task), shard_span)
                )
    else:
        with ProcessPoolExecutor(max_workers=workers) as executor:
            drain(executor.submit)
    return results
