"""Noise-based protocols: deterministic tags + fake tuples.

Second [TNP14] family: each contribution carries a *deterministic*
encryption of its group value, so the SSI can partition by group — one
partition per group, minimal token work, tiny partials. The leak is the
group-frequency histogram, which :mod:`repro.globalq.attacks` exploits; the
countermeasure is **fake tuples** (flagged inside the authenticated blob, so
aggregating tokens drop them after decryption):

* :data:`WHITE_NOISE` — each PDS adds ``ratio`` fakes per real tuple with
  groups drawn uniformly from the public domain;
* :data:`COMPLEMENTARY_NOISE` — fakes are drawn from the *complement* of the
  PDS's own groups, pushing every tag's frequency toward uniform faster for
  the same bandwidth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.globalq.parallel import (
    DEFAULT_SHARD_SIZE,
    ShardedCollector,
    WorkerPool,
)
from repro.globalq.protocol import (
    PdsNode,
    ProtocolReport,
    TokenFleet,
    TrustedAggregator,
    finalize_partials,
)
from repro.globalq.queries import AggregateQuery, local_contributions
from repro.globalq.ssi import SsiBehavior, SupportingServerInfrastructure, HONEST
from repro.smc.parties import Channel

WHITE_NOISE = "white"
COMPLEMENTARY_NOISE = "complementary"
NO_NOISE = "none"


@dataclass(frozen=True)
class NoisePlan:
    """How much fake traffic each PDS adds, and how it picks fake groups."""

    mode: str = NO_NOISE
    ratio: float = 0.0  # fake tuples per real tuple
    domain: tuple[str, ...] = ()  # public group domain fakes draw from

    def __post_init__(self) -> None:
        if self.mode not in (NO_NOISE, WHITE_NOISE, COMPLEMENTARY_NOISE):
            raise ProtocolError(f"unknown noise mode {self.mode!r}")
        if self.mode != NO_NOISE and self.ratio > 0 and not self.domain:
            raise ProtocolError("noise needs a public group domain")


def plan_fakes(
    real: list[tuple[str, float]],
    plan: NoisePlan,
    rng: random.Random,
) -> list[tuple[str, float]]:
    """The fake ``(group, value)`` tuples one PDS will inject."""
    if plan.mode == NO_NOISE or plan.ratio <= 0 or not real:
        return []
    count = int(len(real) * plan.ratio + rng.random())  # stochastic rounding
    own_groups = {group for group, _ in real}
    if plan.mode == COMPLEMENTARY_NOISE:
        pool = [g for g in plan.domain if g not in own_groups] or list(plan.domain)
    else:
        pool = list(plan.domain)
    return [
        (pool[rng.randrange(len(pool))], 0.0) for _ in range(count)
    ]


class NoiseProtocol:
    """The deterministic-encryption + fake-tuples family."""

    name = "noise-based"

    def __init__(
        self,
        fleet: TokenFleet,
        noise: NoisePlan | None = None,
        ssi_behavior: SsiBehavior = HONEST,
        rng: random.Random | None = None,
        workers: int | None = None,
        shard_size: int = DEFAULT_SHARD_SIZE,
        collection_seed: int = 0,
        pool: WorkerPool | None = None,
    ) -> None:
        self.fleet = fleet
        self.noise = noise or NoisePlan()
        self.ssi_behavior = ssi_behavior
        self.rng = rng or random.Random(0)
        #: ``None`` = original loop; an int routes collection through the
        #: sharded executor (fakes then draw from per-shard seeds, so the
        #: result is identical for every worker count). ``pool`` reuses a
        #: persistent :class:`WorkerPool` across queries.
        self.workers = workers
        self.shard_size = shard_size
        self.collection_seed = collection_seed
        self.pool = pool

    def run(
        self, nodes: list[PdsNode], query: AggregateQuery
    ) -> ProtocolReport:
        channel = Channel()
        ssi = SupportingServerInfrastructure(self.ssi_behavior, self.rng)

        # Phase 1: collection with deterministic group tags + planned fakes.
        tuples_sent = fakes_sent = 0
        if self.workers is None and self.pool is None:
            for node in nodes:
                real = local_contributions(node.records, query)
                fakes = plan_fakes(real, self.noise, self.rng)
                contributions = node.contributions(
                    query, self.fleet, with_group_tag=True, fakes=fakes
                )
                tuples_sent += len(contributions)
                fakes_sent += len(fakes)
                for contribution in contributions:
                    channel.send(
                        f"pds-{node.pds_id}",
                        "ssi",
                        contribution.blob + (contribution.group_tag or b""),
                    )
                ssi.collect(contributions)
        else:
            collector = ShardedCollector(
                self.workers or 1, self.shard_size, self.collection_seed,
                pool=self.pool,
            )
            collected = collector.collect(
                nodes, query, self.fleet, with_group_tag=True,
                noise=self.noise,
            )
            for item in collected:
                tuples_sent += len(item.contributions)
                fakes_sent += item.fake_count
                for contribution in item.contributions:
                    channel.send(
                        f"pds-{item.pds_id}",
                        "ssi",
                        contribution.blob + (contribution.group_tag or b""),
                    )
                ssi.collect(item.contributions)

        # Phase 2: the SSI groups by tag — one partition per (apparent) group.
        partitions = ssi.partition_by_group_tag()

        # Phase 3: per-group aggregation by trusted tokens, querier merge.
        outcomes = []
        decryptions = 0
        for index, (_, partition) in enumerate(sorted(partitions.items())):
            for contribution in partition:
                channel.send("ssi", f"aggregator-{index}", contribution.blob)
            outcome = TrustedAggregator(self.fleet).aggregate(partition)
            decryptions += len(partition)
            outcomes.append(outcome)
        result, failures, duplicates = finalize_partials(
            outcomes, query, channel
        )
        return ProtocolReport(
            result=result,
            protocol=f"{self.name}:{self.noise.mode}",
            num_pds=len(nodes),
            tuples_sent=tuples_sent,
            fake_tuples_sent=fakes_sent,
            token_decryptions=decryptions,
            token_invocations=len(partitions) + 1,
            comm_bytes=channel.stats.bytes,
            comm_messages=channel.stats.messages,
            integrity_failures=failures,
            duplicates_detected=duplicates,
            ssi_tag_histogram=dict(ssi.observations.group_tag_counts),
        )
