"""Global aggregate queries over a population of PDSs.

The query class of [TNP14] as presented in the tutorial: SQL aggregates —
``COUNT``/``SUM``/``AVG``, optional ``GROUP BY``, conjunctive equality
``WHERE`` — evaluated over the union of every citizen's records. The WHERE
clause is always applied *locally by each PDS* (only authorized, filtered
contributions ever leave a token), so what a protocol moves around is a bag
of ``(group, value)`` contributions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.workloads.people import PersonRecord

AGGREGATES = ("COUNT", "SUM", "AVG")

#: Group key used when a query has no GROUP BY.
GLOBAL_GROUP = "*"


@dataclass(frozen=True)
class AggregateQuery:
    """One global aggregate query."""

    aggregate: str
    attribute: str | None = None
    group_by: str | None = None
    where: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.aggregate not in AGGREGATES:
            raise QueryError(
                f"unsupported aggregate {self.aggregate!r}; "
                f"expected one of {AGGREGATES}"
            )
        if self.aggregate in ("SUM", "AVG") and self.attribute is None:
            raise QueryError(f"{self.aggregate} needs an attribute")

    @classmethod
    def count(cls, group_by=None, where=()) -> "AggregateQuery":
        return cls("COUNT", None, group_by, tuple(where))

    @classmethod
    def sum(cls, attribute, group_by=None, where=()) -> "AggregateQuery":
        return cls("SUM", attribute, group_by, tuple(where))

    @classmethod
    def avg(cls, attribute, group_by=None, where=()) -> "AggregateQuery":
        return cls("AVG", attribute, group_by, tuple(where))


#: Comparison operators usable in 3-element WHERE conditions.
OPERATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _condition_holds(record: PersonRecord, condition: tuple) -> bool:
    """One WHERE condition: ``(attr, value)`` or ``(attr, op, value)``."""
    if len(condition) == 2:
        attribute, value = condition
        return record.get(attribute) == value
    if len(condition) == 3:
        attribute, op, value = condition
        comparator = OPERATORS.get(op)
        if comparator is None:
            raise QueryError(
                f"unknown operator {op!r}; expected one of {sorted(OPERATORS)}"
            )
        actual = record.get(attribute)
        if actual is None:
            return False
        try:
            return comparator(actual, value)
        except TypeError:
            return False  # incomparable types never match
    raise QueryError(f"malformed WHERE condition {condition!r}")


def record_matches(record: PersonRecord, query: AggregateQuery) -> bool:
    """Local WHERE evaluation (inside the PDS)."""
    for condition in query.where:
        if not _condition_holds(record, condition):
            return False
    if query.attribute is not None and query.attribute not in record:
        return False
    if query.group_by is not None and query.group_by not in record:
        return False
    return True


def local_contributions(
    records: list[PersonRecord], query: AggregateQuery
) -> list[tuple[str, float]]:
    """The ``(group, value)`` tuples one PDS contributes to the query."""
    contributions = []
    for record in records:
        if not record_matches(record, query):
            continue
        group = (
            str(record[query.group_by]) if query.group_by else GLOBAL_GROUP
        )
        if query.aggregate == "COUNT":
            value = 1.0
        else:
            value = float(record[query.attribute])
        contributions.append((group, value))
    return contributions


class Accumulator:
    """Composable partial aggregate: (sum, count) per group.

    All three SQL aggregates reduce to sum/count pairs, which merge
    associatively — the property every partition-then-combine protocol
    needs.
    """

    def __init__(self) -> None:
        self.sums: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, group: str, value: float) -> None:
        self.sums[group] = self.sums.get(group, 0.0) + value
        self.counts[group] = self.counts.get(group, 0) + 1

    def merge(self, other: "Accumulator") -> None:
        for group, value in other.sums.items():
            self.sums[group] = self.sums.get(group, 0.0) + value
        for group, count in other.counts.items():
            self.counts[group] = self.counts.get(group, 0) + count

    def finalize(self, query: AggregateQuery) -> dict[str, float]:
        result = {}
        for group in self.sums:
            if query.aggregate == "COUNT":
                result[group] = float(self.counts[group])
            elif query.aggregate == "SUM":
                result[group] = self.sums[group]
            else:  # AVG
                result[group] = self.sums[group] / self.counts[group]
        return result

    def serialized_size(self) -> int:
        """Wire size of this partial (group strings + two 8 B numbers)."""
        return sum(len(group.encode()) + 16 for group in self.sums)


def plaintext_answer(
    population: list[list[PersonRecord]], query: AggregateQuery
) -> dict[str, float]:
    """Reference evaluation with full visibility (ground truth for tests)."""
    accumulator = Accumulator()
    for records in population:
        for group, value in local_contributions(records, query):
            accumulator.add(group, value)
    return accumulator.finalize(query)
