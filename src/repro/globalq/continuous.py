"""Standing queries: encrypted delta-maintenance for live aggregates.

Every protocol in this package so far answers a query by *recollection*:
the SSI gathers one fresh ciphertext per online PDS, folds, and the querier
decrypts. For a standing query refreshed every few seconds over a million
PDSs that cost model is wrong by orders of magnitude — almost nothing
changed between refreshes. Paillier additivity offers the right one: when a
PDS's contribution moves from ``old`` to ``new`` it pushes a single
encrypted **delta** ``Enc(new) · Enc(-old) = Enc(new - old)`` (the
retraction ``Enc(-old)`` is the plaintext negation ``n - old``, folded
before the ciphertext leaves the token), and the SSI *multiplies* deltas
into a running ciphertext without ever decrypting. Traffic becomes
O(changes), not O(population) — the approach of Taelman et al.'s
privacy-preserving aggregation for decentralized environments (PAPERS.md),
applied to the [TNP14] architecture.

Windowing reuses the ``repro.timeseries`` summary recipe on ciphertexts:
simulated time is cut into **panes** (one pane per slide interval), each
pane accumulates the deltas that arrived during it, and at a boundary the
pane is sealed — a tumbling window is one pane, a sliding window is the
homomorphic product of the last ``width // slide`` sealed panes, exactly
how a page summary folds into a range aggregate. The querier-side
:class:`StandingView` closes the loop by decrypting each
:class:`WindowUpdate` and appending it to a
:class:`~repro.timeseries.series.TimeSeriesStore`.

Exactness is the contract: after any interleaving of insert / update /
``forget()`` / churn, decrypting the folded state equals a full plaintext
recollection over the current membership — bit-exactly, because every
value is an integer and Paillier arithmetic is exact (asserted by the
stateful tests and at every window boundary of bench E27).
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, replace

from repro import obs
from repro.crypto.fastexp import BlindingPool
from repro.crypto.paillier import PaillierPrivateKey, PaillierPublicKey
from repro.errors import ProtocolError, QueryError
from repro.globalq.queries import AggregateQuery, local_contributions
from repro.obs import telemetry

#: ``Enc(0)`` with blinding 1 — the multiplicative identity of the fold.
CIPHER_IDENTITY = 1


# ---------------------------------------------------------------------------
# Window algebra
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WindowSpec:
    """Tumbling or sliding window over simulated time.

    ``width`` is the window length; ``slide`` (default ``width``, i.e.
    tumbling) is how often a window closes and must divide ``width``. The
    pane width equals the slide, so every delta lands in exactly one pane
    and a window is the product of ``width // slide`` consecutive panes.
    """

    width: int
    slide: int | None = None

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise QueryError("window width must be positive")
        slide = self.slide
        if slide is not None:
            if slide <= 0:
                raise QueryError("window slide must be positive")
            if slide > self.width:
                raise QueryError("window slide must be <= width")
            if self.width % slide:
                raise QueryError("window slide must divide width")

    @property
    def pane_width(self) -> int:
        return self.slide if self.slide is not None else self.width

    @property
    def panes_per_window(self) -> int:
        return self.width // self.pane_width

    @property
    def tumbling(self) -> bool:
        return self.panes_per_window == 1

    def to_dict(self) -> dict:
        return {"width": self.width, "slide": self.pane_width}

    @classmethod
    def from_dict(cls, data: dict) -> "WindowSpec":
        try:
            slide = data.get("slide")
            return cls(
                width=int(data["width"]),
                slide=None if slide is None else int(slide),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"malformed window spec: {exc}") from exc


@dataclass(frozen=True)
class EncryptedDelta:
    """One PDS's encrypted contribution change.

    ``value_cipher`` encrypts the signed change of the PDS's value sum,
    ``count_cipher`` the signed change of its matching-record count —
    together they update the (sum, count) pair every SQL aggregate reduces
    to. ``seq`` is the per-(PDS, subscription) sequence number: the SSI
    folds each sequence at most once, so a replayed or duplicated delta
    cannot double-count (the PR 6 replay rule, applied to the delta
    stream).
    """

    pds_id: int
    seq: int
    timestamp: int
    value_cipher: int
    count_cipher: int

    def ciphertext_bytes(self, n_squared: int) -> int:
        """Wire size of the two ciphertexts under modulus ``n²``."""
        return 2 * ((n_squared.bit_length() + 7) // 8)


@dataclass(frozen=True)
class WindowUpdate:
    """What the SSI publishes at one window boundary.

    ``live_*`` is the folded total of *every* delta with
    ``timestamp < window_end`` — decrypting it must equal full recollection
    at the boundary. ``window_*`` is the net change inside
    ``[window_start, window_end)`` (the pane product), which can decrypt
    negative under forgets. All four are ciphertexts: the SSI computed them
    without decrypting anything.
    """

    window_start: int
    window_end: int
    #: 1-based boundary index since the subscription started.
    index: int
    live_value: int
    live_count: int
    window_value: int
    window_count: int
    #: Deltas folded into the window's panes.
    deltas: int
    #: Population version at publication (stamped by the registry).
    version: int = -1


# ---------------------------------------------------------------------------
# PDS side: the delta source
# ---------------------------------------------------------------------------
def contribution_of(records, query: AggregateQuery) -> tuple[int, int]:
    """The ``(value sum, matching count)`` pair one PDS contributes.

    Values must be integer-valued (the ``slim_population`` convention):
    integers keep Paillier folds and plaintext recollection bit-identical,
    which is the whole equality guarantee.
    """
    total = 0
    count = 0
    for _, value in local_contributions(list(records), query):
        as_int = int(value)
        if as_int != value:
            raise QueryError(
                "delta maintenance needs integer-encoded values "
                f"(got {value!r})"
            )
        total += as_int
        count += 1
    return total, count


class DeltaEmitter:
    """Turns one population's data-change events into encrypted deltas.

    Tracks, per PDS, the ``(value, count)`` pair last contributed to the
    subscription. :meth:`refresh` diffs the PDS's current state against it
    and emits ``Enc(new) · Enc(-old)`` — two fresh pool-blinded encryptions
    folded *before* leaving the token, so the SSI sees one
    non-deterministic ciphertext pair per change and nothing about the
    operands. An offline or forgotten PDS contributes ``(0, 0)``; flipping
    online re-contributes, so churn is just more deltas.
    """

    def __init__(
        self,
        public: PaillierPublicKey,
        query: AggregateQuery,
        seed: int = 0,
        pool: BlindingPool | None = None,
    ) -> None:
        if query.group_by is not None:
            raise QueryError(
                "delta maintenance serves scalar aggregates (no GROUP BY)"
            )
        self.public = public
        self.query = query
        self.pool = pool if pool is not None else public.blinding_pool(seed)
        self._contributed: dict[int, tuple[int, int]] = {}
        self._seq: dict[int, int] = {}
        self.emitted = 0

    def _delta_cipher(self, new: int, old: int) -> int:
        """``Enc(new) · Enc(-old)``: the retraction is ``n - old``."""
        cipher = self.public.encrypt(new, pool=self.pool)
        if old:
            # encrypt() reduces mod n, so -old encrypts as n - old: the
            # plaintext negation decrypt_signed undoes at the querier.
            retraction = self.public.encrypt(-old, pool=self.pool)
            cipher = self.public.add(cipher, retraction)
        return cipher

    def refresh(
        self, node, online: bool, timestamp: int
    ) -> EncryptedDelta | None:
        """The delta moving ``node`` to its current contribution, or None.

        ``node`` duck-types :class:`~repro.globalq.protocol.PdsNode`
        (``pds_id`` + ``records``). Returns None when nothing this
        subscription can see changed — the common case under churn of
        non-matching PDSs, and what keeps steady-state traffic
        proportional to *relevant* changes.
        """
        if online:
            new = contribution_of(node.records, self.query)
        else:
            new = (0, 0)
        old = self._contributed.get(node.pds_id, (0, 0))
        if new == old:
            return None
        self._contributed[node.pds_id] = new
        seq = self._seq.get(node.pds_id, 0) + 1
        self._seq[node.pds_id] = seq
        self.emitted += 1
        return EncryptedDelta(
            pds_id=node.pds_id,
            seq=seq,
            timestamp=timestamp,
            value_cipher=self._delta_cipher(new[0], old[0]),
            count_cipher=self._delta_cipher(new[1], old[1]),
        )


class DeltaBatcher:
    """PDS-side coalescing of deltas before they hit the wire.

    A busy PDS can change the same subscription's contribution many times
    within one pane; shipping each change as its own frame makes the SSI
    pay one fold (two ~|n²|-bit modmuls) per change. Additivity says the
    changes compose: ``Enc(d1) · Enc(d2) = Enc(d1 + d2)``, so the batcher
    multiplies successive deltas for the same ``(subscription, PDS)``
    within a pane into one, carrying the *highest* sequence number seen
    (the SSI's replay rule folds each sequence at most once, and skipping
    intermediates is exactly what coalescing means). Coalescing never
    crosses a pane boundary — each pane's product must stay bit-identical
    to the uncoalesced fold, which is only guaranteed when merged deltas
    land in the same pane.

    :meth:`flush` drains the pending map in deterministic insertion order
    as ``(subscription_id, delta)`` pairs ready for
    :func:`repro.net.codec.encode_delta_batch`. Replayed or duplicated
    sequence numbers are dropped at :meth:`add` — folding one into a
    pending product would double-count before the SSI ever saw it.

    Deltas must arrive in per-stream timestamp order (what a monotone
    emitter clock guarantees): then each stream's per-pane max sequence
    numbers are increasing in insertion order, and the SSI's replay rule
    accepts every flushed entry.
    """

    def __init__(self, public_n: int, spec: WindowSpec, start: int = 0) -> None:
        self.n_squared = public_n * public_n
        self.spec = spec
        self.start = start
        self._pending: dict[tuple, EncryptedDelta] = {}
        self._last_seq: dict[tuple, int] = {}
        self.added = 0
        self.coalesced = 0
        self.duplicates = 0
        self.flushed_batches = 0
        self.flushed_deltas = 0

    @property
    def pending(self) -> int:
        return len(self._pending)

    def add(self, subscription_id: int, delta: EncryptedDelta) -> bool:
        """Queue one delta; False iff it replayed a known sequence."""
        stream = (subscription_id, delta.pds_id)
        if delta.seq <= self._last_seq.get(stream, 0):
            self.duplicates += 1
            return False
        self._last_seq[stream] = delta.seq
        pane = (delta.timestamp - self.start) // self.spec.pane_width
        key = (subscription_id, delta.pds_id, pane)
        pending = self._pending.get(key)
        if pending is None:
            self._pending[key] = delta
        else:
            self._pending[key] = EncryptedDelta(
                pds_id=delta.pds_id,
                seq=delta.seq,
                timestamp=max(pending.timestamp, delta.timestamp),
                value_cipher=pending.value_cipher
                * delta.value_cipher
                % self.n_squared,
                count_cipher=pending.count_cipher
                * delta.count_cipher
                % self.n_squared,
            )
            self.coalesced += 1
        self.added += 1
        return True

    def flush(self) -> list[tuple[int, EncryptedDelta]]:
        """Drain pending deltas as batch entries (insertion order)."""
        out = [(key[0], delta) for key, delta in self._pending.items()]
        self._pending.clear()
        if out:
            self.flushed_batches += 1
            self.flushed_deltas += len(out)
        return out


# ---------------------------------------------------------------------------
# SSI side: the fold
# ---------------------------------------------------------------------------
#: Deltas per fold shard. Like :data:`repro.globalq.parallel.DEFAULT_SHARD_SIZE`
#: it is fixed — never derived from the worker count — so shard geometry
#: (and hence per-shard products) cannot depend on how many workers run.
DEFAULT_FOLD_SHARD_SIZE = 256


@dataclass(frozen=True)
class FoldShardTask:
    """One shard of a pane product: plain ints, picklable."""

    shard_index: int
    n_squared: int
    value_ciphers: tuple
    count_ciphers: tuple
    #: Distributed trace context of the submitting span (or None).
    trace: object = None


def fold_shard(task: FoldShardTask):
    """Fold one shard's ciphertext product — the unit both paths run.

    Returns the ``(value_product, count_product)`` pair, wrapped in a
    :class:`~repro.obs.telemetry.TracedResult` when the task's trace
    context asked this worker process to record its execution span.
    """
    with telemetry.remote_recording(
        task.trace, f"worker-{os.getpid()}"
    ) as recording:
        with obs.span(
            "globalq.fold.shard.exec",
            shard=task.shard_index,
            deltas=len(task.value_ciphers),
        ):
            value = CIPHER_IDENTITY
            count = CIPHER_IDENTITY
            for cipher in task.value_ciphers:
                value = value * cipher % task.n_squared
            for cipher in task.count_ciphers:
                count = count * cipher % task.n_squared
            result = (value, count)
    if recording is not None:
        return recording.wrap(result)
    return result


class FoldEngine:
    """Sharded, optionally pooled computation of a pane product.

    Partitions a group of admitted deltas by the **seed-independent key**
    ``pds_id % num_shards`` where ``num_shards`` follows only the group
    size and ``shard_size`` — never the worker count — then folds each
    shard's product (inline, or on a persistent
    :class:`~repro.globalq.parallel.WorkerPool`) and merges the shard
    products in shard order. Because ciphertext multiplication mod ``n²``
    is commutative and associative, the merged product is bit-identical
    to the serial fold at every ``(workers, shard_size)`` point — the
    recollection exactness contract of PR 6, applied to the delta stream.
    """

    def __init__(
        self,
        n_squared: int,
        pool=None,
        shard_size: int = DEFAULT_FOLD_SHARD_SIZE,
    ) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.n_squared = n_squared
        self.pool = pool
        self.shard_size = shard_size
        self.shards_folded = 0

    def partition(self, deltas) -> list[list[EncryptedDelta]]:
        """Shard buckets; geometry depends on group size and shard_size only."""
        num_shards = max(1, -(-len(deltas) // self.shard_size))
        buckets: list[list[EncryptedDelta]] = [[] for _ in range(num_shards)]
        for delta in deltas:
            buckets[delta.pds_id % num_shards].append(delta)
        return buckets

    def product(self, deltas) -> tuple[int, int]:
        """The group's ``(value, count)`` ciphertext product."""
        buckets = self.partition(deltas)
        trace = telemetry.propagated()
        tasks = [
            FoldShardTask(
                shard_index=index,
                n_squared=self.n_squared,
                value_ciphers=tuple(d.value_cipher for d in bucket),
                count_ciphers=tuple(d.count_cipher for d in bucket),
                trace=trace,
            )
            for index, bucket in enumerate(buckets)
        ]
        value = CIPHER_IDENTITY
        count = CIPHER_IDENTITY
        if self.pool is None or len(tasks) == 1:
            partials = [
                (task, fold_shard(task)) for task in tasks
            ]
        else:
            futures = [self.pool.submit(fold_shard, task) for task in tasks]
            partials = [
                (task, future.result())
                for task, future in zip(tasks, futures)
            ]
        for task, partial in partials:
            with obs.span(
                "globalq.fold.shard",
                shard=task.shard_index,
                deltas=len(task.value_ciphers),
            ) as shard_span:
                shard_value, shard_count = telemetry.adopt(
                    partial, shard_span
                )
            value = value * shard_value % self.n_squared
            count = count * shard_count % self.n_squared
            self.shards_folded += 1
        return value, count
class StandingAggregate:
    """The SSI's window state: sealed panes plus a live running fold.

    All arithmetic is ciphertext multiplication mod ``n²`` — the SSI holds
    no key. ``live_value``/``live_count`` fold every pane sealed so far;
    open panes accumulate in-flight deltas until :meth:`advance` crosses
    their boundary. Per-PDS sequence numbers de-duplicate the stream, and a
    delta timestamped before the last boundary is a protocol error (the
    registry's clock is monotone, so one can only arrive through replay or
    reordering across a seal — either way folding it would corrupt the
    already-published window).
    """

    def __init__(self, public_n: int, spec: WindowSpec, start: int = 0) -> None:
        self.n_squared = public_n * public_n
        self.spec = spec
        self.start = start
        self.live_value = CIPHER_IDENTITY
        self.live_count = CIPHER_IDENTITY
        self.advanced_to = start
        self.deltas_folded = 0
        self.duplicates = 0
        self._open: dict[int, list] = {}  # pane index -> [value, count, n]
        self._sealed: deque = deque(maxlen=spec.panes_per_window)
        self._next_boundary = 1
        self._last_seq: dict[int, int] = {}

    # ------------------------------------------------------------------
    def _admit(self, delta: EncryptedDelta) -> int | None:
        """Replay/lateness gate: the delta's pane index, or None if a dup."""
        if delta.timestamp < self.advanced_to:
            raise ProtocolError(
                f"late delta at t={delta.timestamp} (sealed through "
                f"{self.advanced_to})"
            )
        if delta.seq <= self._last_seq.get(delta.pds_id, 0):
            self.duplicates += 1
            return None
        self._last_seq[delta.pds_id] = delta.seq
        return (delta.timestamp - self.start) // self.spec.pane_width

    def _fold_into(self, pane: int, value: int, count: int, n: int) -> None:
        acc = self._open.get(pane)
        if acc is None:
            acc = self._open[pane] = [CIPHER_IDENTITY, CIPHER_IDENTITY, 0]
        acc[0] = acc[0] * value % self.n_squared
        acc[1] = acc[1] * count % self.n_squared
        acc[2] += n
        self.deltas_folded += n

    def fold(self, delta: EncryptedDelta) -> bool:
        """Multiply one delta into its pane; False iff a known duplicate."""
        pane = self._admit(delta)
        if pane is None:
            return False
        self._fold_into(pane, delta.value_cipher, delta.count_cipher, 1)
        return True

    def fold_many(self, deltas, engine: "FoldEngine | None" = None) -> int:
        """Fold a batch of deltas; returns how many were accepted.

        Admission (lateness check, replay rejection, pane assignment) is
        serial — cheap integer work that must see sequence numbers in
        arrival order. The expensive part, the ciphertext product of each
        pane's group, goes through ``engine`` when one is supplied
        (sharded, possibly parallel) or a plain serial product otherwise.
        Both compute the same product bit-exactly, so batch size, shard
        size, and worker count can never change a sealed window.
        """
        deltas = list(deltas)
        # Lateness is checked for the whole batch *before* any sequence
        # number is recorded: fold_many either raises with state untouched
        # or runs to completion — callers can retry or shed a rejected
        # batch without stranding half-admitted deltas.
        for delta in deltas:
            if delta.timestamp < self.advanced_to:
                raise ProtocolError(
                    f"late delta at t={delta.timestamp} (sealed through "
                    f"{self.advanced_to})"
                )
        admitted: dict[int, list[EncryptedDelta]] = {}
        for delta in deltas:
            pane = self._admit(delta)
            if pane is not None:
                admitted.setdefault(pane, []).append(delta)
        accepted = 0
        for pane, group in admitted.items():
            if engine is not None and len(group) > 1:
                value, count = engine.product(group)
            else:
                value = CIPHER_IDENTITY
                count = CIPHER_IDENTITY
                for delta in group:
                    value = value * delta.value_cipher % self.n_squared
                    count = count * delta.count_cipher % self.n_squared
            self._fold_into(pane, value, count, len(group))
            accepted += len(group)
        return accepted

    def current(self) -> tuple[int, int]:
        """The instantaneous ``(value, count)`` fold, open panes included.

        Decrypting this pair must always equal plaintext recollection over
        the current membership — the invariant the stateful tests assert
        after every single event.
        """
        value, count = self.live_value, self.live_count
        for acc in self._open.values():
            value = value * acc[0] % self.n_squared
            count = count * acc[1] % self.n_squared
        return value, count

    def advance(self, now: int) -> list[WindowUpdate]:
        """Seal every pane boundary ``<= now``; one update per boundary."""
        if now < self.advanced_to:
            raise ProtocolError(
                f"clock moved backwards: {now} < {self.advanced_to}"
            )
        updates: list[WindowUpdate] = []
        pane_width = self.spec.pane_width
        while True:
            boundary = self.start + self._next_boundary * pane_width
            if boundary > now:
                break
            sealed = self._open.pop(
                self._next_boundary - 1, [CIPHER_IDENTITY, CIPHER_IDENTITY, 0]
            )
            self.live_value = self.live_value * sealed[0] % self.n_squared
            self.live_count = self.live_count * sealed[1] % self.n_squared
            self._sealed.append(sealed)
            window_value = CIPHER_IDENTITY
            window_count = CIPHER_IDENTITY
            deltas = 0
            for pane in self._sealed:
                window_value = window_value * pane[0] % self.n_squared
                window_count = window_count * pane[1] % self.n_squared
                deltas += pane[2]
            updates.append(
                WindowUpdate(
                    window_start=max(self.start, boundary - self.spec.width),
                    window_end=boundary,
                    index=self._next_boundary,
                    live_value=self.live_value,
                    live_count=self.live_count,
                    window_value=window_value,
                    window_count=window_count,
                    deltas=deltas,
                )
            )
            self.advanced_to = boundary
            self._next_boundary += 1
        return updates


class StandingQuery:
    """One registered standing query: the aggregate plus its window state."""

    def __init__(
        self,
        query: AggregateQuery,
        spec: WindowSpec,
        public_n: int,
        start: int = 0,
    ) -> None:
        if query.group_by is not None:
            raise QueryError(
                "delta maintenance serves scalar aggregates (no GROUP BY)"
            )
        self.query = query
        self.spec = spec
        self.public_n = public_n
        self.state = StandingAggregate(public_n, spec, start=start)

    def fold(self, delta: EncryptedDelta) -> bool:
        return self.state.fold(delta)

    def fold_many(self, deltas, engine: FoldEngine | None = None) -> int:
        return self.state.fold_many(deltas, engine=engine)

    def advance(self, now: int) -> list[WindowUpdate]:
        return self.state.advance(now)

    def current(self) -> tuple[int, int]:
        return self.state.current()


# ---------------------------------------------------------------------------
# Querier side: decryption + the timeseries hook
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LiveWindow:
    """One decrypted :class:`WindowUpdate` at the querier."""

    window_start: int
    window_end: int
    index: int
    #: Plaintext running (sum, count) at the boundary.
    total: int
    count: int
    #: Net (sum, count) change inside the window — negative under forgets.
    window_total: int
    window_count: int
    #: The finalized aggregate (None for SUM/AVG over an empty population).
    value: float | None


class StandingView:
    """The querier's live view: decrypts updates, keeps window history.

    The only key holder in the protocol. Each ingested update is decrypted
    with the signed convention (retractions live in the upper half of
    ``Z_n``) and, when a ``series`` store is attached, appended as a
    ``(window_end, aggregate)`` point — the standing query becomes an
    embedded time series the querier can range-aggregate like any sensor
    log.
    """

    def __init__(
        self,
        private: PaillierPrivateKey,
        query: AggregateQuery,
        series=None,
    ) -> None:
        self.private = private
        self.query = query
        self.series = series
        self.windows: list[LiveWindow] = []

    def _finalize(self, total: int, count: int) -> float | None:
        if self.query.aggregate == "COUNT":
            return float(count)
        if count == 0:
            return None
        if self.query.aggregate == "SUM":
            return float(total)
        return total / count  # AVG

    def ingest(self, update: WindowUpdate) -> LiveWindow:
        total = self.private.decrypt_signed(update.live_value)
        count = self.private.decrypt_signed(update.live_count)
        window = LiveWindow(
            window_start=update.window_start,
            window_end=update.window_end,
            index=update.index,
            total=total,
            count=count,
            window_total=self.private.decrypt_signed(update.window_value),
            window_count=self.private.decrypt_signed(update.window_count),
            value=self._finalize(total, count),
        )
        self.windows.append(window)
        if self.series is not None and window.value is not None:
            self.series.append(window.window_end, window.value)
        return window


# ---------------------------------------------------------------------------
# The differential reference
# ---------------------------------------------------------------------------
def recollect(nodes, query: AggregateQuery) -> tuple[int, int]:
    """Full plaintext recollection: the pair a fresh batch run would fold.

    The ground truth every folded state is compared against — over the
    *online* nodes only, exactly what :meth:`ServicePopulation.snapshot`
    would hand a one-shot execution.
    """
    total = 0
    count = 0
    for node in nodes:
        value, matched = contribution_of(node.records, query)
        total += value
        count += matched
    return total, count


def stamp_version(update: WindowUpdate, version: int) -> WindowUpdate:
    """The update with its publication-time population version filled in."""
    return replace(update, version=version)


def update_from_wire(payload: dict) -> WindowUpdate:
    """Rebuild a :class:`WindowUpdate` from an ``UPDATE`` frame's JSON
    payload (ciphertexts travel hex-encoded in the control plane)."""
    try:
        return WindowUpdate(
            window_start=int(payload["window_start"]),
            window_end=int(payload["window_end"]),
            index=int(payload["index"]),
            live_value=int(payload["live_value"], 16),
            live_count=int(payload["live_count"], 16),
            window_value=int(payload["window_value"], 16),
            window_count=int(payload["window_count"], 16),
            deltas=int(payload["deltas"]),
            version=int(payload.get("version", -1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed window update: {exc}") from exc


__all__ = [
    "CIPHER_IDENTITY",
    "DEFAULT_FOLD_SHARD_SIZE",
    "DeltaBatcher",
    "DeltaEmitter",
    "EncryptedDelta",
    "FoldEngine",
    "FoldShardTask",
    "LiveWindow",
    "StandingAggregate",
    "StandingQuery",
    "StandingView",
    "WindowSpec",
    "WindowUpdate",
    "contribution_of",
    "fold_shard",
    "recollect",
    "stamp_version",
    "update_from_wire",
]
