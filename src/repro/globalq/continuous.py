"""Standing queries: encrypted delta-maintenance for live aggregates.

Every protocol in this package so far answers a query by *recollection*:
the SSI gathers one fresh ciphertext per online PDS, folds, and the querier
decrypts. For a standing query refreshed every few seconds over a million
PDSs that cost model is wrong by orders of magnitude — almost nothing
changed between refreshes. Paillier additivity offers the right one: when a
PDS's contribution moves from ``old`` to ``new`` it pushes a single
encrypted **delta** ``Enc(new) · Enc(-old) = Enc(new - old)`` (the
retraction ``Enc(-old)`` is the plaintext negation ``n - old``, folded
before the ciphertext leaves the token), and the SSI *multiplies* deltas
into a running ciphertext without ever decrypting. Traffic becomes
O(changes), not O(population) — the approach of Taelman et al.'s
privacy-preserving aggregation for decentralized environments (PAPERS.md),
applied to the [TNP14] architecture.

Windowing reuses the ``repro.timeseries`` summary recipe on ciphertexts:
simulated time is cut into **panes** (one pane per slide interval), each
pane accumulates the deltas that arrived during it, and at a boundary the
pane is sealed — a tumbling window is one pane, a sliding window is the
homomorphic product of the last ``width // slide`` sealed panes, exactly
how a page summary folds into a range aggregate. The querier-side
:class:`StandingView` closes the loop by decrypting each
:class:`WindowUpdate` and appending it to a
:class:`~repro.timeseries.series.TimeSeriesStore`.

Exactness is the contract: after any interleaving of insert / update /
``forget()`` / churn, decrypting the folded state equals a full plaintext
recollection over the current membership — bit-exactly, because every
value is an integer and Paillier arithmetic is exact (asserted by the
stateful tests and at every window boundary of bench E27).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace

from repro.crypto.fastexp import BlindingPool
from repro.crypto.paillier import PaillierPrivateKey, PaillierPublicKey
from repro.errors import ProtocolError, QueryError
from repro.globalq.queries import AggregateQuery, local_contributions

#: ``Enc(0)`` with blinding 1 — the multiplicative identity of the fold.
CIPHER_IDENTITY = 1


# ---------------------------------------------------------------------------
# Window algebra
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WindowSpec:
    """Tumbling or sliding window over simulated time.

    ``width`` is the window length; ``slide`` (default ``width``, i.e.
    tumbling) is how often a window closes and must divide ``width``. The
    pane width equals the slide, so every delta lands in exactly one pane
    and a window is the product of ``width // slide`` consecutive panes.
    """

    width: int
    slide: int | None = None

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise QueryError("window width must be positive")
        slide = self.slide
        if slide is not None:
            if slide <= 0:
                raise QueryError("window slide must be positive")
            if slide > self.width:
                raise QueryError("window slide must be <= width")
            if self.width % slide:
                raise QueryError("window slide must divide width")

    @property
    def pane_width(self) -> int:
        return self.slide if self.slide is not None else self.width

    @property
    def panes_per_window(self) -> int:
        return self.width // self.pane_width

    @property
    def tumbling(self) -> bool:
        return self.panes_per_window == 1

    def to_dict(self) -> dict:
        return {"width": self.width, "slide": self.pane_width}

    @classmethod
    def from_dict(cls, data: dict) -> "WindowSpec":
        try:
            slide = data.get("slide")
            return cls(
                width=int(data["width"]),
                slide=None if slide is None else int(slide),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise QueryError(f"malformed window spec: {exc}") from exc


@dataclass(frozen=True)
class EncryptedDelta:
    """One PDS's encrypted contribution change.

    ``value_cipher`` encrypts the signed change of the PDS's value sum,
    ``count_cipher`` the signed change of its matching-record count —
    together they update the (sum, count) pair every SQL aggregate reduces
    to. ``seq`` is the per-(PDS, subscription) sequence number: the SSI
    folds each sequence at most once, so a replayed or duplicated delta
    cannot double-count (the PR 6 replay rule, applied to the delta
    stream).
    """

    pds_id: int
    seq: int
    timestamp: int
    value_cipher: int
    count_cipher: int

    def ciphertext_bytes(self, n_squared: int) -> int:
        """Wire size of the two ciphertexts under modulus ``n²``."""
        return 2 * ((n_squared.bit_length() + 7) // 8)


@dataclass(frozen=True)
class WindowUpdate:
    """What the SSI publishes at one window boundary.

    ``live_*`` is the folded total of *every* delta with
    ``timestamp < window_end`` — decrypting it must equal full recollection
    at the boundary. ``window_*`` is the net change inside
    ``[window_start, window_end)`` (the pane product), which can decrypt
    negative under forgets. All four are ciphertexts: the SSI computed them
    without decrypting anything.
    """

    window_start: int
    window_end: int
    #: 1-based boundary index since the subscription started.
    index: int
    live_value: int
    live_count: int
    window_value: int
    window_count: int
    #: Deltas folded into the window's panes.
    deltas: int
    #: Population version at publication (stamped by the registry).
    version: int = -1


# ---------------------------------------------------------------------------
# PDS side: the delta source
# ---------------------------------------------------------------------------
def contribution_of(records, query: AggregateQuery) -> tuple[int, int]:
    """The ``(value sum, matching count)`` pair one PDS contributes.

    Values must be integer-valued (the ``slim_population`` convention):
    integers keep Paillier folds and plaintext recollection bit-identical,
    which is the whole equality guarantee.
    """
    total = 0
    count = 0
    for _, value in local_contributions(list(records), query):
        as_int = int(value)
        if as_int != value:
            raise QueryError(
                "delta maintenance needs integer-encoded values "
                f"(got {value!r})"
            )
        total += as_int
        count += 1
    return total, count


class DeltaEmitter:
    """Turns one population's data-change events into encrypted deltas.

    Tracks, per PDS, the ``(value, count)`` pair last contributed to the
    subscription. :meth:`refresh` diffs the PDS's current state against it
    and emits ``Enc(new) · Enc(-old)`` — two fresh pool-blinded encryptions
    folded *before* leaving the token, so the SSI sees one
    non-deterministic ciphertext pair per change and nothing about the
    operands. An offline or forgotten PDS contributes ``(0, 0)``; flipping
    online re-contributes, so churn is just more deltas.
    """

    def __init__(
        self,
        public: PaillierPublicKey,
        query: AggregateQuery,
        seed: int = 0,
        pool: BlindingPool | None = None,
    ) -> None:
        if query.group_by is not None:
            raise QueryError(
                "delta maintenance serves scalar aggregates (no GROUP BY)"
            )
        self.public = public
        self.query = query
        self.pool = pool if pool is not None else public.blinding_pool(seed)
        self._contributed: dict[int, tuple[int, int]] = {}
        self._seq: dict[int, int] = {}
        self.emitted = 0

    def _delta_cipher(self, new: int, old: int) -> int:
        """``Enc(new) · Enc(-old)``: the retraction is ``n - old``."""
        cipher = self.public.encrypt(new, pool=self.pool)
        if old:
            # encrypt() reduces mod n, so -old encrypts as n - old: the
            # plaintext negation decrypt_signed undoes at the querier.
            retraction = self.public.encrypt(-old, pool=self.pool)
            cipher = self.public.add(cipher, retraction)
        return cipher

    def refresh(
        self, node, online: bool, timestamp: int
    ) -> EncryptedDelta | None:
        """The delta moving ``node`` to its current contribution, or None.

        ``node`` duck-types :class:`~repro.globalq.protocol.PdsNode`
        (``pds_id`` + ``records``). Returns None when nothing this
        subscription can see changed — the common case under churn of
        non-matching PDSs, and what keeps steady-state traffic
        proportional to *relevant* changes.
        """
        if online:
            new = contribution_of(node.records, self.query)
        else:
            new = (0, 0)
        old = self._contributed.get(node.pds_id, (0, 0))
        if new == old:
            return None
        self._contributed[node.pds_id] = new
        seq = self._seq.get(node.pds_id, 0) + 1
        self._seq[node.pds_id] = seq
        self.emitted += 1
        return EncryptedDelta(
            pds_id=node.pds_id,
            seq=seq,
            timestamp=timestamp,
            value_cipher=self._delta_cipher(new[0], old[0]),
            count_cipher=self._delta_cipher(new[1], old[1]),
        )


# ---------------------------------------------------------------------------
# SSI side: the fold
# ---------------------------------------------------------------------------
class StandingAggregate:
    """The SSI's window state: sealed panes plus a live running fold.

    All arithmetic is ciphertext multiplication mod ``n²`` — the SSI holds
    no key. ``live_value``/``live_count`` fold every pane sealed so far;
    open panes accumulate in-flight deltas until :meth:`advance` crosses
    their boundary. Per-PDS sequence numbers de-duplicate the stream, and a
    delta timestamped before the last boundary is a protocol error (the
    registry's clock is monotone, so one can only arrive through replay or
    reordering across a seal — either way folding it would corrupt the
    already-published window).
    """

    def __init__(self, public_n: int, spec: WindowSpec, start: int = 0) -> None:
        self.n_squared = public_n * public_n
        self.spec = spec
        self.start = start
        self.live_value = CIPHER_IDENTITY
        self.live_count = CIPHER_IDENTITY
        self.advanced_to = start
        self.deltas_folded = 0
        self.duplicates = 0
        self._open: dict[int, list] = {}  # pane index -> [value, count, n]
        self._sealed: deque = deque(maxlen=spec.panes_per_window)
        self._next_boundary = 1
        self._last_seq: dict[int, int] = {}

    # ------------------------------------------------------------------
    def fold(self, delta: EncryptedDelta) -> bool:
        """Multiply one delta into its pane; False iff a known duplicate."""
        if delta.timestamp < self.advanced_to:
            raise ProtocolError(
                f"late delta at t={delta.timestamp} (sealed through "
                f"{self.advanced_to})"
            )
        if delta.seq <= self._last_seq.get(delta.pds_id, 0):
            self.duplicates += 1
            return False
        self._last_seq[delta.pds_id] = delta.seq
        pane = (delta.timestamp - self.start) // self.spec.pane_width
        acc = self._open.get(pane)
        if acc is None:
            acc = self._open[pane] = [CIPHER_IDENTITY, CIPHER_IDENTITY, 0]
        acc[0] = acc[0] * delta.value_cipher % self.n_squared
        acc[1] = acc[1] * delta.count_cipher % self.n_squared
        acc[2] += 1
        self.deltas_folded += 1
        return True

    def current(self) -> tuple[int, int]:
        """The instantaneous ``(value, count)`` fold, open panes included.

        Decrypting this pair must always equal plaintext recollection over
        the current membership — the invariant the stateful tests assert
        after every single event.
        """
        value, count = self.live_value, self.live_count
        for acc in self._open.values():
            value = value * acc[0] % self.n_squared
            count = count * acc[1] % self.n_squared
        return value, count

    def advance(self, now: int) -> list[WindowUpdate]:
        """Seal every pane boundary ``<= now``; one update per boundary."""
        if now < self.advanced_to:
            raise ProtocolError(
                f"clock moved backwards: {now} < {self.advanced_to}"
            )
        updates: list[WindowUpdate] = []
        pane_width = self.spec.pane_width
        while True:
            boundary = self.start + self._next_boundary * pane_width
            if boundary > now:
                break
            sealed = self._open.pop(
                self._next_boundary - 1, [CIPHER_IDENTITY, CIPHER_IDENTITY, 0]
            )
            self.live_value = self.live_value * sealed[0] % self.n_squared
            self.live_count = self.live_count * sealed[1] % self.n_squared
            self._sealed.append(sealed)
            window_value = CIPHER_IDENTITY
            window_count = CIPHER_IDENTITY
            deltas = 0
            for pane in self._sealed:
                window_value = window_value * pane[0] % self.n_squared
                window_count = window_count * pane[1] % self.n_squared
                deltas += pane[2]
            updates.append(
                WindowUpdate(
                    window_start=max(self.start, boundary - self.spec.width),
                    window_end=boundary,
                    index=self._next_boundary,
                    live_value=self.live_value,
                    live_count=self.live_count,
                    window_value=window_value,
                    window_count=window_count,
                    deltas=deltas,
                )
            )
            self.advanced_to = boundary
            self._next_boundary += 1
        return updates


class StandingQuery:
    """One registered standing query: the aggregate plus its window state."""

    def __init__(
        self,
        query: AggregateQuery,
        spec: WindowSpec,
        public_n: int,
        start: int = 0,
    ) -> None:
        if query.group_by is not None:
            raise QueryError(
                "delta maintenance serves scalar aggregates (no GROUP BY)"
            )
        self.query = query
        self.spec = spec
        self.public_n = public_n
        self.state = StandingAggregate(public_n, spec, start=start)

    def fold(self, delta: EncryptedDelta) -> bool:
        return self.state.fold(delta)

    def advance(self, now: int) -> list[WindowUpdate]:
        return self.state.advance(now)

    def current(self) -> tuple[int, int]:
        return self.state.current()


# ---------------------------------------------------------------------------
# Querier side: decryption + the timeseries hook
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class LiveWindow:
    """One decrypted :class:`WindowUpdate` at the querier."""

    window_start: int
    window_end: int
    index: int
    #: Plaintext running (sum, count) at the boundary.
    total: int
    count: int
    #: Net (sum, count) change inside the window — negative under forgets.
    window_total: int
    window_count: int
    #: The finalized aggregate (None for SUM/AVG over an empty population).
    value: float | None


class StandingView:
    """The querier's live view: decrypts updates, keeps window history.

    The only key holder in the protocol. Each ingested update is decrypted
    with the signed convention (retractions live in the upper half of
    ``Z_n``) and, when a ``series`` store is attached, appended as a
    ``(window_end, aggregate)`` point — the standing query becomes an
    embedded time series the querier can range-aggregate like any sensor
    log.
    """

    def __init__(
        self,
        private: PaillierPrivateKey,
        query: AggregateQuery,
        series=None,
    ) -> None:
        self.private = private
        self.query = query
        self.series = series
        self.windows: list[LiveWindow] = []

    def _finalize(self, total: int, count: int) -> float | None:
        if self.query.aggregate == "COUNT":
            return float(count)
        if count == 0:
            return None
        if self.query.aggregate == "SUM":
            return float(total)
        return total / count  # AVG

    def ingest(self, update: WindowUpdate) -> LiveWindow:
        total = self.private.decrypt_signed(update.live_value)
        count = self.private.decrypt_signed(update.live_count)
        window = LiveWindow(
            window_start=update.window_start,
            window_end=update.window_end,
            index=update.index,
            total=total,
            count=count,
            window_total=self.private.decrypt_signed(update.window_value),
            window_count=self.private.decrypt_signed(update.window_count),
            value=self._finalize(total, count),
        )
        self.windows.append(window)
        if self.series is not None and window.value is not None:
            self.series.append(window.window_end, window.value)
        return window


# ---------------------------------------------------------------------------
# The differential reference
# ---------------------------------------------------------------------------
def recollect(nodes, query: AggregateQuery) -> tuple[int, int]:
    """Full plaintext recollection: the pair a fresh batch run would fold.

    The ground truth every folded state is compared against — over the
    *online* nodes only, exactly what :meth:`ServicePopulation.snapshot`
    would hand a one-shot execution.
    """
    total = 0
    count = 0
    for node in nodes:
        value, matched = contribution_of(node.records, query)
        total += value
        count += matched
    return total, count


def stamp_version(update: WindowUpdate, version: int) -> WindowUpdate:
    """The update with its publication-time population version filled in."""
    return replace(update, version=version)


def update_from_wire(payload: dict) -> WindowUpdate:
    """Rebuild a :class:`WindowUpdate` from an ``UPDATE`` frame's JSON
    payload (ciphertexts travel hex-encoded in the control plane)."""
    try:
        return WindowUpdate(
            window_start=int(payload["window_start"]),
            window_end=int(payload["window_end"]),
            index=int(payload["index"]),
            live_value=int(payload["live_value"], 16),
            live_count=int(payload["live_count"], 16),
            window_value=int(payload["window_value"], 16),
            window_count=int(payload["window_count"], 16),
            deltas=int(payload["deltas"]),
            version=int(payload.get("version", -1)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed window update: {exc}") from exc


__all__ = [
    "CIPHER_IDENTITY",
    "DeltaEmitter",
    "EncryptedDelta",
    "LiveWindow",
    "StandingAggregate",
    "StandingQuery",
    "StandingView",
    "WindowSpec",
    "WindowUpdate",
    "contribution_of",
    "recollect",
    "stamp_version",
    "update_from_wire",
]
