"""Wire formats of the [TNP14]-style global protocols.

A PDS contribution travels as an :class:`EncryptedContribution`:

* ``blob`` — the authenticated ciphertext of the tuple payload (always
  non-deterministic, so the payload itself never leaks);
* ``group_tag`` — optional *deterministic* encryption of the group value
  (noise-based family: lets the SSI partition by group, leaks frequencies);
* ``bucket_id`` — optional cleartext histogram bucket (histogram family:
  leaks only the coarse bucket).

The payload inside ``blob`` is ``pds_id | sequence | flags | group | value``,
packed by :func:`pack_payload`; the ``FAKE`` flag marks noise tuples that
trusted aggregators silently drop after decryption.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

_HEADER = struct.Struct("<IIBd")  # pds_id, sequence, flags, value

FLAG_FAKE = 0x01


@dataclass(frozen=True)
class EncryptedContribution:
    """One contribution as the SSI sees it."""

    blob: bytes
    group_tag: bytes | None = None
    bucket_id: int | None = None

    def wire_size(self) -> int:
        size = len(self.blob)
        if self.group_tag is not None:
            size += len(self.group_tag)
        if self.bucket_id is not None:
            size += 4
        return size


@dataclass(frozen=True)
class Payload:
    """Decrypted content of a contribution (inside a token only)."""

    pds_id: int
    sequence: int
    group: str
    value: float
    fake: bool = False


def pack_payload(payload: Payload) -> bytes:
    group_bytes = payload.group.encode("utf-8")
    flags = FLAG_FAKE if payload.fake else 0
    return (
        _HEADER.pack(payload.pds_id, payload.sequence, flags, payload.value)
        + group_bytes
    )


def unpack_payload(data: bytes) -> Payload:
    if len(data) < _HEADER.size:
        raise ProtocolError("contribution payload too short")
    pds_id, sequence, flags, value = _HEADER.unpack_from(data, 0)
    try:
        group = data[_HEADER.size :].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError("contribution group is not valid UTF-8") from exc
    return Payload(
        pds_id=pds_id,
        sequence=sequence,
        group=group,
        value=value,
        fake=bool(flags & FLAG_FAKE),
    )
