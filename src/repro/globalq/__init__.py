"""Secure global computation over the asymmetric PDS architecture (Part III).

The [TNP14] protocol stack: citizens' tokens answer global SQL aggregates
through an untrusted Supporting Server Infrastructure. Three protocol
families trade leak against cost (secure-aggregation, noise-based,
histogram-based), an honest-but-curious SSI mounts frequency analysis, and a
weakly malicious one is caught by authentication, replay detection and
participation audits.
"""

from repro.globalq.attacks import AttackResult, frequency_analysis, histogram_flatness
from repro.globalq.continuous import (
    DeltaEmitter,
    EncryptedDelta,
    LiveWindow,
    StandingAggregate,
    StandingQuery,
    StandingView,
    WindowSpec,
    WindowUpdate,
)
from repro.globalq.graphq import (
    DistributedGraph,
    GraphQueryReport,
    centralized_reachability,
    private_reachability,
)
from repro.globalq.histogram import EquiDepthBucketizer, HistogramProtocol
from repro.globalq.messages import (
    EncryptedContribution,
    Payload,
    pack_payload,
    unpack_payload,
)
from repro.globalq.parallel import (
    DEFAULT_SHARD_SIZE,
    ShardedCollector,
    collect_encrypted_sum,
    shard_seed,
    shard_slices,
)
from repro.globalq.noise import (
    COMPLEMENTARY_NOISE,
    NO_NOISE,
    WHITE_NOISE,
    NoisePlan,
    NoiseProtocol,
    plan_fakes,
)
from repro.globalq.protocol import (
    AggregationOutcome,
    PdsNode,
    ProtocolReport,
    TokenFleet,
    TrustedAggregator,
)
from repro.globalq.queries import (
    GLOBAL_GROUP,
    Accumulator,
    AggregateQuery,
    local_contributions,
    plaintext_answer,
    record_matches,
)
from repro.globalq.secureagg import SecureAggregationProtocol
from repro.globalq.ssi import (
    HONEST,
    SsiBehavior,
    SupportingServerInfrastructure,
)
from repro.globalq.verification import (
    AuditResult,
    detection_probability,
    participating_pds_ids,
    participation_audit,
)

# The asyncio driver is resolved lazily (PEP 562): async_protocol imports
# repro.net.bus, while repro.net.metrics imports repro.smc (whose package
# import reaches back here through secure_sum → globalq.parallel). Importing
# it eagerly would close that loop into a genuine cycle; deferring it keeps
# `from repro.globalq import AsyncGlobalQuery` working from any entry point.
_ASYNC_EXPORTS = (
    "AsyncGlobalQuery",
    "FAMILIES",
    "HISTOGRAM_BASED",
    "NOISE_BASED",
    "SECURE_AGGREGATION",
)


def __getattr__(name: str):
    if name in _ASYNC_EXPORTS:
        from repro.globalq import async_protocol

        return getattr(async_protocol, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "COMPLEMENTARY_NOISE",
    "DEFAULT_SHARD_SIZE",
    "FAMILIES",
    "GLOBAL_GROUP",
    "HISTOGRAM_BASED",
    "HONEST",
    "NOISE_BASED",
    "NO_NOISE",
    "SECURE_AGGREGATION",
    "WHITE_NOISE",
    "Accumulator",
    "AsyncGlobalQuery",
    "AggregateQuery",
    "AggregationOutcome",
    "AttackResult",
    "AuditResult",
    "DeltaEmitter",
    "DistributedGraph",
    "EncryptedContribution",
    "EncryptedDelta",
    "GraphQueryReport",
    "EquiDepthBucketizer",
    "LiveWindow",
    "StandingAggregate",
    "StandingQuery",
    "StandingView",
    "WindowSpec",
    "WindowUpdate",
    "HistogramProtocol",
    "NoisePlan",
    "NoiseProtocol",
    "Payload",
    "PdsNode",
    "ProtocolReport",
    "SecureAggregationProtocol",
    "ShardedCollector",
    "SsiBehavior",
    "SupportingServerInfrastructure",
    "TokenFleet",
    "TrustedAggregator",
    "centralized_reachability",
    "collect_encrypted_sum",
    "detection_probability",
    "frequency_analysis",
    "histogram_flatness",
    "local_contributions",
    "pack_payload",
    "participating_pds_ids",
    "participation_audit",
    "plaintext_answer",
    "plan_fakes",
    "private_reachability",
    "record_matches",
    "shard_seed",
    "shard_slices",
    "unpack_payload",
]
