"""Shared machinery of the [TNP14] protocol families.

All three families follow the same three-phase skeleton the tutorial draws:

1. **Collection** — each PDS evaluates the WHERE locally and pushes
   encrypted contributions to the SSI;
2. **Partitioning** — the SSI splits the ciphertext bag into partitions
   (randomly, by deterministic tag, or by histogram bucket — the choice *is*
   the protocol family);
3. **Aggregation** — connected tokens (any citizen's token can serve) each
   decrypt one partition inside their secure perimeter, drop fakes, verify
   authenticity, partially aggregate, and the querier's token merges the
   partials into the final answer.

This module provides the fleet key material, the PDS node, the trusted
aggregator and the report type; the family modules compose them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.symmetric import DeterministicCipher, NondeterministicCipher
from repro.errors import IntegrityError
from repro.globalq.messages import (
    EncryptedContribution,
    Payload,
    pack_payload,
    unpack_payload,
)
from repro.globalq.queries import Accumulator, AggregateQuery, local_contributions
from repro.smc.parties import Channel
from repro.workloads.people import PersonRecord


class TokenFleet:
    """Key material shared by every genuine token of the population.

    The tutorial's trust model: tokens are mutually trusted, certified
    hardware, so they can share symmetric keys that the SSI never sees.
    """

    def __init__(self, seed: int = 0) -> None:
        rng = random.Random(seed)
        master = rng.getrandbits(256).to_bytes(32, "little")
        #: Key-derivation seed: a fleet rebuilt from the same seed (e.g.
        #: inside a collection worker process) holds identical keys.
        self.seed = seed
        self._payload_key = master + b"payload"
        self._group_key = master + b"group"
        self.deterministic = DeterministicCipher(self._group_key)
        self._rng = rng

    def payload_cipher(self, seed: int | None = None) -> NondeterministicCipher:
        """A non-deterministic cipher bound to the fleet payload key.

        ``seed`` pins the nonce stream (sharded collection derives one seed
        per PDS so results do not depend on worker scheduling); when absent
        the fleet's own rng supplies it, as before.
        """
        if seed is None:
            seed = self._rng.getrandbits(64)
        return NondeterministicCipher(
            self._payload_key, rng=random.Random(seed)
        )


@dataclass
class PdsNode:
    """One citizen's PDS as seen by the global layer."""

    pds_id: int
    records: list[PersonRecord]

    def contributions(
        self,
        query: AggregateQuery,
        fleet: TokenFleet,
        with_group_tag: bool = False,
        bucketizer=None,
        fakes: list[tuple[str, float]] | None = None,
        cipher_seed: int | None = None,
    ) -> list[EncryptedContribution]:
        """Encrypt this PDS's (filtered) tuples, plus any planned fakes."""
        cipher = fleet.payload_cipher(cipher_seed)
        out: list[EncryptedContribution] = []
        sequence = 0
        real = local_contributions(self.records, query)
        for group, value in real:
            out.append(
                self._encrypt(
                    cipher, fleet, group, value, sequence, False,
                    with_group_tag, bucketizer,
                )
            )
            sequence += 1
        for group, value in fakes or []:
            out.append(
                self._encrypt(
                    cipher, fleet, group, value, sequence, True,
                    with_group_tag, bucketizer,
                )
            )
            sequence += 1
        return out

    def _encrypt(
        self, cipher, fleet, group, value, sequence, fake,
        with_group_tag, bucketizer,
    ) -> EncryptedContribution:
        payload = Payload(
            pds_id=self.pds_id,
            sequence=sequence,
            group=group,
            value=value,
            fake=fake,
        )
        return EncryptedContribution(
            blob=cipher.encrypt(pack_payload(payload)),
            group_tag=(
                fleet.deterministic.encrypt(group.encode("utf-8"))
                if with_group_tag
                else None
            ),
            bucket_id=bucketizer(group) if bucketizer is not None else None,
        )


@dataclass
class AggregationOutcome:
    """What one trusted aggregator produced from one partition."""

    accumulator: Accumulator
    real_tuples: int
    fake_tuples: int
    integrity_failures: int
    seen_pds_sequences: set


class TrustedAggregator:
    """A connected token decrypting and folding one partition."""

    def __init__(self, fleet: TokenFleet) -> None:
        self.fleet = fleet
        self._cipher = fleet.payload_cipher()

    def aggregate(
        self, partition: list[EncryptedContribution]
    ) -> AggregationOutcome:
        accumulator = Accumulator()
        real = fakes = failures = 0
        seen: set[tuple[int, int]] = set()
        for contribution in partition:
            try:
                payload = unpack_payload(self._cipher.decrypt(contribution.blob))
            except IntegrityError:
                failures += 1  # forged or corrupted: detected, discarded
                continue
            identity = (payload.pds_id, payload.sequence)
            if identity in seen:
                continue  # replay inside this partition: skip silently
            seen.add(identity)
            if payload.fake:
                fakes += 1
                continue
            real += 1
            accumulator.add(payload.group, payload.value)
        return AggregationOutcome(
            accumulator=accumulator,
            real_tuples=real,
            fake_tuples=fakes,
            integrity_failures=failures,
            seen_pds_sequences=seen,
        )


@dataclass
class ProtocolReport:
    """Result and full cost/leak profile of one protocol run."""

    result: dict[str, float]
    protocol: str
    num_pds: int
    tuples_sent: int
    fake_tuples_sent: int
    token_decryptions: int
    token_invocations: int
    comm_bytes: int
    comm_messages: int
    integrity_failures: int
    duplicates_detected: int = 0
    aggregator_retries: int = 0
    ssi_tag_histogram: dict = field(default_factory=dict)
    ssi_bucket_histogram: dict = field(default_factory=dict)
    #: Filled by the asynchronous driver: the run's NetMetrics (message
    #: counts, drops, in-flight and per-phase latency). None on sync runs.
    net_metrics: object | None = None

    @property
    def cheating_detected(self) -> bool:
        """Whether the covert adversary was caught (forgery or replay)."""
        return self.integrity_failures > 0 or self.duplicates_detected > 0


def merge_outcomes(
    outcomes: list[AggregationOutcome],
    query: AggregateQuery,
) -> tuple[dict[str, float], int, int]:
    """Merge partial aggregates without any transport accounting.

    Cross-partition ``(pds_id, sequence)`` collisions flag a replaying SSI —
    the covert-adversary countermeasure is *detection*, which is why the
    report carries ``duplicates_detected`` rather than a corrected result.
    Returns ``(result, integrity_failures, duplicates_detected)``. Shared by
    the synchronous drivers (via :func:`finalize_partials`, which adds
    channel accounting) and :mod:`repro.globalq.async_protocol` (whose
    partials already crossed the simulated network).
    """
    merged = Accumulator()
    failures = 0
    seen: set[tuple[int, int]] = set()
    duplicates = 0
    for outcome in outcomes:
        failures += outcome.integrity_failures
        overlap = seen & outcome.seen_pds_sequences
        duplicates += len(overlap)
        seen |= outcome.seen_pds_sequences
        merged.merge(outcome.accumulator)
    return merged.finalize(query), failures, duplicates


def finalize_partials(
    outcomes: list[AggregationOutcome],
    query: AggregateQuery,
    channel: Channel,
) -> tuple[dict[str, float], int, int]:
    """Querier-token merge of the partial aggregates (synchronous path)."""
    for index, outcome in enumerate(outcomes):
        channel.send(
            f"aggregator-{index}",
            "querier",
            outcome.accumulator.serialized_size(),
        )
    return merge_outcomes(outcomes, query)
