"""Asynchronous [TNP14] drivers over the :mod:`repro.net` runtime.

The synchronous family modules (:mod:`repro.globalq.secureagg`,
:mod:`repro.globalq.noise`, :mod:`repro.globalq.histogram`) execute the
three protocol phases as in-process calls. :class:`AsyncGlobalQuery` runs
the *same* three phases as concurrent actors on a simulated network:

1. **Collection** — every PDS node is its own task under churn; each
   contribution is a ``CONTRIB`` frame retransmitted with exponential
   backoff until the SSI ACKs it. The SSI deduplicates retransmissions by
   ``(sender, sequence)``, so the collected bag is exactly the synchronous
   one no matter how lossy the links are.
2. **Partitioning** — unchanged SSI-side logic (the family *is* the
   partitioning rule), reusing
   :class:`~repro.globalq.ssi.SupportingServerInfrastructure` so covert
   SSI behaviours and observation recording carry over.
3. **Aggregation** — a pool of connected tokens concurrently ``CLAIM``
   partitions from the SSI; a token that churns away mid-partition is timed
   out and its partition reassigned; partial aggregates travel to the
   querier as ``PARTIAL`` frames (acked, deduplicated by partition id).

Because collection is exactly-once and aggregation is deterministic per
partition, the final answer equals the synchronous driver's answer on the
same seeds — under message loss, node churn, and token failures. That
equivalence is the subsystem's correctness anchor
(``tests/test_net_protocol.py``).
"""

from __future__ import annotations

import asyncio
import math
import random
from dataclasses import dataclass, field

from repro import obs
from repro.errors import NetTimeout, ProtocolError, RetriesExhausted
from repro.globalq.histogram import EquiDepthBucketizer
from repro.globalq.messages import EncryptedContribution
from repro.globalq.noise import NoisePlan, plan_fakes
from repro.globalq.protocol import (
    AggregationOutcome,
    PdsNode,
    ProtocolReport,
    TokenFleet,
    TrustedAggregator,
    merge_outcomes,
)
from repro.globalq.queries import AggregateQuery, local_contributions
from repro.globalq.ssi import (
    HONEST,
    SsiBehavior,
    SupportingServerInfrastructure,
)
from repro.net.bus import LinkProfile, MessageBus
from repro.net.codec import (
    KIND_ACK,
    KIND_ASSIGN,
    KIND_CLAIM,
    KIND_CONTRIB,
    KIND_DONE,
    KIND_FIN,
    KIND_PARTIAL,
    KIND_PLAN,
    KIND_WAIT,
    Frame,
    decode_contribution,
    decode_outcome,
    decode_partition,
    encode_contribution,
    encode_outcome,
    encode_partition,
    pack_u32,
    unpack_u32,
)
from repro.net.retry import RetryPolicy, with_retries
from repro.net.runtime import ChurnModel, NodeRuntime

SECURE_AGGREGATION = "secure-aggregation"
NOISE_BASED = "noise-based"
HISTOGRAM_BASED = "histogram-based"
FAMILIES = (SECURE_AGGREGATION, NOISE_BASED, HISTOGRAM_BASED)

#: Sequence number reserved for the SSI -> querier PLAN exchange.
_PLAN_SEQ = 0xFFFFFFFF


async def _cancel_all(tasks: list[asyncio.Task]) -> None:
    """Cancel tasks and wait them out, re-cancelling if a cancel is eaten
    by a timeout race (belt and braces on top of Endpoint.recv's own
    cancellation-safe timeout handling)."""
    for task in tasks:
        task.cancel()
    for _ in range(10):
        done, pending = await asyncio.wait(tasks, timeout=0.5)
        if not pending:
            return
        for task in pending:
            task.cancel()
    raise RuntimeError(f"{len(pending)} protocol tasks refused cancellation")


@dataclass
class _TokenStats:
    """Counters shared by the token-worker tasks of one run."""

    decryptions: int = 0
    invocations: int = 0
    walkaways: int = 0  # tokens that disconnected mid-partition


class _SsiActor:
    """The untrusted-but-available side: collect, assign, reap, finish."""

    def __init__(
        self,
        core: SupportingServerInfrastructure,
        endpoint,
        assign_timeout: float,
    ) -> None:
        self.core = core
        self.endpoint = endpoint
        self.assign_timeout = assign_timeout
        self.seen: set[tuple[str, int]] = set()
        self.partitions: dict[int, list[EncryptedContribution]] | None = None
        self.pending: list[int] = []
        self.assigned: dict[int, float] = {}
        self.completed: set[int] = set()
        self.reassignments = 0
        self._plan_acked = False
        self._plan_resend_at = 0.0

    def open_aggregation(
        self, partitions: dict[int, list[EncryptedContribution]]
    ) -> None:
        self.partitions = partitions
        self.pending = sorted(partitions)

    def _reap(self, now: float) -> None:
        """Reassign partitions whose token never finished (churned away)."""
        overdue = [
            pid for pid, deadline in self.assigned.items() if deadline <= now
        ]
        for pid in overdue:
            del self.assigned[pid]
            if pid not in self.completed:
                self.pending.append(pid)
                self.reassignments += 1

    async def serve(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            now = loop.time()
            self._reap(now)
            if (
                self.partitions is not None
                and not self._plan_acked
                and now >= self._plan_resend_at
            ):
                await self.endpoint.send(
                    "querier",
                    Frame(
                        KIND_PLAN, self.endpoint.name, _PLAN_SEQ,
                        pack_u32(len(self.partitions)),
                    ),
                )
                self._plan_resend_at = loop.time() + 0.05
            try:
                frame = await self.endpoint.recv(timeout=0.02)
            except NetTimeout:
                continue  # idle tick: loop back for reap / plan resend
            except ProtocolError:
                continue  # garbage frame: drop it
            # Drain the burst already queued through the non-blocking fast
            # path — with thousands of nodes uploading at once, one frame
            # per timer tick cannot keep up with the retransmission storm.
            drained = 0
            while frame is not None and drained < 1024:
                await self._handle(frame)
                drained += 1
                try:
                    frame = self.endpoint.try_recv()
                except ProtocolError:
                    frame = None  # garbage frame ends this drain round

    async def _handle(self, frame: Frame) -> None:
        if frame.kind == KIND_CONTRIB:
            key = (frame.sender, frame.seq)
            if key not in self.seen:
                self.seen.add(key)
                # The behaviour knobs (drop/duplicate/forge) apply here,
                # exactly as in the synchronous collection phase.
                self.core.collect([decode_contribution(frame.payload)])
            # Always ACK — a weakly malicious SSI acknowledges what it
            # drops, precisely so the sender will not retry.
            await self.endpoint.send(
                frame.sender,
                Frame(KIND_ACK, self.endpoint.name, frame.seq),
            )
        elif frame.kind == KIND_ACK and frame.seq == _PLAN_SEQ:
            self._plan_acked = True
        elif frame.kind == KIND_CLAIM:
            await self._handle_claim(frame)
        elif frame.kind == KIND_DONE:
            pid = unpack_u32(frame.payload)
            self.completed.add(pid)
            self.assigned.pop(pid, None)
            if pid in self.pending:
                self.pending.remove(pid)

    async def _handle_claim(self, frame: Frame) -> None:
        if self.partitions is None:
            reply = Frame(KIND_WAIT, self.endpoint.name, frame.seq)
        elif self.pending:
            pid = self.pending.pop(0)
            loop = asyncio.get_running_loop()
            self.assigned[pid] = loop.time() + self.assign_timeout
            reply = Frame(
                KIND_ASSIGN, self.endpoint.name, frame.seq,
                encode_partition(pid, self.partitions[pid]),
            )
        elif len(self.completed) >= len(self.partitions):
            reply = Frame(KIND_FIN, self.endpoint.name, frame.seq)
        else:
            reply = Frame(KIND_WAIT, self.endpoint.name, frame.seq)
        await self.endpoint.send(frame.sender, reply)


class _QuerierActor:
    """The querying citizen's token: collects deduplicated partials."""

    def __init__(self, endpoint) -> None:
        self.endpoint = endpoint
        self.expected: int | None = None
        self.outcomes: dict[int, AggregationOutcome] = {}
        self.done = asyncio.Event()

    async def serve(self) -> None:
        while True:
            try:
                frame = await self.endpoint.recv(timeout=0.05)
            except (NetTimeout, ProtocolError):
                continue
            await self._handle(frame)
            while True:
                try:
                    frame = self.endpoint.try_recv()
                except ProtocolError:
                    break
                if frame is None:
                    break
                await self._handle(frame)

    async def _handle(self, frame: Frame) -> None:
        if frame.kind == KIND_PLAN:
            self.expected = unpack_u32(frame.payload)
            await self.endpoint.send(
                frame.sender,
                Frame(KIND_ACK, self.endpoint.name, _PLAN_SEQ),
            )
        elif frame.kind == KIND_PARTIAL:
            pid, outcome = decode_outcome(frame.payload)
            await self.endpoint.send(
                frame.sender,
                Frame(KIND_ACK, self.endpoint.name, frame.seq),
            )
            if pid not in self.outcomes:
                self.outcomes[pid] = outcome
                # Tell the SSI to stop reassigning this partition.
                # Fire-and-forget: if lost, the reaper merely hands the
                # partition out again and the duplicate is ignored here.
                await self.endpoint.send(
                    "ssi",
                    Frame(KIND_DONE, self.endpoint.name, pid, pack_u32(pid)),
                )
        if (
            self.expected is not None
            and len(self.outcomes) >= self.expected
        ):
            self.done.set()


@dataclass
class AsyncGlobalQuery:
    """Asynchronous driver for one [TNP14] protocol family.

    Produces the same :class:`~repro.globalq.protocol.ProtocolReport` as the
    synchronous drivers, with ``comm_*`` read off the network metrics and
    ``report.net_metrics`` holding the full
    :class:`~repro.net.metrics.NetMetrics`.
    """

    family: str
    fleet: TokenFleet
    noise: NoisePlan | None = None
    bucketizer: EquiDepthBucketizer | None = None
    partition_size: int | None = None
    ssi_behavior: SsiBehavior = HONEST
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    num_tokens: int = 8
    token_failure_rate: float = 0.0
    churn: ChurnModel | None = None
    link: LinkProfile | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    queue_size: int = 4096
    assign_timeout: float = 0.5
    deadline: float = 60.0
    time_scale: float = 0.0

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ProtocolError(f"unknown protocol family {self.family!r}")
        if self.family == HISTOGRAM_BASED and self.bucketizer is None:
            raise ProtocolError("histogram family needs a bucketizer")
        if not 0.0 <= self.token_failure_rate < 1.0:
            raise ValueError("token failure rate must be in [0, 1)")
        if self.num_tokens < 1:
            raise ValueError("need at least one aggregator token")

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run_sync(
        self, nodes: list[PdsNode], query: AggregateQuery
    ) -> ProtocolReport:
        """Convenience wrapper: drive the event loop to completion."""
        return asyncio.run(self.run(nodes, query))

    async def run(
        self, nodes: list[PdsNode], query: AggregateQuery
    ) -> ProtocolReport:
        bus = MessageBus(
            rng=random.Random(self.rng.getrandbits(32)),
            default_link=self.link or LinkProfile(),
            time_scale=self.time_scale,
        )
        metrics = bus.metrics
        tracer = obs.get_tracer()
        if tracer is not None:
            # Per-run metrics start at zero, so watching them mid-trace
            # attributes the whole run to the spans below.
            tracer.watch_net(metrics)
        ssi_endpoint = bus.register("ssi", queue_size=self.queue_size)
        querier_endpoint = bus.register("querier", queue_size=self.queue_size)
        token_endpoints = [
            bus.register(f"token-{i}", queue_size=256)
            for i in range(self.num_tokens)
        ]
        runtime = NodeRuntime(
            bus, churn=self.churn,
            rng=random.Random(self.rng.getrandbits(32)),
        )

        # Local evaluation happens inside each token before any traffic, in
        # deterministic node order — byte-identical to the synchronous
        # drivers for the same fleet/rng seeds.
        prepared: list[tuple[str, list[EncryptedContribution]]] = []
        tuples_sent = fakes_sent = 0
        for node in nodes:
            contributions, num_fakes = self._prepare(node, query)
            tuples_sent += len(contributions)
            fakes_sent += num_fakes
            name = f"pds-{node.pds_id}"
            runtime.register_node(name, queue_size=64)
            prepared.append((name, contributions))

        core = SupportingServerInfrastructure(self.ssi_behavior, self.rng)
        ssi = _SsiActor(core, ssi_endpoint, self.assign_timeout)
        querier = _QuerierActor(querier_endpoint)
        stats = _TokenStats()
        service_tasks = [
            asyncio.ensure_future(ssi.serve()),
            asyncio.ensure_future(querier.serve()),
        ]
        worker_tasks: list[asyncio.Task] = []
        try:
            metrics.set_phase("collection")
            # Stagger the first transmissions across a short window so ten
            # thousand nodes do not fire their first CONTRIB on the same
            # loop tick (a real deployment's uplinks are not synchronized).
            stagger = random.Random(self.rng.getrandbits(32))
            window = min(0.5, 0.00025 * len(prepared))
            with obs.span(
                "protocol.collection",
                family=self.family,
                nodes=len(prepared),
            ):
                await asyncio.wait_for(
                    runtime.run(
                        {
                            name: self._push_contributions(
                                bus.endpoint(name),
                                contributions,
                                metrics,
                                start_delay=stagger.random() * window,
                            )
                            for name, contributions in prepared
                        }
                    ),
                    timeout=self.deadline,
                )

            metrics.set_phase("partitioning")
            with obs.span("protocol.partitioning", family=self.family) as sp:
                partitions = self._partition(core)
                ssi.open_aggregation(partitions)
                sp.set(partitions=len(partitions))

            metrics.set_phase("aggregation")
            with obs.span(
                "protocol.aggregation",
                family=self.family,
                tokens=self.num_tokens,
            ):
                worker_tasks = [
                    asyncio.ensure_future(
                        self._token_worker(endpoint, stats, metrics)
                    )
                    for endpoint in token_endpoints
                ]
                try:
                    await asyncio.wait_for(querier.done.wait(), self.deadline)
                except asyncio.TimeoutError:
                    raise ProtocolError(
                        f"async query missed its {self.deadline:.0f}s "
                        f"deadline ({len(querier.outcomes)} partials of "
                        f"{querier.expected})"
                    ) from None

            metrics.set_phase("merge")
            with obs.span("protocol.merge", family=self.family):
                ordered = [
                    querier.outcomes[pid] for pid in sorted(querier.outcomes)
                ]
                result, failures, duplicates = merge_outcomes(ordered, query)
        finally:
            await _cancel_all(service_tasks + worker_tasks)
            await bus.close()

        suffix = f":{self.noise.mode}" if self.noise is not None else ""
        return ProtocolReport(
            result=result,
            protocol=f"async-{self.family}{suffix}",
            num_pds=len(nodes),
            tuples_sent=tuples_sent,
            fake_tuples_sent=fakes_sent,
            token_decryptions=stats.decryptions,
            token_invocations=stats.invocations + 1,  # + the querier merge
            comm_bytes=metrics.comm.bytes,
            comm_messages=metrics.comm.messages,
            integrity_failures=failures,
            duplicates_detected=duplicates,
            aggregator_retries=ssi.reassignments,
            ssi_tag_histogram=dict(core.observations.group_tag_counts),
            ssi_bucket_histogram=dict(core.observations.bucket_counts),
            net_metrics=metrics,
        )

    # ------------------------------------------------------------------
    # Per-family pieces
    # ------------------------------------------------------------------
    def _prepare(
        self, node: PdsNode, query: AggregateQuery
    ) -> tuple[list[EncryptedContribution], int]:
        """Encrypt one node's contributions (plus planned fakes)."""
        if self.family == NOISE_BASED:
            real = local_contributions(node.records, query)
            fakes = plan_fakes(real, self.noise or NoisePlan(), self.rng)
            return (
                node.contributions(
                    query, self.fleet, with_group_tag=True, fakes=fakes
                ),
                len(fakes),
            )
        if self.family == HISTOGRAM_BASED:
            return (
                node.contributions(query, self.fleet, bucketizer=self.bucketizer),
                0,
            )
        return node.contributions(query, self.fleet), 0

    def _partition(
        self, core: SupportingServerInfrastructure
    ) -> dict[int, list[EncryptedContribution]]:
        """Apply the family's partitioning rule; index partitions by id."""
        if self.family == NOISE_BASED:
            by_tag = core.partition_by_group_tag()
            return {
                index: by_tag[tag] for index, tag in enumerate(sorted(by_tag))
            }
        if self.family == HISTOGRAM_BASED:
            by_bucket = core.partition_by_bucket()
            return {
                index: by_bucket[bucket]
                for index, bucket in enumerate(sorted(by_bucket))
            }
        size = self.partition_size or max(
            1, int(math.sqrt(max(1, len(core.stored))))
        )
        return dict(enumerate(core.partition_random(size)))

    # ------------------------------------------------------------------
    # Actor bodies
    # ------------------------------------------------------------------
    async def _push_contributions(
        self, endpoint, contributions, metrics, start_delay: float = 0.0
    ) -> None:
        """One PDS node's collection task: reliable upload of each tuple."""
        if start_delay > 0.0:
            await asyncio.sleep(start_delay)
        for sequence, contribution in enumerate(contributions):
            frame = Frame(
                KIND_CONTRIB, endpoint.name, sequence,
                encode_contribution(contribution),
            )

            async def attempt(_attempt, frame=frame, sequence=sequence):
                await endpoint.send("ssi", frame)
                await endpoint.recv_match(
                    lambda f: f.kind == KIND_ACK and f.seq == sequence,
                    timeout=self.retry.timeout,
                )

            try:
                await with_retries(
                    attempt, self.retry, self.rng,
                    description=f"{endpoint.name} contribution {sequence}",
                )
            except RetriesExhausted:
                metrics.on_retry_exhausted("contribution")
                raise

    async def _token_worker(
        self, endpoint, stats: _TokenStats, metrics
    ) -> None:
        """One connected token: claim partitions until the SSI says FIN."""
        rng = self.rng
        claim_seq = 0
        while True:
            claim_seq += 1
            seq = claim_seq

            async def claim(_attempt, seq=seq):
                await endpoint.send(
                    "ssi", Frame(KIND_CLAIM, endpoint.name, seq)
                )
                return await endpoint.recv_match(
                    lambda f: f.seq == seq
                    and f.kind in (KIND_ASSIGN, KIND_WAIT, KIND_FIN),
                    timeout=self.retry.timeout,
                )

            try:
                reply = await with_retries(
                    claim, self.retry, rng,
                    description=f"{endpoint.name} claim",
                )
            except RetriesExhausted:
                metrics.on_retry_exhausted("claim")
                return  # token gives up; remaining tokens carry the load
            if reply.kind == KIND_FIN:
                return
            if reply.kind == KIND_WAIT:
                await asyncio.sleep(self.retry.base_delay)
                continue
            pid, partition = decode_partition(reply.payload)
            if (
                self.token_failure_rate
                and rng.random() < self.token_failure_rate
            ):
                # The token disconnects inside its secure perimeter; the
                # SSI's reaper reassigns the (ciphertext) partition.
                stats.walkaways += 1
                continue
            outcome = TrustedAggregator(self.fleet).aggregate(partition)
            stats.decryptions += len(partition)
            stats.invocations += 1
            payload = encode_outcome(pid, outcome)

            async def push_partial(_attempt, pid=pid, payload=payload):
                await endpoint.send(
                    "querier",
                    Frame(KIND_PARTIAL, endpoint.name, pid, payload),
                )
                await endpoint.recv_match(
                    lambda f: f.kind == KIND_ACK and f.seq == pid,
                    timeout=self.retry.timeout,
                )

            try:
                await with_retries(
                    push_partial, self.retry, rng,
                    description=f"{endpoint.name} partial {pid}",
                )
            except RetriesExhausted:
                metrics.on_retry_exhausted("partial")
                continue  # partition will be reaped and reassigned
