"""What the honest-but-curious SSI can infer from what it sees.

The deterministic-tag family hands the SSI a ciphertext frequency histogram.
With a public prior over the group domain (census data, for instance), the
classic **frequency-analysis attack** matches observed tags to domain values
by frequency rank. This module implements that attacker and scores it, so
E8 can plot attacker accuracy against the fake-tuple ratio and against the
histogram family's bucket coarsening.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class AttackResult:
    """Outcome of one frequency-analysis attempt."""

    guessed_mapping: dict[bytes, str]
    tuple_accuracy: float
    value_accuracy: float


def frequency_analysis(
    tag_histogram: dict[bytes, int],
    prior: dict[str, float],
    true_mapping: dict[bytes, str],
    true_tuple_counts: dict[bytes, int] | None = None,
) -> AttackResult:
    """Rank-match observed tags against the prior; score the guesses.

    ``true_mapping`` (tag -> group) is ground truth used only for scoring —
    the attacker sees just the histogram and the prior.
    ``true_tuple_counts`` weights tuple accuracy by *real* tuples per tag
    (fakes inflate observed counts but should not reward the attacker).
    """
    tags_by_frequency = sorted(
        tag_histogram, key=lambda tag: (-tag_histogram[tag], tag)
    )
    values_by_prior = sorted(prior, key=lambda value: (-prior[value], value))
    guessed = {
        tag: values_by_prior[rank]
        for rank, tag in enumerate(tags_by_frequency)
        if rank < len(values_by_prior)
    }

    if not true_mapping:
        return AttackResult(guessed, 0.0, 0.0)
    correct_values = sum(
        1
        for tag, guess in guessed.items()
        if true_mapping.get(tag) == guess
    )
    value_accuracy = correct_values / len(true_mapping)

    counts = true_tuple_counts or tag_histogram
    total_tuples = sum(counts.get(tag, 0) for tag in true_mapping)
    correct_tuples = sum(
        counts.get(tag, 0)
        for tag, guess in guessed.items()
        if true_mapping.get(tag) == guess
    )
    tuple_accuracy = correct_tuples / total_tuples if total_tuples else 0.0
    return AttackResult(guessed, tuple_accuracy, value_accuracy)


def histogram_flatness(histogram: dict) -> float:
    """Normalized flatness in [0, 1]: 1 = perfectly uniform counts.

    Measured as the ratio of the minimum to the maximum bucket/tag count;
    flatter observed histograms give frequency analysis less to grip.
    """
    if not histogram:
        return 1.0
    counts = list(histogram.values())
    high = max(counts)
    return (min(counts) / high) if high else 1.0
