"""Embedded time-series store: the framework extended to temporal data.

Part II's conclusion lists *time series* among the data models the log-only
framework should be extended to; sensors with flash cards (the tutorial's
low-end target hardware) produce exactly this workload. The design repeats
the Keys+Bloom recipe with temporal summaries:

* **Data log** — ``(timestamp, value)`` pairs appended in timestamp order
  (sensors emit monotonically), packed into flash pages;
* **Summary log** — one record per flushed data page carrying
  ``(first_ts, last_ts, count, sum, min, max)``.

A range aggregate scans the (small) summary log; pages fully inside the
range are answered from their summary without touching the data log, only
the (at most two) boundary pages are read — the temporal analogue of the
summary scan, benchmarked as E12.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import QueryError, StorageError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.storage.log import RecordLog

_POINT = struct.Struct("<qd")  # timestamp, value
_SUMMARY = struct.Struct("<qqIddd")  # first_ts, last_ts, count, sum, min, max

AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass
class RangeStats:
    """Page-read breakdown of one range query (for E12)."""

    summary_pages: int = 0
    data_pages: int = 0

    @property
    def total_pages(self) -> int:
        return self.summary_pages + self.data_pages


@dataclass
class _PageSummary:
    position: int
    first_ts: int
    last_ts: int
    count: int
    total: float
    minimum: float
    maximum: float


class TimeSeriesStore:
    """Append-only series with per-page temporal summaries."""

    def __init__(
        self,
        allocator: BlockAllocator,
        name: str = "series",
        ram: RamArena | None = None,
    ) -> None:
        self.data = RecordLog(allocator, name=f"{name}:points", ram=ram)
        self.summaries = RecordLog(allocator, name=f"{name}:summaries", ram=ram)
        self.data.on_page_flush = self._summarize_page
        self._last_ts: int | None = None
        self._count = 0
        self.last_range = RangeStats()

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def data_pages(self) -> int:
        return self.data.page_count

    def append(self, timestamp: int, value: float) -> None:
        """Record one point; timestamps must be strictly increasing."""
        if self._last_ts is not None and timestamp <= self._last_ts:
            raise StorageError(
                f"timestamp {timestamp} not increasing (last {self._last_ts})"
            )
        self.data.append(_POINT.pack(timestamp, float(value)))
        self._last_ts = timestamp
        self._count += 1

    def flush(self) -> None:
        self.data.flush()
        self.summaries.flush()

    def _summarize_page(self, position: int, records: list[bytes]) -> None:
        points = [_POINT.unpack(record) for record in records]
        values = [value for _, value in points]
        self.summaries.append(
            struct.pack("<I", position)
            + _SUMMARY.pack(
                points[0][0],
                points[-1][0],
                len(points),
                sum(values),
                min(values),
                max(values),
            )
        )

    # ------------------------------------------------------------------
    def _iter_summaries(self, stats: RangeStats):
        for page_records in self.summaries.scan_pages():
            stats.summary_pages += 1
            for record in page_records:
                yield self._decode_summary(record)
        for record in self.summaries.buffered_records():
            yield self._decode_summary(record)

    @staticmethod
    def _decode_summary(record: bytes) -> _PageSummary:
        (position,) = struct.unpack_from("<I", record, 0)
        first, last, count, total, minimum, maximum = _SUMMARY.unpack_from(
            record, 4
        )
        return _PageSummary(position, first, last, count, total, minimum, maximum)

    def _page_points(self, position: int, stats: RangeStats):
        from repro.storage import pager

        stats.data_pages += 1
        for record in pager.unpack_records(self.data.pages.read_page(position)):
            yield _POINT.unpack(record)

    def _buffered_points(self):
        for record in self.data.buffered_records():
            yield _POINT.unpack(record)

    # ------------------------------------------------------------------
    def range_aggregate(self, t0: int, t1: int, aggregate: str) -> float | None:
        """Aggregate of values with ``t0 <= timestamp <= t1``.

        Interior pages are answered from summaries; only boundary pages are
        read. Returns ``None`` for an empty range (COUNT returns 0.0).
        """
        if aggregate not in AGGREGATES:
            raise QueryError(
                f"unsupported aggregate {aggregate!r}; one of {AGGREGATES}"
            )
        if t0 > t1:
            raise QueryError("range start must be <= range end")
        stats = RangeStats()
        # Published up front (and mutated in place) so a caller observing
        # mid-query — or after an exception — sees this query's reads, not
        # the previous query's completed breakdown.
        self.last_range = stats
        count = 0
        total = 0.0
        minimum: float | None = None
        maximum: float | None = None

        def fold(value: float) -> None:
            nonlocal count, total, minimum, maximum
            count += 1
            total += value
            minimum = value if minimum is None else min(minimum, value)
            maximum = value if maximum is None else max(maximum, value)

        for summary in self._iter_summaries(stats):
            if summary.last_ts < t0 or summary.first_ts > t1:
                continue
            if t0 <= summary.first_ts and summary.last_ts <= t1:
                count += summary.count
                total += summary.total
                minimum = (
                    summary.minimum
                    if minimum is None
                    else min(minimum, summary.minimum)
                )
                maximum = (
                    summary.maximum
                    if maximum is None
                    else max(maximum, summary.maximum)
                )
            else:  # boundary page: read the points
                for timestamp, value in self._page_points(
                    summary.position, stats
                ):
                    if t0 <= timestamp <= t1:
                        fold(value)
        for timestamp, value in self._buffered_points():
            if t0 <= timestamp <= t1:
                fold(value)

        if aggregate == "COUNT":
            return float(count)
        if count == 0:
            return None
        if aggregate == "SUM":
            return total
        if aggregate == "AVG":
            return total / count
        if aggregate == "MIN":
            return minimum
        return maximum

    def windows(
        self, t0: int, t1: int, width: int, aggregate: str = "AVG"
    ) -> list[tuple[int, float | None]]:
        """Tumbling-window aggregates over ``[t0, t1)`` (window start, agg).

        ``last_range`` afterwards holds the *whole sweep's* page reads.
        Each window is one :meth:`range_aggregate` call, which used to
        leave only the final window's breakdown behind — an E12 report
        over a 10-window sweep silently under-counted IO by ~10×.
        """
        if width <= 0:
            raise QueryError("window width must be positive")
        results = []
        sweep = RangeStats()
        start = t0
        while start < t1:
            end = min(start + width - 1, t1 - 1)
            results.append((start, self.range_aggregate(start, end, aggregate)))
            sweep.summary_pages += self.last_range.summary_pages
            sweep.data_pages += self.last_range.data_pages
            start += width
        self.last_range = sweep
        return results

    def scan_range(self, t0: int, t1: int):
        """Yield raw ``(timestamp, value)`` points inside the range."""
        stats = RangeStats()
        # Published before the first yield: a partially consumed generator
        # used to leave the *previous* query's stats in last_range, so the
        # pages it did read were attributed to nothing.
        self.last_range = stats
        for summary in self._iter_summaries(stats):
            if summary.last_ts < t0 or summary.first_ts > t1:
                continue
            for timestamp, value in self._page_points(summary.position, stats):
                if t0 <= timestamp <= t1:
                    yield timestamp, value
        for timestamp, value in self._buffered_points():
            if t0 <= timestamp <= t1:
                yield timestamp, value
