"""Embedded time-series storage (the tutorial's named extension).

The log-only framework applied to temporal data: an append-only point log
with per-page temporal summaries, summary-skipping range aggregates and
tumbling windows, plus sequential downsampling for ageing history.
"""

from repro.timeseries.downsample import downsample
from repro.timeseries.series import AGGREGATES, RangeStats, TimeSeriesStore

__all__ = ["AGGREGATES", "RangeStats", "TimeSeriesStore", "downsample"]
