"""Log-only downsampling: the time-series analogue of reorganization.

Old high-resolution history rarely needs point precision; the framework's
answer is the same as for indexes — *rewrite sequentially into a better
structure and reclaim the old log in blocks*. :func:`downsample` folds a
series into fixed-width buckets written to a fresh
:class:`~repro.timeseries.series.TimeSeriesStore` holding one point per
bucket (the bucket aggregate), then the caller drops the source.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.hardware.flash import BlockAllocator
from repro.timeseries.series import AGGREGATES, TimeSeriesStore


def downsample(
    source: TimeSeriesStore,
    allocator: BlockAllocator,
    bucket_width: int,
    aggregate: str = "AVG",
    name: str = "downsampled",
) -> TimeSeriesStore:
    """Fold ``source`` into one point per ``bucket_width`` of time.

    The output point's timestamp is the bucket start; its value is the
    bucket's aggregate. Purely sequential: one pass over the source (via
    its summary/data logs), appends to the target.
    """
    if bucket_width <= 0:
        raise QueryError("bucket width must be positive")
    if aggregate not in AGGREGATES:
        raise QueryError(f"unsupported aggregate {aggregate!r}")
    target = TimeSeriesStore(allocator, name=name)

    bucket_start: int | None = None
    count = 0
    total = 0.0
    minimum = maximum = 0.0

    def emit() -> None:
        nonlocal count
        if count == 0:
            return
        if aggregate == "COUNT":
            value = float(count)
        elif aggregate == "SUM":
            value = total
        elif aggregate == "AVG":
            value = total / count
        elif aggregate == "MIN":
            value = minimum
        else:
            value = maximum
        target.append(bucket_start, value)
        count = 0

    for timestamp, value in source.scan_range(-(2**62), 2**62):
        start = (timestamp // bucket_width) * bucket_width
        if bucket_start is None or start != bucket_start:
            emit()
            bucket_start = start
            total, minimum, maximum = 0.0, value, value
        count += 1
        total += value
        minimum = min(minimum, value)
        maximum = max(maximum, value)
    emit()
    target.flush()
    return target
