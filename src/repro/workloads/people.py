"""Synthetic populations of personal records for the global-query experiments.

Each simulated citizen's PDS holds a handful of flat records (the output of
the Part II engines, seen from Part III's distance). Categorical attributes
follow a configurable Zipf skew — frequency-analysis attacks (E8) need a
skewed prior to exploit, and uniform data would understate the leak.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

CITIES = [
    "paris", "lyon", "marseille", "lille", "toulouse",
    "nice", "nantes", "bordeaux", "rennes", "grenoble",
]
DIAGNOSES = ["healthy", "flu", "diabetes", "asthma", "hypertension"]
OCCUPATIONS = ["teacher", "nurse", "engineer", "farmer", "clerk", "driver"]


@dataclass
class PersonRecord:
    """One record inside one person's PDS."""

    attributes: dict = field(default_factory=dict)

    def __getitem__(self, key: str):
        return self.attributes[key]

    def __contains__(self, key: str) -> bool:
        return key in self.attributes

    def get(self, key: str, default=None):
        return self.attributes.get(key, default)


def zipf_choice(options: list[str], rng: random.Random, skew: float) -> str:
    """Pick from ``options`` with Zipf(skew) rank probabilities."""
    if skew <= 0:
        return options[rng.randrange(len(options))]
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(options))]
    total = sum(weights)
    point = rng.random() * total
    cumulative = 0.0
    for option, weight in zip(options, weights):
        cumulative += weight
        if point <= cumulative:
            return option
    return options[-1]


def generate_population(
    num_people: int,
    seed: int = 17,
    skew: float = 1.0,
) -> list[list[PersonRecord]]:
    """Per-person record lists: ``result[i]`` is the content of PDS ``i``."""
    rng = random.Random(seed)
    population = []
    for person in range(num_people):
        city = zipf_choice(CITIES, rng, skew)
        age = rng.randrange(18, 90)
        records = [
            PersonRecord(
                {
                    "kind": "profile",
                    "person": person,
                    "city": city,
                    "age": age,
                    "occupation": zipf_choice(OCCUPATIONS, rng, skew * 0.5),
                    "salary": 1200 + rng.randrange(0, 4000),
                }
            ),
            PersonRecord(
                {
                    "kind": "health",
                    "person": person,
                    "city": city,
                    "age": age,
                    "diagnosis": zipf_choice(DIAGNOSES, rng, skew),
                    "consultations": rng.randrange(0, 12),
                }
            ),
        ]
        # A variable number of energy readings (smart-home records).
        for reading in range(rng.randrange(0, 3)):
            records.append(
                PersonRecord(
                    {
                        "kind": "energy",
                        "person": person,
                        "city": city,
                        "month": reading + 1,
                        "kwh": 100 + rng.randrange(0, 400),
                    }
                )
            )
        population.append(records)
    return population
