"""Synthetic document corpora for the embedded search experiments.

Generates the kind of content a PDS aggregates — mails, bills, medical
notes — as bags of words drawn from a Zipfian vocabulary, deterministically
seeded so experiments are reproducible run-to-run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Topical word pools: each document mixes one topic pool with common words,
#: giving queries both selective and broad keywords to exercise.
TOPICS: dict[str, list[str]] = {
    "health": (
        "doctor prescription hospital treatment blood pressure allergy "
        "vaccine appointment radiology diagnosis symptom therapy dosage"
    ).split(),
    "finance": (
        "invoice payment account balance transfer statement credit debit "
        "mortgage insurance premium refund salary pension"
    ).split(),
    "mail": (
        "meeting agenda reply forward attachment schedule deadline project "
        "report draft review conference travel booking"
    ).split(),
    "home": (
        "electricity heating sensor thermostat garage window alarm energy "
        "consumption water meter maintenance repair warranty"
    ).split(),
}

_COMMON = (
    "monday record note personal update copy confirm number reference "
    "service request contact address document"
).split()


@dataclass(frozen=True)
class Document:
    """One synthetic personal document."""

    docid: int
    topic: str
    text: str


class DocumentCorpus:
    """Deterministic generator of topic-tagged documents."""

    def __init__(self, seed: int = 7) -> None:
        self._random = random.Random(seed)

    def generate(
        self,
        num_docs: int,
        words_per_doc: int = 40,
    ) -> list[Document]:
        """Produce ``num_docs`` documents with increasing docids."""
        topics = sorted(TOPICS)
        documents = []
        for docid in range(num_docs):
            topic = topics[self._random.randrange(len(topics))]
            pool = TOPICS[topic]
            words = []
            for _ in range(words_per_doc):
                if self._random.random() < 0.7:
                    # Zipf-ish: low ranks of the topic pool dominate.
                    rank = min(
                        int(self._random.paretovariate(1.2)) - 1, len(pool) - 1
                    )
                    words.append(pool[rank])
                else:
                    words.append(
                        _COMMON[self._random.randrange(len(_COMMON))]
                    )
            documents.append(Document(docid, topic, " ".join(words)))
        return documents


def standard_queries() -> list[str]:
    """Query mix used by the E2 bench: selective, broad, multi-keyword."""
    return [
        "doctor prescription",
        "invoice payment balance",
        "meeting agenda",
        "energy consumption meter",
        "doctor invoice meeting",
        "vaccine",
    ]
