"""Deterministic synthetic workloads for every experiment.

Document corpora (embedded search), the TPCD-like five-table schema
(embedded SQL), personal-record populations (global protocols) and the
standard query mixes. All generators take seeds so experiments reproduce
bit-for-bit.
"""

from repro.workloads.documents import Document, DocumentCorpus, standard_queries
from repro.workloads.people import (
    CITIES,
    DIAGNOSES,
    OCCUPATIONS,
    PersonRecord,
    generate_population,
    zipf_choice,
)
from repro.workloads.queries import census_queries, epidemiology_query
from repro.workloads.tpcd import (
    MKT_SEGMENTS,
    ROOT_TABLE,
    TpcdData,
    generate,
    household_supplier_query,
    load,
    tpcd_schema,
)

__all__ = [
    "CITIES",
    "DIAGNOSES",
    "Document",
    "DocumentCorpus",
    "MKT_SEGMENTS",
    "OCCUPATIONS",
    "PersonRecord",
    "ROOT_TABLE",
    "TpcdData",
    "census_queries",
    "epidemiology_query",
    "generate",
    "generate_population",
    "household_supplier_query",
    "load",
    "standard_queries",
    "tpcd_schema",
    "zipf_choice",
]
