"""TPCD-like workload: the five-table schema of the tutorial's SQL slide.

The execution-plan slide joins CUSTOMER ⋈ ORDER ⋈ LINEITEM ⋈ PARTSUPP ⋈
SUPPLIER with selections on ``CUS.Mktsegment`` and ``SUP.Name`` — a shrunken
TPC-D. This module provides that schema (LINEITEM as query root), a
deterministic generator scaled by ``num_lineitems``, and the slide's query.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.relational.planner import Query
from repro.relational.schema import Column, ForeignKey, SchemaGraph, TableSchema

MKT_SEGMENTS = ["HOUSEHOLD", "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY"]
NATIONS = ["FRANCE", "GERMANY", "SPAIN", "ITALY", "JAPAN", "BRAZIL"]


def tpcd_schema() -> SchemaGraph:
    """The five-table schema tree rooted (for queries) at LINEITEM."""
    supplier = TableSchema(
        "SUPPLIER",
        [Column("SUPkey", "int"), Column("Name", "str"), Column("Nation", "str")],
        primary_key="SUPkey",
    )
    customer = TableSchema(
        "CUSTOMER",
        [
            Column("CUSkey", "int"),
            Column("Name", "str"),
            Column("Mktsegment", "str"),
        ],
        primary_key="CUSkey",
    )
    order = TableSchema(
        "ORDER",
        [Column("ORDkey", "int"), Column("CUSkey", "int"), Column("Odate", "int")],
        primary_key="ORDkey",
        foreign_keys=[ForeignKey("CUSkey", "CUSTOMER", "CUSkey")],
    )
    partsupp = TableSchema(
        "PARTSUPP",
        [
            Column("PSkey", "int"),
            Column("SUPkey", "int"),
            Column("Availqty", "int"),
        ],
        primary_key="PSkey",
        foreign_keys=[ForeignKey("SUPkey", "SUPPLIER", "SUPkey")],
    )
    lineitem = TableSchema(
        "LINEITEM",
        [
            Column("LINkey", "int"),
            Column("ORDkey", "int"),
            Column("PSkey", "int"),
            Column("Quantity", "int"),
            Column("Price", "float"),
        ],
        primary_key="LINkey",
        foreign_keys=[
            ForeignKey("ORDkey", "ORDER", "ORDkey"),
            ForeignKey("PSkey", "PARTSUPP", "PSkey"),
        ],
    )
    return SchemaGraph([supplier, customer, order, partsupp, lineitem])


ROOT_TABLE = "LINEITEM"


@dataclass(frozen=True)
class TpcdData:
    """Generated rows per table, in referential-integrity insertion order."""

    suppliers: list[tuple]
    customers: list[tuple]
    orders: list[tuple]
    partsupps: list[tuple]
    lineitems: list[tuple]

    def insertion_plan(self) -> list[tuple[str, list[tuple]]]:
        """Tables in an order that satisfies foreign keys."""
        return [
            ("SUPPLIER", self.suppliers),
            ("CUSTOMER", self.customers),
            ("ORDER", self.orders),
            ("PARTSUPP", self.partsupps),
            ("LINEITEM", self.lineitems),
        ]

    @property
    def total_rows(self) -> int:
        return (
            len(self.suppliers)
            + len(self.customers)
            + len(self.orders)
            + len(self.partsupps)
            + len(self.lineitems)
        )


def generate(num_lineitems: int, seed: int = 42) -> TpcdData:
    """Deterministic micro TPC-D: table cardinalities keep TPC-ish ratios."""
    rng = random.Random(seed)
    num_orders = max(2, num_lineitems // 4)
    num_customers = max(2, num_orders // 5)
    num_partsupps = max(2, num_lineitems // 5)
    num_suppliers = max(2, num_partsupps // 8)

    suppliers = [
        (i, f"SUPPLIER-{i}", NATIONS[rng.randrange(len(NATIONS))])
        for i in range(num_suppliers)
    ]
    customers = [
        (
            i,
            f"Customer#{i:06d}",
            MKT_SEGMENTS[rng.randrange(len(MKT_SEGMENTS))],
        )
        for i in range(num_customers)
    ]
    orders = [
        (i, rng.randrange(num_customers), 19940101 + rng.randrange(365))
        for i in range(num_orders)
    ]
    partsupps = [
        (i, rng.randrange(num_suppliers), rng.randrange(1, 1000))
        for i in range(num_partsupps)
    ]
    lineitems = [
        (
            i,
            rng.randrange(num_orders),
            rng.randrange(num_partsupps),
            rng.randrange(1, 50),
            round(rng.uniform(1.0, 1000.0), 2),
        )
        for i in range(num_lineitems)
    ]
    return TpcdData(suppliers, customers, orders, partsupps, lineitems)


def load(db, data: TpcdData) -> None:
    """Insert a generated dataset into an EmbeddedDatabase-compatible API."""
    for table, rows in data.insertion_plan():
        for row in rows:
            db.insert(table, row)
    db.flush()


def household_supplier_query(segment: str = "HOUSEHOLD", supplier: str = "SUPPLIER-1") -> Query:
    """The tutorial's query: segment + supplier selections, wide projection."""
    return Query.build(
        filters=[
            ("CUSTOMER", "Mktsegment", segment),
            ("SUPPLIER", "Name", supplier),
        ],
        projection=[
            ("CUSTOMER", "Name"),
            ("ORDER", "ORDkey"),
            ("LINEITEM", "LINkey"),
            ("LINEITEM", "Price"),
            ("SUPPLIER", "Name"),
        ],
    )
