"""Query mixes shared by benchmarks and examples."""

from __future__ import annotations


def census_queries() -> list:
    """The smart-city / public-statistics mix for Part III experiments."""
    # Imported lazily: repro.globalq.queries itself uses the people
    # workload, and a module-level import here would close that cycle.
    from repro.globalq.queries import AggregateQuery

    return [
        AggregateQuery.count(group_by="city", where=(("kind", "profile"),)),
        AggregateQuery.avg("age", group_by="city", where=(("kind", "profile"),)),
        AggregateQuery.sum("kwh", group_by="city", where=(("kind", "energy"),)),
        AggregateQuery.count(
            group_by="diagnosis", where=(("kind", "health"),)
        ),
        AggregateQuery.avg(
            "consultations", where=(("kind", "health"), ("diagnosis", "flu"))
        ),
    ]


def epidemiology_query():
    """Flu prevalence by city: the motivating healthcare example."""
    from repro.globalq.queries import AggregateQuery

    return AggregateQuery.count(
        group_by="city", where=(("kind", "health"), ("diagnosis", "flu"))
    )
