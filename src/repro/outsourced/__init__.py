"""Executing SQL over encrypted outsourced data (the [HILM02] foundation).

One owner, one untrusted provider: bucketized indexes over ciphertext rows,
range queries answered as supersets and post-filtered client-side — the
mechanism Part III's histogram protocol family generalizes to populations.
"""

from repro.outsourced.hacigumus import (
    OutsourcedDatabase,
    OutsourcedServer,
    QueryCost,
    RangeBucketMap,
    ServerObservations,
)

__all__ = [
    "OutsourcedDatabase",
    "OutsourcedServer",
    "QueryCost",
    "RangeBucketMap",
    "ServerObservations",
]
