"""Executing SQL over encrypted outsourced data ([HILM02]/[HIM04]).

Part III credits Hacigümüş et al. for the bucketization idea the
histogram protocol family builds on. The original setting is simpler than
the PDS fleet — **one** owner outsources her encrypted database to an
untrusted service provider — and is worth having in full because its
trade-off curve (bucket count vs false-positive work vs leak) is the
mechanism the tutorial imports:

* the client keeps the keys and a **bucket map**: the domain of each
  indexable attribute is cut into ranges, each with an opaque bucket id;
* the server stores ``(bucket ids..., ciphertext row)`` and can filter *by
  bucket only* — it never sees values or true predicates;
* a client query maps its predicate to bucket ids, the server returns every
  row in those buckets (supersets!), and the client decrypts and
  post-filters the false positives.

Fewer buckets = flatter leak but more false-positive transfer and client
decryption; more buckets = sharper queries but a finer histogram for the
server to analyse. E18 plots exactly this.
"""

from __future__ import annotations

import json
import random
from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass, field

from repro.crypto.symmetric import NondeterministicCipher
from repro.errors import QueryError


class RangeBucketMap:
    """Client-side secret mapping: attribute value -> opaque bucket id.

    Boundaries cut the numeric domain into ``num_buckets`` ranges; ids are
    randomly permuted so the server cannot order buckets.
    """

    def __init__(
        self,
        low: int,
        high: int,
        num_buckets: int,
        rng: random.Random,
    ) -> None:
        if high <= low:
            raise QueryError("domain must be a non-empty range")
        if not 1 <= num_buckets <= high - low:
            raise QueryError("bucket count must be in [1, domain size]")
        span = (high - low) / num_buckets
        self.low = low
        self.high = high
        #: Right boundaries of each bucket (last covers up to ``high``).
        self.boundaries = [
            low + int(span * (index + 1)) for index in range(num_buckets - 1)
        ]
        identities = list(range(num_buckets))
        rng.shuffle(identities)
        self._ids = identities  # position -> opaque id

    @property
    def num_buckets(self) -> int:
        return len(self._ids)

    def bucket_of(self, value: int) -> int:
        if not self.low <= value <= self.high:
            raise QueryError(f"value {value} outside domain")
        return self._ids[bisect_right(self.boundaries, value)]

    def buckets_for_range(self, low: int, high: int) -> list[int]:
        """Every bucket id overlapping ``[low, high]``."""
        if low > high:
            raise QueryError("empty range")
        low = max(low, self.low)
        high = min(high, self.high)
        first = bisect_right(self.boundaries, low)
        last = bisect_right(self.boundaries, high)
        return sorted(self._ids[position] for position in range(first, last + 1))


@dataclass
class ServerObservations:
    """What the untrusted provider can write down."""

    bucket_histogram: Counter = field(default_factory=Counter)
    queried_buckets: list[tuple[int, ...]] = field(default_factory=list)
    rows_returned: int = 0


class OutsourcedServer:
    """The provider: stores ciphertext rows under bucket ids."""

    def __init__(self) -> None:
        self._rows: list[tuple[dict[str, int], bytes]] = []
        self.observations = ServerObservations()

    def insert(self, bucket_ids: dict[str, int], blob: bytes) -> None:
        self._rows.append((dict(bucket_ids), blob))
        for attribute, bucket in bucket_ids.items():
            self.observations.bucket_histogram[(attribute, bucket)] += 1

    def select(self, attribute: str, buckets: list[int]) -> list[bytes]:
        """Rows whose ``attribute`` bucket is in ``buckets`` (superset!)."""
        self.observations.queried_buckets.append(tuple(buckets))
        wanted = set(buckets)
        hits = [
            blob
            for bucket_ids, blob in self._rows
            if bucket_ids.get(attribute) in wanted
        ]
        self.observations.rows_returned += len(hits)
        return hits


@dataclass
class QueryCost:
    """Client-visible cost of one range query."""

    rows_transferred: int
    rows_matching: int

    @property
    def false_positive_ratio(self) -> float:
        if self.rows_transferred == 0:
            return 0.0
        return 1.0 - self.rows_matching / self.rows_transferred


class OutsourcedDatabase:
    """The client: keys + bucket maps; the server: everything else."""

    def __init__(
        self,
        key: bytes,
        bucket_maps: dict[str, RangeBucketMap],
        rng: random.Random | None = None,
    ) -> None:
        if not bucket_maps:
            raise QueryError("need at least one bucketized attribute")
        self._cipher = NondeterministicCipher(key, rng=rng or random.Random())
        self.bucket_maps = bucket_maps
        self.server = OutsourcedServer()
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return self._count

    def insert(self, row: dict) -> None:
        """Encrypt and ship one row; the server sees bucket ids only."""
        bucket_ids = {}
        for attribute, bucket_map in self.bucket_maps.items():
            if attribute not in row:
                raise QueryError(f"row lacks bucketized attribute {attribute!r}")
            bucket_ids[attribute] = bucket_map.bucket_of(row[attribute])
        blob = self._cipher.encrypt(json.dumps(row).encode("utf-8"))
        self.server.insert(bucket_ids, blob)
        self._count += 1

    def range_query(
        self, attribute: str, low: int, high: int
    ) -> tuple[list[dict], QueryCost]:
        """``low <= attribute <= high``: server narrows, client filters."""
        bucket_map = self.bucket_maps.get(attribute)
        if bucket_map is None:
            raise QueryError(f"attribute {attribute!r} is not bucketized")
        buckets = bucket_map.buckets_for_range(low, high)
        candidates = self.server.select(attribute, buckets)
        rows = []
        for blob in candidates:
            row = json.loads(self._cipher.decrypt(blob))
            if low <= row[attribute] <= high:
                rows.append(row)
        cost = QueryCost(
            rows_transferred=len(candidates), rows_matching=len(rows)
        )
        return rows, cost
