"""Row (de)serialization: fixed binary encodings per column kind.

Rows are stored in flash pages, so every value gets a compact little-endian
encoding: ints are 8-byte signed, floats 8-byte IEEE doubles, strings
length-prefixed UTF-8. Keys used by indexes additionally need an
*order-preserving* byte encoding (:func:`encode_key`) so sorted-key logs can
compare serialized keys directly.
"""

from __future__ import annotations

import struct

from repro.errors import StorageError
from repro.relational.schema import TableSchema

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U16 = struct.Struct("<H")


def serialize_row(schema: TableSchema, values: tuple) -> bytes:
    """Encode one row according to ``schema`` column order."""
    if len(values) != len(schema.columns):
        raise StorageError(
            f"table {schema.name!r}: expected {len(schema.columns)} values, "
            f"got {len(values)}"
        )
    parts: list[bytes] = []
    for column, value in zip(schema.columns, values):
        value = column.check_value(value)
        if column.kind == "int":
            parts.append(_I64.pack(value))
        elif column.kind == "float":
            parts.append(_F64.pack(value))
        else:
            encoded = value.encode("utf-8")
            if len(encoded) > 0xFFFF:
                raise StorageError(
                    f"string too long for column {column.name!r}"
                )
            parts.append(_U16.pack(len(encoded)) + encoded)
    return b"".join(parts)


def deserialize_row(schema: TableSchema, data: bytes) -> tuple:
    """Inverse of :func:`serialize_row`."""
    values = []
    offset = 0
    for column in schema.columns:
        if column.kind == "int":
            values.append(_I64.unpack_from(data, offset)[0])
            offset += 8
        elif column.kind == "float":
            values.append(_F64.unpack_from(data, offset)[0])
            offset += 8
        else:
            length = _U16.unpack_from(data, offset)[0]
            offset += 2
            values.append(data[offset : offset + length].decode("utf-8"))
            offset += length
    if offset != len(data):
        raise StorageError(
            f"table {schema.name!r}: row has {len(data) - offset} trailing bytes"
        )
    return tuple(values)


def encode_key(value) -> bytes:
    """Order-preserving byte encoding of an index key value.

    * ints map to offset-binary (sign bit flipped) big-endian, so unsigned
      byte order equals numeric order;
    * floats use the standard IEEE trick (flip sign bit for positives, all
      bits for negatives);
    * strings are UTF-8 (bytewise order = code-point order).
    """
    if isinstance(value, bool):
        raise StorageError("bool is not a supported key type")
    if isinstance(value, int):
        return b"\x01" + struct.pack(">Q", value + (1 << 63))
    if isinstance(value, float):
        bits = struct.unpack(">Q", struct.pack(">d", value))[0]
        if bits & (1 << 63):
            bits ^= 0xFFFFFFFFFFFFFFFF
        else:
            bits ^= 1 << 63
        return b"\x02" + struct.pack(">Q", bits)
    if isinstance(value, str):
        return b"\x03" + value.encode("utf-8")
    raise StorageError(f"unsupported key type {type(value).__name__}")


def decode_key(data: bytes):
    """Inverse of :func:`encode_key`."""
    tag, payload = data[0], data[1:]
    if tag == 1:
        return struct.unpack(">Q", payload)[0] - (1 << 63)
    if tag == 2:
        bits = struct.unpack(">Q", payload)[0]
        if bits & (1 << 63):
            bits ^= 1 << 63
        else:
            bits ^= 0xFFFFFFFFFFFFFFFF
        return struct.unpack(">d", struct.pack(">Q", bits))[0]
    if tag == 3:
        return payload.decode("utf-8")
    raise StorageError(f"unknown key tag {tag}")
