"""Row (de)serialization: fixed binary encodings per column kind.

Rows are stored in flash pages, so every value gets a compact little-endian
encoding: ints are 8-byte signed, floats 8-byte IEEE doubles, strings
length-prefixed UTF-8. Keys used by indexes additionally need an
*order-preserving* byte encoding (:func:`encode_key`) so sorted-key logs can
compare serialized keys directly.
"""

from __future__ import annotations

import struct

from repro.errors import StorageError
from repro.relational.schema import TableSchema

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U16 = struct.Struct("<H")


def serialize_row(schema: TableSchema, values: tuple) -> bytes:
    """Encode one row according to ``schema`` column order."""
    if len(values) != len(schema.columns):
        raise StorageError(
            f"table {schema.name!r}: expected {len(schema.columns)} values, "
            f"got {len(values)}"
        )
    parts: list[bytes] = []
    for column, value in zip(schema.columns, values):
        value = column.check_value(value)
        if column.kind == "int":
            parts.append(_I64.pack(value))
        elif column.kind == "float":
            parts.append(_F64.pack(value))
        else:
            encoded = value.encode("utf-8")
            if len(encoded) > 0xFFFF:
                raise StorageError(
                    f"string too long for column {column.name!r}"
                )
            parts.append(_U16.pack(len(encoded)) + encoded)
    return b"".join(parts)


def deserialize_row(schema: TableSchema, data: bytes) -> tuple:
    """Inverse of :func:`serialize_row`."""
    values = []
    offset = 0
    for column in schema.columns:
        if column.kind == "int":
            values.append(_I64.unpack_from(data, offset)[0])
            offset += 8
        elif column.kind == "float":
            values.append(_F64.unpack_from(data, offset)[0])
            offset += 8
        else:
            length = _U16.unpack_from(data, offset)[0]
            offset += 2
            values.append(data[offset : offset + length].decode("utf-8"))
            offset += length
    if offset != len(data):
        raise StorageError(
            f"table {schema.name!r}: row has {len(data) - offset} trailing bytes"
        )
    return tuple(values)


def make_column_decoder(schema: TableSchema, positions):
    """Batch row decoder: ``decode(records) -> {position: [values...]}``.

    The returned ``decode`` turns a list of serialized rows (one flash
    page's records, already split by :func:`repro.storage.pager.
    unpack_records`) into typed column vectors for exactly the requested
    column ``positions`` — the unit of work of the columnar batch executor.
    Two properties make it cheap:

    * columns the query never touches are *skipped*, not materialized:
      fixed-width kinds advance the offset by 8, strings by their length
      prefix, with no value construction;
    * when every requested column sits before the first variable-length
      (string) column, its offset is page-constant and the walk is skipped
      entirely — one ``unpack_from`` per (row, column).

    Decoding a page once per query replaces the per-row
    :func:`deserialize_row` + per-access ``column_index`` work of the
    tuple-at-a-time path.
    """
    wanted = sorted(set(positions))
    if not all(0 <= p < len(schema.columns) for p in wanted):
        raise StorageError(
            f"table {schema.name!r}: column position out of range in {wanted}"
        )
    kinds = [column.kind for column in schema.columns]

    # Fixed offsets hold up to (and including) the first string column.
    fixed_offsets: list[int | None] = []
    offset: int | None = 0
    for kind in kinds:
        fixed_offsets.append(offset)
        if offset is None:
            continue
        offset = None if kind == "str" else offset + 8

    def _direct(position: int):
        """Decoder for one column at a page-constant offset."""
        kind = kinds[position]
        at = fixed_offsets[position]
        if kind == "int":
            unpack = _I64.unpack_from
            return lambda records: [unpack(r, at)[0] for r in records]
        if kind == "float":
            unpack = _F64.unpack_from
            return lambda records: [unpack(r, at)[0] for r in records]
        len_unpack = _U16.unpack_from

        def strings(records):
            out = []
            for r in records:
                (length,) = len_unpack(r, at)
                out.append(r[at + 2 : at + 2 + length].decode("utf-8"))
            return out

        return strings

    if all(fixed_offsets[p] is not None for p in wanted):
        per_column = [(p, _direct(p)) for p in wanted]

        def decode_fixed(records):
            return {p: col(records) for p, col in per_column}

        return decode_fixed

    # General case: walk each record, materializing only wanted columns.
    last_wanted = wanted[-1]
    wanted_set = frozenset(wanted)
    steps = [
        (i, kinds[i], i in wanted_set) for i in range(last_wanted + 1)
    ]

    def decode_walk(records):
        columns: dict[int, list] = {p: [] for p in wanted}
        for data in records:
            offset = 0
            for position, kind, keep in steps:
                if kind == "str":
                    (length,) = _U16.unpack_from(data, offset)
                    offset += 2
                    if keep:
                        columns[position].append(
                            data[offset : offset + length].decode("utf-8")
                        )
                    offset += length
                else:
                    if keep:
                        columns[position].append(
                            (_I64 if kind == "int" else _F64).unpack_from(
                                data, offset
                            )[0]
                        )
                    offset += 8
        return columns

    return decode_walk


def make_predicate_mask(schema: TableSchema, position: int, value):
    """Equality-predicate mask: ``mask(records) -> list[bool]``.

    The batch-executor counterpart of ``row[position] == value``: one bool
    per record, computed where possible by comparing the value's *encoded*
    form against the record bytes — no value materialization at all:

    * ``int`` columns with an ``int`` probe compare the 8 little-endian
      bytes directly (out-of-range probes match nothing, like ``==``);
    * ``str`` columns with a ``str`` probe compare the length-prefixed
      UTF-8 slice (bytes equality ⇔ string equality);
    * everything else — ``float`` columns (``-0.0 == 0.0`` but their bit
      patterns differ) and cross-kind probes — decodes the column via
      :func:`make_column_decoder` and falls back to Python ``==``.
    """
    if not 0 <= position < len(schema.columns):
        raise StorageError(
            f"table {schema.name!r}: column position {position} out of range"
        )
    kind = schema.columns[position].kind
    encoded: bytes | None = None

    def never(records):
        return [False] * len(records)

    never.needle = None
    if kind == "int" and isinstance(value, int):
        try:
            encoded = _I64.pack(value)
        except struct.error:
            return never
    elif kind == "str" and isinstance(value, str):
        probe = value.encode("utf-8")
        if len(probe) > 0xFFFF:
            return never
        encoded = _U16.pack(len(probe)) + probe

    if encoded is None:
        decode = make_column_decoder(schema, [position])

        def compare_decoded(records):
            return [v == value for v in decode(records)[position]]

        compare_decoded.needle = None
        return compare_decoded

    width = len(encoded)
    kinds = [column.kind for column in schema.columns]
    first_str = next(
        (i for i, k in enumerate(kinds) if k == "str"), len(kinds)
    )
    if position <= first_str:
        at = position * 8  # page-constant offset

        def compare_fixed(records):
            return [r[at : at + width] == encoded for r in records]

        compare_fixed.needle = encoded
        return compare_fixed

    # Walk to the column: fixed-width prefixes skip in one hop, strings
    # advance by their length prefix; nothing before it is materialized.
    skips = []  # (fixed bytes to skip, number of strings to hop)
    fixed = 0
    strings = 0
    for k in kinds[:position]:
        if k == "str":
            strings += 1
        elif strings:
            skips.append((fixed, strings))
            fixed, strings = 8, 0
        else:
            fixed += 8
    skips.append((fixed, strings))
    len_unpack = _U16.unpack_from

    def verify(r: bytes) -> bool:
        offset = 0
        for fixed_bytes, string_hops in skips:
            offset += fixed_bytes
            for _ in range(string_hops):
                offset += 2 + len_unpack(r, offset)[0]
        return r[offset : offset + width] == encoded

    # Prefilter at C speed: the encoded value must appear in the record
    # bytes (at its end, for the last column) for the row to match; the
    # Python offset walk then runs only on candidate rows, so a selective
    # predicate scans most of the page without any per-row decoding.
    if position == len(kinds) - 1:

        def compare_tail(records):
            return [r.endswith(encoded) and verify(r) for r in records]

        compare_tail.needle = encoded
        return compare_tail

    def compare_contains(records):
        return [encoded in r and verify(r) for r in records]

    compare_contains.needle = encoded
    return compare_contains


def encode_key(value) -> bytes:
    """Order-preserving byte encoding of an index key value.

    * ints map to offset-binary (sign bit flipped) big-endian, so unsigned
      byte order equals numeric order;
    * floats use the standard IEEE trick (flip sign bit for positives, all
      bits for negatives);
    * strings are UTF-8 (bytewise order = code-point order).
    """
    if isinstance(value, bool):
        raise StorageError("bool is not a supported key type")
    if isinstance(value, int):
        return b"\x01" + struct.pack(">Q", value + (1 << 63))
    if isinstance(value, float):
        bits = struct.unpack(">Q", struct.pack(">d", value))[0]
        if bits & (1 << 63):
            bits ^= 0xFFFFFFFFFFFFFFFF
        else:
            bits ^= 1 << 63
        return b"\x02" + struct.pack(">Q", bits)
    if isinstance(value, str):
        return b"\x03" + value.encode("utf-8")
    raise StorageError(f"unsupported key type {type(value).__name__}")


def decode_key(data: bytes):
    """Inverse of :func:`encode_key`."""
    tag, payload = data[0], data[1:]
    if tag == 1:
        return struct.unpack(">Q", payload)[0] - (1 << 63)
    if tag == 2:
        bits = struct.unpack(">Q", payload)[0]
        if bits & (1 << 63):
            bits ^= 1 << 63
        else:
            bits ^= 0xFFFFFFFFFFFFFFFF
        return struct.unpack(">d", struct.pack(">Q", bits))[0]
    if tag == 3:
        return payload.decode("utf-8")
    raise StorageError(f"unknown key tag {tag}")
