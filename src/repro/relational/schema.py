"""Relational schema definitions for the embedded database.

Schemas are declared once and shared by storage, indexes and the planner.
Foreign keys form the *schema tree* that Part II's Tselect/Tjoin generalized
indexes are defined over: a designated **root table** (e.g. LINEITEM in the
tutorial's TPCD-like example) references its ancestors through chains of
many-to-one foreign keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError

#: Supported column kinds and their Python types.
KINDS = {"int": int, "float": float, "str": str}


@dataclass(frozen=True)
class Column:
    """One typed column."""

    name: str
    kind: str  # 'int' | 'float' | 'str'

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise QueryError(
                f"column {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {sorted(KINDS)})"
            )

    def check_value(self, value):
        """Validate/coerce one value for this column."""
        expected = KINDS[self.kind]
        if self.kind == "float" and isinstance(value, int):
            return float(value)
        if not isinstance(value, expected):
            raise QueryError(
                f"column {self.name!r} expects {self.kind}, got "
                f"{type(value).__name__} ({value!r})"
            )
        return value


@dataclass(frozen=True)
class ForeignKey:
    """``column`` of this table references ``parent_table.parent_column``."""

    column: str
    parent_table: str
    parent_column: str


@dataclass
class TableSchema:
    """Schema of one table: ordered columns, optional PK, foreign keys."""

    name: str
    columns: list[Column]
    primary_key: str | None = None
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise QueryError(f"table {self.name!r}: duplicate column names")
        if self.primary_key is not None and self.primary_key not in names:
            raise QueryError(
                f"table {self.name!r}: primary key {self.primary_key!r} "
                "is not a column"
            )
        for fk in self.foreign_keys:
            if fk.column not in names:
                raise QueryError(
                    f"table {self.name!r}: foreign key column "
                    f"{fk.column!r} is not a column"
                )

    def column_index(self, name: str) -> int:
        for index, column in enumerate(self.columns):
            if column.name == name:
                return index
        raise QueryError(f"table {self.name!r} has no column {name!r}")

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]


class SchemaGraph:
    """All tables of a database plus the foreign-key graph between them."""

    def __init__(self, tables: list[TableSchema]) -> None:
        self.tables: dict[str, TableSchema] = {}
        for table in tables:
            if table.name in self.tables:
                raise QueryError(f"duplicate table {table.name!r}")
            self.tables[table.name] = table
        for table in tables:
            for fk in table.foreign_keys:
                parent = self.tables.get(fk.parent_table)
                if parent is None:
                    raise QueryError(
                        f"table {table.name!r}: foreign key references "
                        f"unknown table {fk.parent_table!r}"
                    )
                parent.column_index(fk.parent_column)  # validates

    def table(self, name: str) -> TableSchema:
        try:
            return self.tables[name]
        except KeyError:
            raise QueryError(f"unknown table {name!r}") from None

    def parents_of(self, name: str) -> list[ForeignKey]:
        return list(self.table(name).foreign_keys)

    def ancestry_paths(self, root: str) -> dict[str, list[ForeignKey]]:
        """FK path from ``root`` to every reachable ancestor table.

        Returns ``{ancestor_table: [fk, fk, ...]}`` where the list walks from
        the root upward. The root maps to the empty path. Used by Tselect and
        Tjoin construction, which need to resolve, for each root tuple, the
        unique ancestor tuple it (transitively) references.
        """
        paths: dict[str, list[ForeignKey]] = {root: []}
        frontier = [root]
        while frontier:
            current = frontier.pop()
            for fk in self.table(current).foreign_keys:
                if fk.parent_table not in paths:
                    paths[fk.parent_table] = paths[current] + [fk]
                    frontier.append(fk.parent_table)
        return paths
