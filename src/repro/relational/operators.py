"""Pipelined physical operators for select-project-join plans.

Everything here is a generator over **sorted root rowids** or joined rows:
no operator materializes more than its per-stream page buffers, which is how
the tutorial's execution plan runs a five-table join in a token's RAM.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.errors import QueryError
from repro.relational.table import TableStorage
from repro.relational.tjoin import TjoinIndex


def merge_intersect(streams: list[Iterable[int]]) -> Iterator[int]:
    """Intersection of ascending rowid streams, fully pipelined.

    Advances the lagging stream until all heads agree — the classic sorted
    merge; RAM is one head per stream.
    """
    if not streams:
        return
    iterators = [iter(stream) for stream in streams]
    heads: list[int | None] = [next(it, None) for it in iterators]
    while all(head is not None for head in heads):
        low, high = min(heads), max(heads)
        if low == high:
            yield low
            heads = [next(it, None) for it in iterators]
        else:
            for i, head in enumerate(heads):
                if head < high:
                    heads[i] = next(iterators[i], None)


def merge_union(streams: list[Iterable[int]]) -> Iterator[int]:
    """Deduplicated union of ascending rowid streams (for OR predicates)."""
    previous: int | None = None
    for rowid in heapq.merge(*streams):
        if rowid != previous:
            yield rowid
            previous = rowid


class JoinedRow:
    """One fully joined tuple, lazily readable per table."""

    __slots__ = ("_storages", "rowids", "_cache")

    def __init__(self, storages: dict[str, TableStorage], rowids: dict[str, int]):
        self._storages = storages
        self.rowids = rowids
        self._cache: dict[str, tuple] = {}

    def row(self, table: str) -> tuple:
        if table not in self._cache:
            if table not in self.rowids:
                raise QueryError(f"table {table!r} is not part of this join")
            self._cache[table] = self._storages[table].read(self.rowids[table])
        return self._cache[table]

    def value(self, table: str, column: str):
        storage = self._storages[table]
        return self.row(table)[storage.schema.column_index(column)]


def tjoin_materialize(
    root_rowids: Iterable[int],
    tjoin: TjoinIndex,
    storages: dict[str, TableStorage],
) -> Iterator[JoinedRow]:
    """Expand each root rowid into its joined row via the Tjoin index."""
    for root_rowid in root_rowids:
        yield JoinedRow(storages, tjoin.joined_rowids(root_rowid))


def filter_rows(
    rows: Iterable[JoinedRow],
    predicates: list[tuple[str, str, object]],
    storages: dict[str, TableStorage] | None = None,
) -> Iterator[JoinedRow]:
    """Apply residual conjunctive equality predicates in pipeline.

    With ``storages`` the column positions are resolved once up front
    instead of ``column_index`` per row per predicate.
    """
    if storages is None:
        for row in rows:
            if all(
                row.value(table, column) == value
                for table, column, value in predicates
            ):
                yield row
        return
    resolved = [
        (table, storages[table].schema.column_index(column), value)
        for table, column, value in predicates
    ]
    for row in rows:
        if all(
            row.row(table)[position] == value
            for table, position, value in resolved
        ):
            yield row


def project(
    rows: Iterable[JoinedRow],
    columns: list[tuple[str, str]],
    storages: dict[str, TableStorage] | None = None,
) -> Iterator[tuple]:
    """Emit the requested ``(table, column)`` values per joined row.

    With ``storages`` the column positions are resolved once up front
    instead of ``column_index`` per row per column.
    """
    if storages is None:
        for row in rows:
            yield tuple(row.value(table, column) for table, column in columns)
        return
    resolved = [
        (table, storages[table].schema.column_index(column))
        for table, column in columns
    ]
    for row in rows:
        yield tuple(row.row(table)[position] for table, position in resolved)
