"""GhostDB-style split queries: visible data outside, hidden data inside.

Part II cites GhostDB [SIG07] — *"querying visible and hidden data without
leaks"*: a table is split column-wise between an untrusted **visible** store
(a regular server; fast, big, curious) and the token's **hidden** store
(small, trusted). Queries mix predicates over both sides; the execution
must never hand the server a hidden value or a hidden predicate.

The plan is the classic one:

1. visible predicates run on the server → candidate rowids (the server
   learns the visible predicates and the candidate set — by design, that is
   the declared leak);
2. the token evaluates hidden predicates over the candidates *inside* its
   perimeter, using its own flash-resident hidden columns;
3. projection merges visible and hidden columns per surviving rowid.

:class:`LeakLedger` records everything the server observed, so tests can
assert the non-leak property instead of trusting the comment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.hardware.token import SecurePortableToken
from repro.relational.schema import Column, TableSchema
from repro.relational.table import TableStorage


@dataclass
class LeakLedger:
    """Everything the untrusted visible server saw."""

    predicates: list[tuple[str, object]] = field(default_factory=list)
    candidate_sets: list[int] = field(default_factory=list)  # sizes only
    values_seen: set = field(default_factory=set)

    def observed_any_of(self, secrets) -> bool:
        return any(secret in self.values_seen for secret in secrets)


class VisibleServer:
    """The untrusted half: plaintext visible columns, full scan power."""

    def __init__(self, columns: list[str]) -> None:
        self.columns = columns
        self.rows: list[tuple] = []
        self.ledger = LeakLedger()

    def insert(self, values: tuple) -> int:
        for value in values:
            self.ledger.values_seen.add(value)
        self.rows.append(values)
        return len(self.rows) - 1

    def select(self, predicates: list[tuple[str, object]]) -> list[int]:
        """Rowids matching conjunctive equality predicates (and log them)."""
        self.ledger.predicates.extend(predicates)
        positions = [
            (self.columns.index(column), value) for column, value in predicates
        ]
        matches = [
            rowid
            for rowid, row in enumerate(self.rows)
            if all(row[position] == value for position, value in positions)
        ]
        self.ledger.candidate_sets.append(len(matches))
        return matches

    def fetch(self, rowid: int, column: str):
        return self.rows[rowid][self.columns.index(column)]


class GhostDatabase:
    """One logical table split between a visible server and a token."""

    def __init__(
        self,
        token: SecurePortableToken,
        visible_columns: list[Column],
        hidden_columns: list[Column],
        name: str = "GHOST",
    ) -> None:
        if not visible_columns or not hidden_columns:
            raise QueryError("need at least one visible and one hidden column")
        overlap = {c.name for c in visible_columns} & {
            c.name for c in hidden_columns
        }
        if overlap:
            raise QueryError(f"columns on both sides: {sorted(overlap)}")
        self.token = token
        self.visible_names = [column.name for column in visible_columns]
        self.hidden_names = [column.name for column in hidden_columns]
        self.server = VisibleServer(self.visible_names)
        self._hidden = TableStorage(
            TableSchema(f"{name}:hidden", list(hidden_columns)),
            token.allocator,
        )
        self._row_count = 0

    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return self._row_count

    def insert(self, values: dict) -> int:
        """Insert one logical row; columns route to their side."""
        self.token.require_trusted()
        missing = (set(self.visible_names) | set(self.hidden_names)) - set(
            values
        )
        if missing:
            raise QueryError(f"missing columns: {sorted(missing)}")
        visible_row = tuple(values[name] for name in self.visible_names)
        hidden_row = tuple(values[name] for name in self.hidden_names)
        server_rowid = self.server.insert(visible_row)
        token_rowid = self._hidden.insert(hidden_row)
        assert server_rowid == token_rowid  # same logical rowid space
        self._row_count += 1
        return server_rowid

    def flush(self) -> None:
        self._hidden.flush()

    # ------------------------------------------------------------------
    def query(
        self,
        visible_where: list[tuple[str, object]],
        hidden_where: list[tuple[str, object]],
        project: list[str],
    ) -> list[tuple]:
        """Split execution: server narrows, token decides, rows merge."""
        self.token.require_trusted()
        self.flush()
        for column, _ in visible_where:
            if column not in self.visible_names:
                raise QueryError(f"{column!r} is not a visible column")
        for column, _ in hidden_where:
            if column not in self.hidden_names:
                raise QueryError(f"{column!r} is not a hidden column")
        for column in project:
            if (
                column not in self.visible_names
                and column not in self.hidden_names
            ):
                raise QueryError(f"unknown column {column!r}")

        # Phase 1: the server sees only visible predicates.
        if visible_where:
            candidates = self.server.select(visible_where)
        else:
            candidates = list(range(self._row_count))

        # Phase 2: hidden predicates evaluated inside the token.
        survivors = []
        hidden_positions = [
            (self._hidden.schema.column_index(column), value)
            for column, value in hidden_where
        ]
        for rowid in candidates:
            hidden_row = self._hidden.read(rowid)
            if all(
                hidden_row[position] == value
                for position, value in hidden_positions
            ):
                survivors.append(rowid)

        # Phase 3: merge projection per surviving rowid.
        results = []
        for rowid in survivors:
            row = []
            hidden_row = None
            for column in project:
                if column in self.visible_names:
                    row.append(self.server.fetch(rowid, column))
                else:
                    if hidden_row is None:
                        hidden_row = self._hidden.read(rowid)
                    row.append(
                        hidden_row[self._hidden.schema.column_index(column)]
                    )
            results.append(tuple(row))
        return results
