"""RAM-hungry baseline for SPJ queries: hash joins, no generalized indexes.

The tutorial's point about conventional join processing — *"join algorithms
consume lots of RAM"* — made measurable: this evaluator builds one RAM hash
table per non-root table (key -> row), charging every entry to a
:class:`RamArena`, then scans the root table probing the hashes. Results
match the pipelined Tselect/Tjoin plan exactly; the RAM high-water grows
linearly with the database while the pipelined plan's does not (E4).
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.hardware.ram import RamArena
from repro.relational.planner import Query
from repro.relational.schema import SchemaGraph
from repro.relational.table import TableStorage

#: Charged per hash-table entry: bucket slot + key + row pointer overhead.
_ENTRY_OVERHEAD = 24


def _row_bytes(row: tuple) -> int:
    total = _ENTRY_OVERHEAD
    for value in row:
        total += len(value.encode()) if isinstance(value, str) else 8
    return total


class HashJoinExecutor:
    """Scan-and-hash SPJ evaluation over plain table storage."""

    def __init__(
        self,
        schema: SchemaGraph,
        storages: dict[str, TableStorage],
        root_table: str,
        ram: RamArena,
    ) -> None:
        self.schema = schema
        self.storages = storages
        self.root_table = root_table
        self.ram = ram

    def execute(self, query: Query) -> list[tuple]:
        """Evaluate ``query`` with RAM hash tables; returns projected rows."""
        paths = self.schema.ancestry_paths(self.root_table)
        joined_tables = set(paths)
        for table, column, _ in query.filters:
            if table not in joined_tables:
                raise QueryError(f"table {table!r} not reachable from root")
            self.storages[table].schema.column_index(column)
        for table, column in query.projection:
            if table not in joined_tables:
                raise QueryError(f"table {table!r} not reachable from root")
            self.storages[table].schema.column_index(column)

        # Phase 1: hash every non-root table on its primary key, in RAM.
        hashes: dict[str, dict[object, tuple[int, tuple]]] = {}
        handle = self.ram.allocate(0, tag="hashjoin:tables")
        charged = 0
        try:
            for table_name in joined_tables - {self.root_table}:
                schema = self.schema.table(table_name)
                if schema.primary_key is None:
                    raise QueryError(
                        f"hash join needs a primary key on {table_name!r}"
                    )
                pk_position = schema.column_index(schema.primary_key)
                table_hash: dict[object, tuple[int, tuple]] = {}
                for rowid, row in self.storages[table_name].scan():
                    table_hash[row[pk_position]] = (rowid, row)
                    charged += _row_bytes(row)
                    self.ram.resize(handle, charged)
                hashes[table_name] = table_hash

            # Phase 2: scan the root table, probe upward, filter, project.
            results: list[tuple] = []
            for _, root_row in self.storages[self.root_table].scan():
                joined = self._assemble(root_row, hashes)
                if joined is None:
                    continue
                if all(
                    joined[t][self.schema.table(t).column_index(c)] == v
                    for t, c, v in query.filters
                ):
                    results.append(
                        tuple(
                            joined[t][self.schema.table(t).column_index(c)]
                            for t, c in query.projection
                        )
                    )
            return results
        finally:
            self.ram.free(handle)

    def _assemble(
        self,
        root_row: tuple,
        hashes: dict[str, dict[object, tuple[int, tuple]]],
    ) -> dict[str, tuple] | None:
        """Follow foreign keys from the root row through the hash tables."""
        joined: dict[str, tuple] = {self.root_table: root_row}
        frontier = [self.root_table]
        while frontier:
            table_name = frontier.pop()
            schema = self.schema.table(table_name)
            row = joined[table_name]
            for fk in schema.foreign_keys:
                key = row[schema.column_index(fk.column)]
                match = hashes[fk.parent_table].get(key)
                if match is None:
                    return None  # dangling FK: inner join drops the row
                if fk.parent_table not in joined:
                    joined[fk.parent_table] = match[1]
                    frontier.append(fk.parent_table)
        return joined
