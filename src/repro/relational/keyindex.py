"""The sequential key index: ``Keys`` log + ``Bloom Filters`` summary log.

This is the tutorial's "How to build an index in log structures?" slide:

* **Log1 — Keys**: a vertical partition of the indexed column, filled at
  tuple insertion time with ``(key, rowid)`` entries, strictly append-only;
* **Log2 — Bloom Filters**: one probabilistic summary (~2 bytes/key) per
  Keys page, appended when that page is flushed.

A lookup performs a *summary scan*: it reads the (small) Bloom log
sequentially and touches a Keys page only on a positive — so the cost is
``|Bloom log| IOs + one IO per (true or false) positive``, the
"17 IOs vs 640 IOs" arithmetic of experiment E1.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.relational.tuples import encode_key
from repro.storage import pager
from repro.storage.bloom import BloomFilter
from repro.storage.log import RecordLog

_ROWID = struct.Struct("<I")
_POSITION = struct.Struct("<I")


@dataclass
class LookupStats:
    """Page-read breakdown of one lookup (for the E1 bench)."""

    summary_pages: int = 0
    keys_pages: int = 0
    false_positive_pages: int = 0

    @property
    def total_pages(self) -> int:
        return self.summary_pages + self.keys_pages


def pack_entry(key_bytes: bytes, rowid: int) -> bytes:
    return _ROWID.pack(rowid) + key_bytes


def unpack_entry(record: bytes) -> tuple[bytes, int]:
    (rowid,) = _ROWID.unpack_from(record, 0)
    return record[_ROWID.size :], rowid


class KeyIndex:
    """Append-only selection index on one column of one table."""

    def __init__(
        self,
        name: str,
        allocator: BlockAllocator,
        bits_per_key: float = 16.0,
        ram: RamArena | None = None,
        epoch: int = 0,
    ) -> None:
        self.name = name
        self.bits_per_key = bits_per_key
        self.epoch = epoch
        self.keys = RecordLog(allocator, name=f"{name}:keys", ram=ram, epoch=epoch)
        self.summaries = RecordLog(
            allocator, name=f"{name}:bloom", ram=ram, epoch=epoch
        )
        self.keys.on_page_flush = self._summarize_page
        self._entry_count = 0
        self.last_lookup = LookupStats()

    @classmethod
    def remount(
        cls,
        session,
        name: str,
        epoch: int = 0,
        bits_per_key: float = 16.0,
        ram: RamArena | None = None,
    ) -> "KeyIndex":
        """Rebuild the index from a crash-recovery mount scan.

        Keys pages flush before their Bloom summaries (the summary is
        *created* by the keys flush), so a crash can leave durable keys
        pages whose summaries were still staged in RAM. Those summaries are
        recomputed here from the recovered page payloads — already in RAM
        from the scan, so the repair costs zero flash reads — and staged
        for the next summary flush exactly as on the live path.
        """
        index = cls.__new__(cls)
        index.name = name
        index.bits_per_key = bits_per_key
        index.epoch = epoch
        recovered_keys = session.claim(f"{name}:keys", epoch)
        recovered_blooms = session.claim(f"{name}:bloom", epoch)
        index.keys = RecordLog.remount(
            session.allocator, f"{name}:keys", recovered_keys, ram
        )
        index.summaries = RecordLog.remount(
            session.allocator, f"{name}:bloom", recovered_blooms, ram
        )
        index.keys.on_page_flush = index._summarize_page
        index._entry_count = len(index.keys)
        index.last_lookup = LookupStats()
        summarized = set()
        for page in recovered_blooms.pages:
            for record in pager.unpack_records(page.payload):
                summarized.add(_POSITION.unpack_from(record, 0)[0])
        for position, page in enumerate(recovered_keys.pages):
            if position not in summarized:
                index._summarize_page(
                    position, pager.unpack_records(page.payload)
                )
        return index

    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return self._entry_count

    @property
    def keys_pages(self) -> int:
        return self.keys.page_count

    @property
    def summary_pages(self) -> int:
        self.summaries.flush()
        return self.summaries.page_count

    def insert(self, value, rowid: int) -> None:
        """Index ``value -> rowid`` (called at tuple insertion)."""
        self.keys.append(pack_entry(encode_key(value), rowid))
        self._entry_count += 1

    def flush(self) -> None:
        self.keys.flush()
        self.summaries.flush()

    def _summarize_page(self, position: int, records: list[bytes]) -> None:
        bloom = BloomFilter.from_keys(
            [unpack_entry(record)[0] for record in records],
            bits_per_key=self.bits_per_key,
        )
        self.summaries.append(_POSITION.pack(position) + bloom.serialize())

    # ------------------------------------------------------------------
    def lookup(self, value) -> list[int]:
        """Rowids whose indexed value equals ``value`` (summary scan).

        Also records per-phase page counts in :attr:`last_lookup`.
        """
        key_bytes = encode_key(value)
        stats = LookupStats()
        rowids: list[int] = []

        # Phase 1: scan Bloom summaries, collect candidate Keys pages.
        candidates: list[int] = []
        for page_records in self.summaries.scan_pages():
            stats.summary_pages += 1
            for record in page_records:
                (position,) = _POSITION.unpack_from(record, 0)
                bloom = BloomFilter.deserialize(record[_POSITION.size :])
                if key_bytes in bloom:
                    candidates.append(position)
        # Summaries still staged in RAM cost no flash IO.
        for record in self.summaries.buffered_records():
            (position,) = _POSITION.unpack_from(record, 0)
            bloom = BloomFilter.deserialize(record[_POSITION.size :])
            if key_bytes in bloom:
                candidates.append(position)

        # Phase 2: probe candidate Keys pages.
        for position in candidates:
            if position >= self.keys.page_count:
                # A summary may outlive its keys page only via recovery
                # truncation; never probe past the durable prefix.
                continue
            stats.keys_pages += 1
            found = False
            for record in self._keys_page(position):
                entry_key, rowid = unpack_entry(record)
                if entry_key == key_bytes:
                    rowids.append(rowid)
                    found = True
            if not found:
                stats.false_positive_pages += 1

        # Phase 3: entries still in the Keys write buffer (RAM, no IO).
        for record in self.keys.buffered_records():
            entry_key, rowid = unpack_entry(record)
            if entry_key == key_bytes:
                rowids.append(rowid)

        self.last_lookup = stats
        return sorted(rowids)

    def _keys_page(self, position: int) -> list[bytes]:
        return self.keys.pages.read_records(position)

    # ------------------------------------------------------------------
    def scan_entries(self):
        """Yield every ``(key_bytes, rowid)`` in insertion order (for reorg)."""
        for _, record in self.keys.scan():
            yield unpack_entry(record)

    def drop(self) -> None:
        """Reclaim both logs (after a reorganization swap)."""
        self.keys.drop()
        self.summaries.drop()
