"""Planning of select-project-join queries over Tselect/Tjoin indexes.

The plan shape is fixed by the tutorial's execution-plan slide:

1. probe one **Tselect** per indexed predicate → ascending root-rowid streams;
2. **merge-intersect** the streams (pipelined, sorted rowids);
3. expand survivors through the **Tjoin** index;
4. apply residual (un-indexed) predicates, then project.

Predicates with no Tselect simply fall into step 4; with no indexed
predicate at all, step 1-2 degrade to a root-table rowid scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import QueryError
from repro.relational import operators
from repro.relational.table import TableStorage
from repro.relational.tjoin import TjoinIndex
from repro.relational.tselect import TselectIndex


@dataclass(frozen=True)
class Query:
    """A conjunctive select-project-join query anchored at the root table.

    ``filters`` are equality predicates ``(table, column, value)``;
    ``projection`` lists output columns ``(table, column)``.
    """

    filters: tuple[tuple[str, str, object], ...]
    projection: tuple[tuple[str, str], ...]

    @classmethod
    def build(cls, filters, projection) -> "Query":
        return cls(
            tuple((t, c, v) for t, c, v in filters),
            tuple((t, c) for t, c in projection),
        )


@dataclass
class PlanExplain:
    """What the planner decided — inspectable by tests and benches."""

    indexed_predicates: list[tuple[str, str, object]] = field(default_factory=list)
    residual_predicates: list[tuple[str, str, object]] = field(default_factory=list)
    root_scan: bool = False
    #: Rows per output batch under columnar execution; None = legacy path.
    batch_rows: int | None = None


def validate_query(
    query: Query,
    tjoin: TjoinIndex,
    storages: dict[str, TableStorage],
) -> None:
    """Reject queries referencing unknown/unreachable tables or columns."""
    reachable = set(tjoin.tables)
    for table, column, _ in query.filters:
        if table not in reachable:
            raise QueryError(
                f"filter table {table!r} is not joined to root "
                f"{tjoin.root_table!r}"
            )
        storages[table].schema.column_index(column)
    if not query.projection:
        raise QueryError("projection must name at least one column")
    for table, column in query.projection:
        if table not in reachable:
            raise QueryError(
                f"projected table {table!r} is not joined to root "
                f"{tjoin.root_table!r}"
            )
        storages[table].schema.column_index(column)


def plan(
    query: Query,
    tjoin: TjoinIndex,
    storages: dict[str, TableStorage],
    tselects: dict[tuple[str, str], TselectIndex],
) -> tuple[Iterator[tuple], PlanExplain]:
    """Build the pipelined iterator for ``query`` plus its explain record."""
    validate_query(query, tjoin, storages)
    explain = PlanExplain()
    streams = []
    for table, column, value in query.filters:
        tselect = tselects.get((table, column))
        if tselect is not None:
            explain.indexed_predicates.append((table, column, value))
            streams.append(tselect.stream(value))
        else:
            explain.residual_predicates.append((table, column, value))

    if streams:
        root_rowids: Iterator[int] = operators.merge_intersect(streams)
    else:
        explain.root_scan = True
        root_rowids = iter(range(storages[tjoin.root_table].row_count))

    rows = operators.tjoin_materialize(root_rowids, tjoin, storages)
    if explain.residual_predicates:
        rows = operators.filter_rows(
            rows, explain.residual_predicates, storages
        )
    return operators.project(rows, list(query.projection), storages), explain


def plan_batches(
    query: Query,
    tjoin: TjoinIndex,
    storages: dict[str, TableStorage],
    tselects: dict[tuple[str, str], TselectIndex],
    batch_rows: int,
) -> tuple[Iterator[list[tuple]], PlanExplain]:
    """Columnar twin of :func:`plan`: batches of projected tuples.

    Same plan shape, page accesses and results as :func:`plan` (see
    :mod:`repro.relational.batch`); differential tests run both and compare
    rows and IO counters bit-for-bit.
    """
    from repro.relational import batch

    return batch.build_batch_plan(query, tjoin, storages, tselects, batch_rows)
