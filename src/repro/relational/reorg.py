"""Log-only, interruptible index reorganization (Part II, "Scalability").

Transforms a sequential :class:`~repro.relational.keyindex.KeyIndex` into an
efficient :class:`~repro.relational.sortedindex.SortedKeyIndex`, under the
framework's rules:

1. **Sort** the ``(key, rowid)`` pairs into runs bounded by the RAM sort
   buffer; each run is written sequentially to a temporary log.
2. **Merge** the runs (multi-pass if the fan-in exceeds what one page of RAM
   per run allows), feeding the final pass straight into the
   :class:`SortedIndexBuilder`, which writes the ``Sorted Keys`` and ``Tree``
   logs sequentially.
3. Temporary logs are reclaimed on whole-block granularity.

The task is a **background, interruptible** process: :meth:`step` advances
one bounded unit of work, and until :meth:`steps`/:meth:`run` complete, the
source index remains fully queryable. Every write issued anywhere in the
process is a sequential log append — the flash simulator would raise
otherwise, which is what the E3 test relies on.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro import obs
from repro.errors import PowerLossError, StorageError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.relational.keyindex import KeyIndex, pack_entry, unpack_entry
from repro.relational.sortedindex import SortedIndexBuilder, SortedKeyIndex
from repro.storage.log import RecordLog


class ReorganizationTask:
    """One reorganization of one key index, advanced step by step."""

    def __init__(
        self,
        source: KeyIndex,
        allocator: BlockAllocator,
        ram: RamArena,
        sort_buffer_bytes: int = 8 * 1024,
        name: str = "reorg",
        epoch: int = 0,
    ) -> None:
        self.source = source
        self.allocator = allocator
        self.ram = ram
        self.sort_buffer_bytes = sort_buffer_bytes
        self.name = name
        self.epoch = epoch
        self.result: SortedKeyIndex | None = None
        self.completed_steps = 0
        self._page_size = allocator.flash.geometry.page_size
        # One page of RAM per merged run: the fan-in the budget affords.
        self.fan_in = max(2, sort_buffer_bytes // self._page_size)
        self._live_temps: list[RecordLog] = []
        self._builder: SortedIndexBuilder | None = None
        self._aborted = False
        self._generator = self._work()

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self.result is not None

    def step(self) -> bool:
        """Advance one unit of work; returns True while more remains."""
        if self.done or self._aborted:
            return False
        try:
            next(self._generator)
            self.completed_steps += 1
            return True
        except StopIteration:
            return False
        except PowerLossError:
            # Power is gone: nothing may touch the flash (abort() would
            # issue erases post-mortem). Recovery reclaims the temp blocks.
            self._aborted = True
            raise
        except Exception:
            # A failing step (e.g. flash exhaustion) must not strand
            # temporary logs: reclaim and re-raise for the caller.
            self.abort()
            raise

    def abort(self) -> None:
        """Cancel the reorganization, reclaiming every temporary block.

        The source index is untouched and stays fully queryable — aborting
        a background reorganization is always safe, which is what makes the
        "background / interruptible" promise of the slide honest.
        """
        if self._aborted or self.done:
            return
        self._aborted = True
        for run in self._live_temps:
            try:
                run.drop()
            except StorageError:
                pass  # already dropped
        self._live_temps.clear()
        if self._builder is not None:
            self._builder.sorted_log.drop()
            self._builder.tree_log.drop()
            self._builder = None

    def run(self) -> SortedKeyIndex:
        """Run to completion and return the new index."""
        while self.step():
            pass
        assert self.result is not None
        return self.result

    # ------------------------------------------------------------------
    def _work(self) -> Iterator[None]:
        runs = yield from self._sort_phase()
        while len(runs) > self.fan_in:
            runs = yield from self._merge_pass(runs)
        yield from self._final_merge(runs)

    def _sort_phase(self) -> Iterator[None]:
        """Cut the Keys log into sorted runs no larger than the sort buffer."""
        runs: list[RecordLog] = []
        buffer: list[tuple[bytes, int]] = []
        buffer_bytes = 0
        with self.ram.reservation(self.sort_buffer_bytes, tag=f"{self.name}:sort"):
            for key_bytes, rowid in self.source.scan_entries():
                entry_bytes = len(key_bytes) + 6
                if buffer and buffer_bytes + entry_bytes > self.sort_buffer_bytes:
                    runs.append(self._write_run(buffer, len(runs)))
                    buffer, buffer_bytes = [], 0
                    yield  # one interruptible unit: a run was produced
                buffer.append((key_bytes, rowid))
                buffer_bytes += entry_bytes
            if buffer:
                runs.append(self._write_run(buffer, len(runs)))
                yield
        return runs

    def _write_run(
        self, buffer: list[tuple[bytes, int]], index: int
    ) -> RecordLog:
        run = RecordLog(self.allocator, name=f"{self.name}:run{index}")
        self._live_temps.append(run)
        for key_bytes, rowid in sorted(buffer):
            run.append(pack_entry(key_bytes, rowid))
        run.flush()
        return run

    def _merge_pass(self, runs: list[RecordLog]) -> Iterator[None]:
        """Reduce the number of runs by merging groups of ``fan_in``."""
        merged: list[RecordLog] = []
        for start in range(0, len(runs), self.fan_in):
            group = runs[start : start + self.fan_in]
            target = RecordLog(
                self.allocator, name=f"{self.name}:pass{len(merged)}"
            )
            self._live_temps.append(target)
            with self.ram.reservation(
                len(group) * self._page_size, tag=f"{self.name}:merge"
            ):
                for key_bytes, rowid in self._merge_streams(group):
                    target.append(pack_entry(key_bytes, rowid))
            target.flush()
            for run in group:
                run.drop()
                self._live_temps.remove(run)
            merged.append(target)
            yield  # one interruptible unit: one group merged
        return merged

    def _final_merge(self, runs: list[RecordLog]) -> Iterator[None]:
        """Merge the last runs directly into the sorted index builder."""
        builder = SortedIndexBuilder(
            self.allocator, name=self.name, epoch=self.epoch
        )
        self._builder = builder
        with self.ram.reservation(
            max(1, len(runs)) * self._page_size, tag=f"{self.name}:finalmerge"
        ):
            emitted = 0
            for key_bytes, rowid in self._merge_streams(runs):
                builder.add(key_bytes, rowid)
                emitted += 1
                if emitted % 1024 == 0:
                    yield  # keep the final pass interruptible too
        for run in runs:
            run.drop()
            self._live_temps.remove(run)
        self.result = builder.finish()
        self._builder = None
        yield

    @staticmethod
    def _merge_streams(runs: list[RecordLog]):
        """K-way merge of sorted run logs by ``(key, rowid)``."""
        streams = [
            ((unpack_entry(record)) for _, record in run.scan()) for run in runs
        ]
        return heapq.merge(*streams)


def reorganize(
    source: KeyIndex,
    allocator: BlockAllocator,
    ram: RamArena,
    sort_buffer_bytes: int = 8 * 1024,
    name: str = "reorg",
    epoch: int = 0,
) -> SortedKeyIndex:
    """Convenience wrapper: run a full reorganization in one call.

    The caller owns the swap: after this returns, queries should be routed
    to the new index and ``source.drop()`` reclaims the old logs. For a
    swap that survives power loss at any instant, use
    :func:`reorganize_durably` instead.
    """
    if sort_buffer_bytes <= 0:
        raise StorageError("sort buffer must be positive")
    task = ReorganizationTask(
        source,
        allocator,
        ram,
        sort_buffer_bytes=sort_buffer_bytes,
        name=name,
        epoch=epoch,
    )
    with obs.span(
        "reorg", index=name, sort_buffer_bytes=sort_buffer_bytes
    ) as span:
        index = task.run()
        span.set(entries=index.entry_count)
    return index


def reorganize_durably(
    source: KeyIndex,
    allocator: BlockAllocator,
    ram: RamArena,
    manifest,
    sort_buffer_bytes: int = 8 * 1024,
    name: str | None = None,
) -> tuple[SortedKeyIndex, KeyIndex]:
    """Crash-atomic reorganization swap, sequenced through the manifest.

    The order is the whole trick::

        build new epoch E+1   (crash here: E+1 never committed -> recovery
                               garbage-collects it, keeps the source)
        commit record to the manifest
                              (torn commit page: same as above; durable
                               commit: the swap has happened)
        drop the source       (crash mid-drop: recovery sees the commit,
                               erases whatever the drop left behind)

    Recovery therefore always lands on exactly one consistent epoch.
    Returns the new sorted index plus a fresh delta :class:`KeyIndex` (same
    logical name, new epoch) for subsequent insertions — the pair
    :func:`remount_index` reconstructs after a crash.
    """
    name = name or source.name
    epoch = max(manifest.committed_epoch(name, default=0), source.epoch) + 1
    index = reorganize(
        source,
        allocator,
        ram,
        sort_buffer_bytes=sort_buffer_bytes,
        name=name,
        epoch=epoch,
    )
    manifest.append("reorg-commit", name=name, epoch=epoch)
    source.drop()
    delta = KeyIndex(
        name,
        allocator,
        bits_per_key=source.bits_per_key,
        ram=ram,
        epoch=epoch,
    )
    return index, delta


def remount_index(
    session,
    manifest,
    name: str,
    bits_per_key: float = 16.0,
    ram: RamArena | None = None,
) -> tuple[SortedKeyIndex | None, KeyIndex]:
    """Recover the ``(sorted, delta)`` index pair for one logical name.

    The manifest's last ``reorg-commit`` for ``name`` selects the live
    epoch: its sorted/tree logs are remounted (None if no reorganization
    ever committed) and the delta key index is remounted under the same
    epoch. Every other incarnation's blocks stay unclaimed and are erased
    by ``session.finish()``.
    """
    epoch = manifest.committed_epoch(name, default=0)
    sorted_index = (
        SortedKeyIndex.remount(session, name, epoch) if epoch > 0 else None
    )
    delta = KeyIndex.remount(
        session, name, epoch=epoch, bits_per_key=bits_per_key, ram=ram
    )
    return sorted_index, delta
