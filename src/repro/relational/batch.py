"""Columnar batch execution for select-project-join plans.

The legacy pipeline in :mod:`repro.relational.operators` is tuple-at-a-time:
every surviving root rowid allocates a ``JoinedRow``, every predicate or
projected column re-resolves ``column_index`` and re-deserializes the whole
row with one ``struct.unpack_from`` per value. Now that flash reads are
cached and attributed, that Python-per-row cost dominates query wall-clock.

This module keeps the *plan* — Tselect probes, sorted-rowid intersection,
Tjoin expansion, residual filters, projection — but runs it over **decoded
page batches**:

* Tselect posting lists come back as int lists (:meth:`SortedKeyIndex.
  lookup_batch`) and are intersected with set operations instead of a
  generator merge;
* every page the plan touches is decoded **once per query** into typed
  column vectors (:func:`repro.relational.tuples.make_column_decoder`,
  ancestor-log tuples, address pairs) and memoized in per-query dicts;
* rows are emitted in batches of ``batch_rows`` projected tuples.

The simulated cost model is untouched by construction: the executor replays
the legacy page-access sequence row-major — ancestor probe first (eager,
even for rows a residual later drops), then residual reads in predicate
order with short-circuit, then projection reads in projection order, first
touch per (row, table) — and every access still goes through
``PageLog.read_decoded(..., memo=...)``, which pays the same cache-lookup or
flash-read as the legacy reader before consulting the memo. Batches form
only over pages the plan already reads; ``flash_page_reads``, cache
hit/miss counts and obs spans are identical to the legacy path, and so are
the result rows.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.relational.planner import PlanExplain, Query, validate_query
from repro.relational.table import TableStorage
from repro.relational.tjoin import TjoinIndex
from repro.relational.tselect import TselectIndex
from repro.relational.tuples import make_column_decoder
from repro.storage import pager

#: Default rows per output batch. At 8 bytes per buffered row slot this is
#: 512 B — no larger than one flash page, so the batch pipeline reservation
#: equals the legacy ``(streams + 1) * page_size`` charge by default.
DEFAULT_BATCH_ROWS = 64

_ADDRESS = struct.Struct("<IH")  # page position, slot (table.py layout)


def intersect_sorted(postings: list[list[int]]) -> list[int]:
    """Intersection of ascending duplicate-free rowid lists, ascending.

    Set-based replacement for :func:`operators.merge_intersect`: on sorted
    unique posting lists the results are identical, without advancing one
    head at a time through Python generator machinery.
    """
    if not postings:
        return []
    smallest = min(postings, key=len)
    survivors = set(smallest)
    for posting in postings:
        if posting is not smallest:
            survivors.intersection_update(posting)
            if not survivors:
                return []
    return sorted(survivors)


def union_sorted(postings: list[list[int]]) -> list[int]:
    """Deduplicated union of ascending rowid lists, ascending.

    Set-based replacement for :func:`operators.merge_union` (OR streams).
    """
    out: set[int] = set()
    for posting in postings:
        out.update(posting)
    return sorted(out)


class TableGather:
    """Per-query columnar gather over one table's address + data logs.

    ``fetch(rowid)`` issues exactly the page accesses ``TableStorage.read``
    would — the rowid's address page, then its data page, in that order —
    but decodes each page once into the requested column vectors and keeps
    the decoded form in per-query memos, so subsequent rowids landing on
    the same pages cost dictionary lookups instead of re-deserialization.
    """

    __slots__ = (
        "storage",
        "_decode_columns",
        "_addr_memo",
        "_data_memo",
        "_addresses_per_page",
    )

    def __init__(self, storage: TableStorage, positions: list[int]) -> None:
        self.storage = storage
        self._decode_columns = make_column_decoder(storage.schema, positions)
        self._addr_memo: dict = {}
        self._data_memo: dict = {}
        self._addresses_per_page = storage.addresses_per_page

    def _decode_addr_page(self, page: bytes) -> list[tuple[int, int]]:
        unpack = _ADDRESS.unpack
        return [unpack(record) for record in pager.unpack_records(page)]

    def _decode_data_page(self, page: bytes) -> dict[int, list]:
        return self._decode_columns(pager.unpack_records(page))

    def fetch(self, rowid: int) -> tuple[dict[int, list], int]:
        """Columns of the data page holding ``rowid`` + the row's slot."""
        addresses = self.storage.addresses
        position, slot = (
            rowid // self._addresses_per_page,
            rowid % self._addresses_per_page,
        )
        if position == addresses.page_count:
            # Address record still in the RAM write buffer: no page access,
            # exactly like RecordLog.read on the buffered position.
            try:
                entries = self._addr_memo["buffer"]
            except KeyError:
                unpack = _ADDRESS.unpack
                entries = self._addr_memo["buffer"] = [
                    unpack(record) for record in addresses.buffered_records()
                ]
        else:
            entries = addresses.pages.read_decoded(
                position, self._decode_addr_page, memo=self._addr_memo
            )
        data_position, data_slot = entries[slot]

        data = self.storage.data
        if data_position == data.page_count:
            try:
                columns = self._data_memo["buffer"]
            except KeyError:
                columns = self._data_memo["buffer"] = self._decode_columns(
                    data.buffered_records()
                )
        else:
            columns = data.pages.read_decoded(
                data_position, self._decode_data_page, memo=self._data_memo
            )
        return columns, data_slot


def build_batch_plan(
    query: Query,
    tjoin: TjoinIndex,
    storages: dict[str, TableStorage],
    tselects: dict[tuple[str, str], TselectIndex],
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> tuple[Iterator[list[tuple]], PlanExplain]:
    """Columnar counterpart of :func:`repro.relational.planner.plan`.

    Returns an iterator of **batches** (lists of at most ``batch_rows``
    projected tuples) plus the same :class:`PlanExplain` the legacy planner
    would produce (with ``batch_rows`` recorded). Differential harnesses
    run both and compare rows and IO counters.
    """
    if batch_rows <= 0:
        raise ValueError(f"batch_rows must be positive, got {batch_rows}")
    validate_query(query, tjoin, storages)
    explain = PlanExplain(batch_rows=batch_rows)
    postings: list[list[int]] = []
    for table, column, value in query.filters:
        tselect = tselects.get((table, column))
        if tselect is not None:
            explain.indexed_predicates.append((table, column, value))
            postings.append(tselect.lookup_batch(value))
        else:
            explain.residual_predicates.append((table, column, value))

    if postings:
        root_rowids: list[int] | range = intersect_sorted(postings)
    else:
        explain.root_scan = True
        root_rowids = range(storages[tjoin.root_table].row_count)

    batches = _execute(
        root_rowids,
        tjoin,
        storages,
        explain.residual_predicates,
        list(query.projection),
        batch_rows,
    )
    return batches, explain


def _execute(
    root_rowids,
    tjoin: TjoinIndex,
    storages: dict[str, TableStorage],
    residuals: list[tuple[str, str, object]],
    projection: list[tuple[str, str]],
    batch_rows: int,
) -> Iterator[list[tuple]]:
    """Row-major batch executor (see module docstring for the IO contract)."""
    root_table = tjoin.root_table
    ancestors = tjoin.ancestors
    has_ancestors = bool(ancestors.ancestor_tables)
    ancestor_slot = {name: i for i, name in enumerate(ancestors.ancestor_tables)}

    # Union of columns each table contributes, one gather per table.
    needed: dict[str, set[int]] = {}
    for table, column, _ in residuals:
        position = storages[table].schema.column_index(column)
        needed.setdefault(table, set()).add(position)
    for table, column in projection:
        position = storages[table].schema.column_index(column)
        needed.setdefault(table, set()).add(position)
    gathers = {
        table: TableGather(storages[table], sorted(positions))
        for table, positions in needed.items()
    }
    resolved_residuals = [
        (table, storages[table].schema.column_index(column), value)
        for table, column, value in residuals
    ]
    resolved_projection = [
        (table, storages[table].schema.column_index(column))
        for table, column in projection
    ]

    ancestor_memo: dict = {}
    batch: list[tuple] = []
    for root_rowid in root_rowids:
        # Eager Tjoin expansion, like operators.tjoin_materialize.
        if has_ancestors:
            joined = ancestors.get_tuple(root_rowid, ancestor_memo)
        else:
            joined = ()
        # First touch per (row, table), like JoinedRow's per-row cache.
        row_pages: dict[str, tuple[dict[int, list], int]] = {}

        keep = True
        for table, position, value in resolved_residuals:
            entry = row_pages.get(table)
            if entry is None:
                rowid = (
                    root_rowid
                    if table == root_table
                    else joined[ancestor_slot[table]]
                )
                entry = row_pages[table] = gathers[table].fetch(rowid)
            columns, slot = entry
            if columns[position][slot] != value:
                keep = False
                break
        if not keep:
            continue

        out_row = []
        for table, position in resolved_projection:
            entry = row_pages.get(table)
            if entry is None:
                rowid = (
                    root_rowid
                    if table == root_table
                    else joined[ancestor_slot[table]]
                )
                entry = row_pages[table] = gathers[table].fetch(rowid)
            columns, slot = entry
            out_row.append(columns[position][slot])
        batch.append(tuple(out_row))
        if len(batch) >= batch_rows:
            yield batch
            batch = []
    if batch:
        yield batch
