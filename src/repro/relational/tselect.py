"""Tselect: selection indexes that return *root-table* rowids.

    *"Each key of the index contains the rowids of the schema query root
    table referring to that key"*

A Tselect on ``CUSTOMER.Mktsegment`` for root table ``LINEITEM`` maps each
segment value to the sorted list of LINEITEM rowids whose (transitive)
CUSTOMER ancestor carries that value. Because rowid lists come back sorted,
several Tselect streams can be intersected by a pipelined merge — the
"sorted row ids!" remark on the execution-plan slide.

Construction is a bulk pass: scan the root table's ancestor log in rowid
order, fetch the indexed column of the referenced ancestor tuple, feed
``(value, root_rowid)`` into a sequential key index, and reorganize it into
a :class:`SortedKeyIndex` (log-only, as always). Entries inserted in root
rowid order guarantee each key's posting list is ascending.
"""

from __future__ import annotations

from typing import Iterator

from repro import obs
from repro.errors import QueryError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.relational.keyindex import KeyIndex
from repro.relational.reorg import reorganize
from repro.relational.sortedindex import SortedKeyIndex
from repro.relational.table import TableStorage
from repro.relational.tjoin import TjoinIndex


class TselectIndex:
    """Selection index on ``via_table.column``, keyed to root rowids."""

    def __init__(
        self,
        root_table: str,
        via_table: str,
        column: str,
        index: SortedKeyIndex,
    ) -> None:
        self.root_table = root_table
        self.via_table = via_table
        self.column = column
        self._index = index

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        via_table: str,
        column: str,
        tjoin: TjoinIndex,
        storages: dict[str, TableStorage],
        allocator: BlockAllocator,
        ram: RamArena,
        sort_buffer_bytes: int = 8 * 1024,
    ) -> "TselectIndex":
        """Bulk-build over the current contents of the root table."""
        root_table = tjoin.root_table
        if via_table not in tjoin.tables:
            raise QueryError(
                f"table {via_table!r} is not reachable from root "
                f"{root_table!r}"
            )
        storage = storages[via_table]
        column_index = storage.schema.column_index(column)

        staging = KeyIndex(
            f"tselect:{via_table}.{column}:staging", allocator, ram=None
        )
        root_rows = storages[root_table].row_count
        for root_rowid in range(root_rows):
            if via_table == root_table:
                via_rowid = root_rowid
            else:
                via_rowid = tjoin.joined_rowids(root_rowid)[via_table]
            value = storage.read(via_rowid)[column_index]
            staging.insert(value, root_rowid)
        staging.flush()
        index = reorganize(
            staging,
            allocator,
            ram,
            sort_buffer_bytes=sort_buffer_bytes,
            name=f"tselect:{via_table}.{column}",
        )
        staging.drop()
        return cls(root_table, via_table, column, index)

    # ------------------------------------------------------------------
    def lookup(self, value) -> list[int]:
        """Sorted root rowids whose ``via_table.column`` equals ``value``."""
        with obs.span(
            "tselect.probe",
            index=f"{self.via_table}.{self.column}",
            value=str(value),
        ) as span:
            rowids = self._index.lookup(value)
            span.set(
                rowids=len(rowids),
                tree_pages=self._index.last_lookup.tree_pages,
                sorted_pages=self._index.last_lookup.sorted_pages,
            )
        return rowids

    def lookup_batch(self, value) -> list[int]:
        """Batch-path :meth:`lookup`: same span, tags and page reads.

        Delegates to :meth:`SortedKeyIndex.lookup_batch`, whose bisect-based
        run extraction replaces per-record entry decoding; the posting list,
        probe span and IO accounting are identical to the legacy path.
        """
        with obs.span(
            "tselect.probe",
            index=f"{self.via_table}.{self.column}",
            value=str(value),
        ) as span:
            rowids = self._index.lookup_batch(value)
            span.set(
                rowids=len(rowids),
                tree_pages=self._index.last_lookup.tree_pages,
                sorted_pages=self._index.last_lookup.sorted_pages,
            )
        return rowids

    def stream(self, value) -> Iterator[int]:
        """Streaming variant of :meth:`lookup` for pipelined intersection."""
        return iter(self.lookup(value))

    @property
    def entry_count(self) -> int:
        return self._index.entry_count

    @property
    def last_lookup_pages(self) -> int:
        return self._index.last_lookup.total_pages

    def drop(self) -> None:
        self._index.drop()
