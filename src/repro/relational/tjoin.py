"""Tjoin: the generalized join index of Part II's SQL illustration.

    *"each rowid of the root table contains the rowids of the tuples it
    refers to in the subtree"*

For every table with foreign keys we keep an **ancestor log**: a sequential
log with one fixed-size record per rowid, holding the rowids of the unique
tuple this row (transitively) references in each ancestor table. The log is
filled *incrementally at insertion time* — resolving each direct foreign key
through the parent's primary-key index and inheriting the parent's own
ancestor record — so maintaining it costs one key lookup per foreign key per
insert and never requires a RAM-resident join.

The Tjoin index of the query root table is exactly its ancestor log: given a
root rowid, one page read returns the rowids of every joined tuple, which is
what lets select-project-join plans run in pipeline over sorted root rowids.
"""

from __future__ import annotations

import struct

from repro import obs
from repro.errors import StorageError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.storage.log import RecordAddress, RecordLog

_ROWID = struct.Struct("<I")


class AncestorLog:
    """rowid -> {ancestor table: ancestor rowid}, as fixed-size records."""

    def __init__(
        self,
        table: str,
        ancestor_tables: list[str],
        allocator: BlockAllocator,
        ram: RamArena | None = None,
    ) -> None:
        self.table = table
        #: Ancestor tables in a fixed, sorted order defining record layout.
        self.ancestor_tables = sorted(ancestor_tables)
        self.log = RecordLog(allocator, name=f"{table}:ancestors", ram=ram)
        self._record_size = _ROWID.size * len(self.ancestor_tables)
        self._row_count = 0

    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return self._row_count

    def append(self, ancestors: dict[str, int]) -> None:
        """Record the ancestors of the next rowid (in insertion order)."""
        if set(ancestors) != set(self.ancestor_tables):
            raise StorageError(
                f"table {self.table!r}: ancestor record must cover exactly "
                f"{self.ancestor_tables}, got {sorted(ancestors)}"
            )
        record = b"".join(
            _ROWID.pack(ancestors[name]) for name in self.ancestor_tables
        )
        self.log.append(record)
        self._row_count += 1

    def get(self, rowid: int) -> dict[str, int]:
        """Ancestor rowids of ``rowid`` (one address computation, one read)."""
        if not 0 <= rowid < self._row_count:
            raise StorageError(
                f"table {self.table!r}: no ancestor record for rowid {rowid}"
            )
        per_page = (self.log.pages.page_size - 2) // (2 + self._record_size)
        with obs.span("tjoin.probe", table=self.table, rowid=rowid):
            record = self.log.read(
                RecordAddress(position=rowid // per_page, slot=rowid % per_page)
            )
        return {
            name: _ROWID.unpack_from(record, i * _ROWID.size)[0]
            for i, name in enumerate(self.ancestor_tables)
        }

    def flush(self) -> None:
        self.log.flush()


class TjoinIndex:
    """Root-table view of the ancestor log — the paper's Tjoin.

    Thin façade so plans read ``tjoin.joined_rowids(root_rowid)`` and get
    every table of the subtree, root included.
    """

    def __init__(self, root_table: str, ancestors: AncestorLog) -> None:
        self.root_table = root_table
        self.ancestors = ancestors

    @property
    def tables(self) -> list[str]:
        """All tables a joined row covers (root first, then ancestors)."""
        return [self.root_table] + self.ancestors.ancestor_tables

    def joined_rowids(self, root_rowid: int) -> dict[str, int]:
        """rowids of the full joined tuple anchored at ``root_rowid``."""
        joined = {self.root_table: root_rowid}
        joined.update(self.ancestors.get(root_rowid))
        return joined
