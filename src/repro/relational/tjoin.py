"""Tjoin: the generalized join index of Part II's SQL illustration.

    *"each rowid of the root table contains the rowids of the tuples it
    refers to in the subtree"*

For every table with foreign keys we keep an **ancestor log**: a sequential
log with one fixed-size record per rowid, holding the rowids of the unique
tuple this row (transitively) references in each ancestor table. The log is
filled *incrementally at insertion time* — resolving each direct foreign key
through the parent's primary-key index and inheriting the parent's own
ancestor record — so maintaining it costs one key lookup per foreign key per
insert and never requires a RAM-resident join.

The Tjoin index of the query root table is exactly its ancestor log: given a
root rowid, one page read returns the rowids of every joined tuple, which is
what lets select-project-join plans run in pipeline over sorted root rowids.
"""

from __future__ import annotations

import struct

from repro import obs
from repro.errors import StorageError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.storage.log import RecordAddress, RecordLog

_ROWID = struct.Struct("<I")


class AncestorLog:
    """rowid -> {ancestor table: ancestor rowid}, as fixed-size records."""

    def __init__(
        self,
        table: str,
        ancestor_tables: list[str],
        allocator: BlockAllocator,
        ram: RamArena | None = None,
    ) -> None:
        self.table = table
        #: Ancestor tables in a fixed, sorted order defining record layout.
        self.ancestor_tables = sorted(ancestor_tables)
        self.log = RecordLog(allocator, name=f"{table}:ancestors", ram=ram)
        self._record_size = _ROWID.size * len(self.ancestor_tables)
        self._record = struct.Struct("<%dI" % len(self.ancestor_tables))
        self._row_count = 0

    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return self._row_count

    def append(self, ancestors: dict[str, int]) -> None:
        """Record the ancestors of the next rowid (in insertion order)."""
        if set(ancestors) != set(self.ancestor_tables):
            raise StorageError(
                f"table {self.table!r}: ancestor record must cover exactly "
                f"{self.ancestor_tables}, got {sorted(ancestors)}"
            )
        record = b"".join(
            _ROWID.pack(ancestors[name]) for name in self.ancestor_tables
        )
        self.log.append(record)
        self._row_count += 1

    def get(self, rowid: int) -> dict[str, int]:
        """Ancestor rowids of ``rowid`` (one address computation, one read)."""
        if not 0 <= rowid < self._row_count:
            raise StorageError(
                f"table {self.table!r}: no ancestor record for rowid {rowid}"
            )
        per_page = (self.log.pages.page_size - 2) // (2 + self._record_size)
        with obs.span("tjoin.probe", table=self.table, rowid=rowid):
            record = self.log.read(
                RecordAddress(position=rowid // per_page, slot=rowid % per_page)
            )
        return {
            name: _ROWID.unpack_from(record, i * _ROWID.size)[0]
            for i, name in enumerate(self.ancestor_tables)
        }

    @property
    def records_per_page(self) -> int:
        """Fixed-size ancestor records packed per log page."""
        return (self.log.pages.page_size - 2) // (2 + self._record_size)

    def _decode_page(self, page: bytes) -> list[tuple[int, ...]]:
        """Decode one log page into ancestor-rowid tuples, slot order."""
        from repro.storage import pager

        unpack = self._record.unpack
        return [unpack(record) for record in pager.unpack_records(page)]

    def get_tuple(self, rowid: int, memo: dict) -> tuple[int, ...]:
        """Batch-path :meth:`get`: ancestor rowids in ``ancestor_tables`` order.

        Issues the exact page access :meth:`get` would (same address
        computation, same ``tjoin.probe`` span per row), but memoizes the
        decoded page in the caller-owned ``memo`` so repeated probes into
        one page decode it once per query instead of once per row.
        """
        if not 0 <= rowid < self._row_count:
            raise StorageError(
                f"table {self.table!r}: no ancestor record for rowid {rowid}"
            )
        per_page = self.records_per_page
        position, slot = rowid // per_page, rowid % per_page
        with obs.span("tjoin.probe", table=self.table, rowid=rowid):
            if position == self.log.page_count:
                # Record still in the RAM write buffer: no page access,
                # exactly like RecordLog.read on the buffered position.
                key = ("buffer", position)
                try:
                    decoded = memo[key]
                except KeyError:
                    unpack = self._record.unpack
                    decoded = memo[key] = [
                        unpack(record)
                        for record in self.log.buffered_records()
                    ]
            else:
                decoded = self.log.pages.read_decoded(
                    position, self._decode_page, memo=memo
                )
        if slot >= len(decoded):
            raise StorageError(
                f"log {self.log.name!r}: slot {slot} out of range on page "
                f"{position}"
            )
        return decoded[slot]

    def flush(self) -> None:
        self.log.flush()


class TjoinIndex:
    """Root-table view of the ancestor log — the paper's Tjoin.

    Thin façade so plans read ``tjoin.joined_rowids(root_rowid)`` and get
    every table of the subtree, root included.
    """

    def __init__(self, root_table: str, ancestors: AncestorLog) -> None:
        self.root_table = root_table
        self.ancestors = ancestors

    @property
    def tables(self) -> list[str]:
        """All tables a joined row covers (root first, then ancestors)."""
        return [self.root_table] + self.ancestors.ancestor_tables

    def joined_rowids(self, root_rowid: int) -> dict[str, int]:
        """rowids of the full joined tuple anchored at ``root_rowid``."""
        joined = {self.root_table: root_rowid}
        if self.ancestors.ancestor_tables:
            joined.update(self.ancestors.get(root_rowid))
        return joined
