"""Embedded relational engine (Part II, second illustration).

SQL-style select-project-join processing inside a secure token: sequential
Keys+Bloom indexes, log-only reorganization into B-tree-like structures,
Tselect/Tjoin generalized indexes and a pipelined executor — plus the
RAM-hungry hash-join baseline the tutorial contrasts them with.
"""

from repro.relational.baseline import HashJoinExecutor
from repro.relational.keyindex import KeyIndex, LookupStats
from repro.relational.planner import PlanExplain, Query
from repro.relational.query import EmbeddedDatabase, ExecutionStats
from repro.relational.reorg import (
    ReorganizationTask,
    remount_index,
    reorganize,
    reorganize_durably,
)
from repro.relational.schema import Column, ForeignKey, SchemaGraph, TableSchema
from repro.relational.sortedindex import SortedIndexBuilder, SortedKeyIndex
from repro.relational.table import TableStorage
from repro.relational.tjoin import AncestorLog, TjoinIndex
from repro.relational.tselect import TselectIndex

__all__ = [
    "AncestorLog",
    "Column",
    "EmbeddedDatabase",
    "ExecutionStats",
    "ForeignKey",
    "HashJoinExecutor",
    "KeyIndex",
    "LookupStats",
    "PlanExplain",
    "Query",
    "ReorganizationTask",
    "SchemaGraph",
    "SortedIndexBuilder",
    "SortedKeyIndex",
    "TableSchema",
    "TableStorage",
    "TjoinIndex",
    "TselectIndex",
    "remount_index",
    "reorganize",
    "reorganize_durably",
]
