"""The reorganized index: ``Sorted Keys`` log + ``Tree`` log.

Output of the tutorial's reorganization slide — *"Result: efficient B-Tree
like index"* — with the defining restriction that both logs are written
strictly sequentially:

* the **Sorted Keys** log holds every ``(key, rowid)`` pair in ascending key
  order, packed into pages;
* the **Tree** log holds a hierarchy built bottom-up over those pages: each
  node entry is ``(max key of child, child position)``; level *i* is written
  (sequentially) after level *i-1*; the root is the last page written.

Lookups descend root → leaf in O(height) page reads, then scan as many leaf
pages as the duplicate run spans. The index is immutable once built; new
insertions go to a fresh sequential :class:`~repro.relational.keyindex.KeyIndex`
until the next reorganization (see :mod:`repro.relational.reorg`).
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from operator import itemgetter

# Entries are ``rowid (4 bytes) + key bytes`` (see keyindex.pack_entry);
# slicing off the prefix compares keys without decoding rowids.
_ENTRY_KEY = itemgetter(slice(4, None))
_ENTRY_ROWID = struct.Struct("<I")

from repro.errors import RecoveryError, StorageError
from repro.hardware.flash import BlockAllocator
from repro.relational.keyindex import pack_entry, unpack_entry
from repro.relational.tuples import encode_key
from repro.storage import pager
from repro.storage.log import PageLog


@dataclass
class TreeLookupStats:
    """Page-read breakdown of one lookup on the reorganized index."""

    tree_pages: int = 0
    sorted_pages: int = 0

    @property
    def total_pages(self) -> int:
        return self.tree_pages + self.sorted_pages


class SortedKeyIndex:
    """Immutable B-tree-like index over two sealed sequential logs."""

    def __init__(
        self,
        sorted_log: PageLog,
        tree_log: PageLog,
        levels: list[tuple[int, int]],
        entry_count: int,
        epoch: int = 0,
    ) -> None:
        self.sorted_log = sorted_log
        self.tree_log = tree_log
        #: ``levels[i] = (first, last)`` positions of level ``i`` in the tree
        #: log; level 0 points at sorted-log pages, the last level is the root.
        self.levels = levels
        self.entry_count = entry_count
        self.epoch = epoch
        self.last_lookup = TreeLookupStats()

    @classmethod
    def remount(cls, session, name: str, epoch: int) -> "SortedKeyIndex":
        """Rebuild a committed sorted index from a crash-recovery scan.

        Only epochs named by a durable ``reorg-commit`` manifest record are
        remounted, so both logs are complete by construction. The level
        boundaries come back from the tree pages' header ``meta`` field
        (each node page was written tagged with its level), and the entry
        count from the recovered leaf payloads — no extra flash reads.
        """
        recovered_sorted = session.claim(f"{name}:sorted", epoch)
        recovered_tree = session.claim(f"{name}:tree", epoch)
        sorted_log = PageLog.remount(
            session.allocator, f"{name}:sorted", recovered_sorted
        )
        tree_log = PageLog.remount(
            session.allocator, f"{name}:tree", recovered_tree
        )
        levels: list[list[int]] = []
        for position in range(len(tree_log)):
            level = tree_log.page_meta(position)
            if level == len(levels):
                levels.append([position, position])
            elif level == len(levels) - 1:
                levels[-1][1] = position
            else:
                raise RecoveryError(
                    f"tree log {name!r}: page {position} tagged level "
                    f"{level}, expected {len(levels) - 1} or {len(levels)}"
                )
        entry_count = sum(
            len(pager.unpack_records(page.payload))
            for page in recovered_sorted.pages
        )
        sorted_log.seal()
        tree_log.seal()
        return cls(
            sorted_log,
            tree_log,
            [tuple(bounds) for bounds in levels],
            entry_count,
            epoch=epoch,
        )

    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Tree levels above the sorted leaves."""
        return len(self.levels)

    @property
    def leaf_pages(self) -> int:
        return len(self.sorted_log)

    def lookup(self, value) -> list[int]:
        """Rowids for ``value``: root-to-leaf descent + duplicate-run scan."""
        key_bytes = encode_key(value)
        stats = TreeLookupStats()
        rowids: list[int] = []
        if self.entry_count == 0:
            self.last_lookup = stats
            return rowids

        leaf = self._descend(key_bytes, stats)
        if leaf is not None:
            position = leaf
            while position < len(self.sorted_log):
                stats.sorted_pages += 1
                page_rowids, may_continue = self._match_page(position, key_bytes)
                rowids.extend(page_rowids)
                if not may_continue:
                    break
                position += 1
        self.last_lookup = stats
        return rowids

    def lookup_batch(self, value) -> list[int]:
        """Batch-path :meth:`lookup`: same page reads, sliced-key compares.

        Used only by the columnar executor so the legacy path stays a true
        tuple-at-a-time reference. Reads the identical root-to-leaf +
        duplicate-run page sequence (``last_lookup`` matches), but locates
        the run with :func:`bisect` over key slices and decodes rowids only
        for run members instead of ``unpack_entry`` on every record.
        """
        key_bytes = encode_key(value)
        stats = TreeLookupStats()
        rowids: list[int] = []
        if self.entry_count == 0:
            self.last_lookup = stats
            return rowids

        leaf = self._descend_batch(key_bytes, stats)
        if leaf is not None:
            unpack_rowid = _ENTRY_ROWID.unpack_from
            for position in range(leaf, len(self.sorted_log)):
                stats.sorted_pages += 1
                records = self.sorted_log.read_records(position)
                if not records:
                    break
                low = bisect_left(records, key_bytes, key=_ENTRY_KEY)
                high = bisect_right(records, key_bytes, key=_ENTRY_KEY)
                rowids.extend(
                    unpack_rowid(record)[0] for record in records[low:high]
                )
                if high < len(records):
                    break  # an entry past the key ends the duplicate run
        self.last_lookup = stats
        return rowids

    def _descend_batch(
        self, key_bytes: bytes, stats: TreeLookupStats
    ) -> int | None:
        """:meth:`_descend` with bisect over sliced node keys (same reads)."""
        if not self.levels:
            return 0 if len(self.sorted_log) else None
        child: int | None = self.levels[-1][0]
        unpack_position = _ENTRY_ROWID.unpack_from
        for _ in range(len(self.levels)):
            assert child is not None
            stats.tree_pages += 1
            node = self.tree_log.read_records(child)
            index = bisect_left(node, key_bytes, key=_ENTRY_KEY)
            if index == len(node):
                return None  # key greater than every key in the subtree
            child = unpack_position(node[index])[0]
        return child

    def _descend(self, key_bytes: bytes, stats: TreeLookupStats) -> int | None:
        """Walk the tree to the first leaf page that may contain the key."""
        if not self.levels:
            return 0 if len(self.sorted_log) else None
        # Start at the root (single page of the top level).
        child: int | None = self.levels[-1][0]
        for depth in range(len(self.levels) - 1, -1, -1):
            assert child is not None
            stats.tree_pages += 1
            node = self.tree_log.read_records(child)
            child = None
            for record in node:
                max_key, child_position = unpack_entry(record)
                if max_key >= key_bytes:
                    child = child_position
                    break
            if child is None:
                return None  # key greater than every key in the subtree
        return child

    def _match_page(
        self, position: int, key_bytes: bytes
    ) -> tuple[list[int], bool]:
        """Matching rowids in one sorted page + whether the run may continue."""
        rowids: list[int] = []
        records = self.sorted_log.read_records(position)
        if not records:
            return rowids, False
        for record in records:
            entry_key, rowid = unpack_entry(record)
            if entry_key == key_bytes:
                rowids.append(rowid)
            elif entry_key > key_bytes:
                return rowids, False
        # Page ended on (or before) the key: duplicates may spill over.
        return rowids, True

    # ------------------------------------------------------------------
    def iter_entries(self):
        """Yield every ``(key_bytes, rowid)`` in ascending key order."""
        for position in range(len(self.sorted_log)):
            for record in self.sorted_log.read_records(position):
                yield unpack_entry(record)

    def iter_range(self, low, high):
        """Yield ``(value-encoded key, rowid)`` with ``low <= key <= high``."""
        low_bytes, high_bytes = encode_key(low), encode_key(high)
        if low_bytes > high_bytes:
            raise StorageError("empty range: low > high")
        stats = TreeLookupStats()
        leaf = self._descend(low_bytes, stats)
        if leaf is None:
            return
        for position in range(leaf, len(self.sorted_log)):
            for record in self.sorted_log.read_records(position):
                entry_key, rowid = unpack_entry(record)
                if entry_key < low_bytes:
                    continue
                if entry_key > high_bytes:
                    return
                yield entry_key, rowid

    def drop(self) -> None:
        self.sorted_log.drop()
        self.tree_log.drop()


class SortedIndexBuilder:
    """Streaming builder: feed entries in ascending order, get a tree back.

    Used as the terminal stage of a reorganization merge. Only sequential
    appends are issued; the whole build holds two page buffers in RAM (one
    leaf, one tree node).
    """

    def __init__(
        self, allocator: BlockAllocator, name: str, epoch: int = 0
    ) -> None:
        self.epoch = epoch
        self.sorted_log = PageLog(allocator, name=f"{name}:sorted", epoch=epoch)
        self.tree_log = PageLog(allocator, name=f"{name}:tree", epoch=epoch)
        self._page_size = self.sorted_log.page_size
        self._leaf_buffer: list[bytes] = []
        self._leaf_size = 2
        self._leaf_index: list[bytes] = []  # max key per flushed leaf page
        self._last_entry: tuple[bytes, int] | None = None
        self._entry_count = 0

    def add(self, key_bytes: bytes, rowid: int) -> None:
        """Append the next entry (must be >= the previous one)."""
        if self._last_entry is not None and (key_bytes, rowid) < self._last_entry:
            raise StorageError(
                "SortedIndexBuilder received out-of-order entry"
            )
        self._last_entry = (key_bytes, rowid)
        record = pack_entry(key_bytes, rowid)
        if not pager.record_fits(self._leaf_size, record, self._page_size):
            self._flush_leaf()
        self._leaf_buffer.append(record)
        self._leaf_size += 2 + len(record)
        self._entry_count += 1

    def _flush_leaf(self) -> None:
        if not self._leaf_buffer:
            return
        max_key, _ = unpack_entry(self._leaf_buffer[-1])
        self.sorted_log.append_page(pager.pack_records(self._leaf_buffer))
        self._leaf_index.append(max_key)
        self._leaf_buffer = []
        self._leaf_size = 2

    def finish(self) -> SortedKeyIndex:
        """Flush leaves, build the key hierarchy bottom-up, seal both logs."""
        self._flush_leaf()
        levels: list[tuple[int, int]] = []
        # children: (max_key, position) of the level below.
        children = list(zip(self._leaf_index, range(len(self._leaf_index))))
        while len(children) > 1 or (children and not levels):
            first_node = len(self.tree_log)
            node_buffer: list[bytes] = []
            node_size = 2
            next_children: list[tuple[bytes, int]] = []

            def flush_node() -> None:
                nonlocal node_buffer, node_size
                if not node_buffer:
                    return
                node_max, _ = unpack_entry(node_buffer[-1])
                # Tag the node page with its tree level so recovery can
                # regroup levels without any sidecar metadata.
                position = self.tree_log.append_page(
                    pager.pack_records(node_buffer), meta=len(levels)
                )
                next_children.append((node_max, position))
                node_buffer = []
                node_size = 2

            for max_key, position in children:
                record = pack_entry(max_key, position)
                if not pager.record_fits(node_size, record, self._page_size):
                    flush_node()
                node_buffer.append(record)
                node_size += 2 + len(record)
            flush_node()
            levels.append((first_node, len(self.tree_log) - 1))
            children = next_children
            if len(children) == 1:
                break
        self.sorted_log.seal()
        self.tree_log.seal()
        return SortedKeyIndex(
            self.sorted_log,
            self.tree_log,
            levels,
            self._entry_count,
            epoch=self.epoch,
        )
