"""The embedded relational database: public API of Part II's second engine.

:class:`EmbeddedDatabase` assembles everything on one secure token:

* table storage in sequential logs, rowid-addressed;
* primary-key indexes (Keys + Bloom summaries), maintained at insertion and
  used to resolve foreign keys;
* ancestor logs filled incrementally at insertion — the **Tjoin** index;
* on-demand **Tselect** indexes, bulk-built and log-reorganized;
* a pipelined select-project-join executor with RAM/IO accounting.

Example::

    db = EmbeddedDatabase(token, schema, root_table="LINEITEM")
    db.insert("CUSTOMER", (1, "Ana", "HOUSEHOLD"))
    ...
    db.create_tselect("CUSTOMER", "Mktsegment")
    rows, stats = db.query(Query.build(
        filters=[("CUSTOMER", "Mktsegment", "HOUSEHOLD")],
        projection=[("CUSTOMER", "Name"), ("LINEITEM", "Price")],
    ))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import compress

from repro import obs
from repro.errors import QueryError
from repro.hardware.token import SecurePortableToken
from repro.relational.batch import DEFAULT_BATCH_ROWS
from repro.relational.keyindex import KeyIndex
from repro.relational.planner import PlanExplain, Query, plan, plan_batches
from repro.relational.schema import SchemaGraph
from repro.relational.table import TableStorage
from repro.relational.tjoin import AncestorLog, TjoinIndex
from repro.relational.tselect import TselectIndex
from repro.storage.cache import CacheStats


@dataclass
class ExecutionStats:
    """Observed cost of one query execution.

    ``flash_page_reads`` counts real chip IOs only — reads served by the
    token's page cache never reach the flash simulator. ``cache`` is the
    per-query :class:`CacheStats` delta when a cache is attached, and an
    all-zero :class:`CacheStats` otherwise — callers read
    ``stats.cache.hits`` unconditionally instead of guarding on None.
    """

    rows_out: int
    flash_page_reads: int
    ram_high_water: int
    explain: PlanExplain
    cache: CacheStats = field(default_factory=CacheStats)


class EmbeddedDatabase:
    """A relational database living entirely inside one secure token."""

    def __init__(
        self,
        token: SecurePortableToken,
        schema: SchemaGraph,
        root_table: str,
        batch_size: int | None = DEFAULT_BATCH_ROWS,
    ) -> None:
        self.token = token
        self.schema = schema
        #: Rows per columnar batch; ``None``/``0`` selects the legacy
        #: tuple-at-a-time reference path (kept for differential testing).
        self.batch_size = batch_size or None
        self.root_table = schema.table(root_table).name
        ram = token.mcu.ram
        self.storages: dict[str, TableStorage] = {
            name: TableStorage(table, token.allocator, ram=None)
            for name, table in schema.tables.items()
        }
        # Primary-key indexes: required on every table that is referenced.
        self.pk_indexes: dict[str, KeyIndex] = {}
        for name, table in schema.tables.items():
            if table.primary_key is not None:
                self.pk_indexes[name] = KeyIndex(
                    f"{name}.{table.primary_key}", token.allocator
                )
        for name, table in schema.tables.items():
            for fk in table.foreign_keys:
                parent = schema.table(fk.parent_table)
                if parent.primary_key != fk.parent_column:
                    raise QueryError(
                        f"foreign key {name}.{fk.column} must reference the "
                        f"primary key of {fk.parent_table!r}"
                    )
        # Ancestor logs for every table that has ancestors.
        self.ancestor_logs: dict[str, AncestorLog] = {}
        for name in schema.tables:
            ancestors = [t for t in schema.ancestry_paths(name) if t != name]
            if ancestors:
                self.ancestor_logs[name] = AncestorLog(
                    name, ancestors, token.allocator
                )
        root_ancestors = self.ancestor_logs.get(self.root_table)
        if root_ancestors is None:
            root_ancestors = AncestorLog(self.root_table, [], token.allocator)
        self.tjoin = TjoinIndex(self.root_table, root_ancestors)
        self.tselects: dict[tuple[str, str], TselectIndex] = {}
        self.attr_indexes: dict[tuple[str, str], KeyIndex] = {}
        self._ram = ram

    # ------------------------------------------------------------------
    # Data definition / load
    # ------------------------------------------------------------------
    def insert(self, table_name: str, values: tuple) -> int:
        """Insert one row, maintaining PK/attribute indexes and Tjoin."""
        self.token.require_trusted()
        table = self.schema.table(table_name)
        storage = self.storages[table.name]
        ancestors = self._resolve_ancestors(table, values)
        rowid = storage.insert(values)
        if table.primary_key is not None:
            pk_value = values[table.column_index(table.primary_key)]
            self.pk_indexes[table.name].insert(pk_value, rowid)
        for (index_table, column), index in self.attr_indexes.items():
            if index_table == table.name:
                index.insert(values[table.column_index(column)], rowid)
        log = self.ancestor_logs.get(table.name)
        if log is not None:
            log.append(ancestors)
        return rowid

    def _resolve_ancestors(self, table, values) -> dict[str, int]:
        """Follow each foreign key up through parent PK indexes."""
        ancestors: dict[str, int] = {}
        for fk in table.foreign_keys:
            value = values[table.column_index(fk.column)]
            matches = self.pk_indexes[fk.parent_table].lookup(value)
            if len(matches) != 1:
                raise QueryError(
                    f"referential integrity: {table.name}.{fk.column}={value!r} "
                    f"matches {len(matches)} rows of {fk.parent_table!r}"
                )
            parent_rowid = matches[0]
            ancestors[fk.parent_table] = parent_rowid
            parent_log = self.ancestor_logs.get(fk.parent_table)
            if parent_log is not None:
                ancestors.update(parent_log.get(parent_rowid))
        return ancestors

    def flush(self) -> None:
        """Flush every write buffer to flash."""
        for storage in self.storages.values():
            storage.flush()
        for index in self.pk_indexes.values():
            index.flush()
        for index in self.attr_indexes.values():
            index.flush()
        for log in self.ancestor_logs.values():
            log.flush()

    def create_key_index(self, table_name: str, column: str) -> None:
        """Add a plain attribute index (indexes future *and* past rows)."""
        table = self.schema.table(table_name)
        key = (table.name, column)
        if key in self.attr_indexes:
            raise QueryError(f"index on {table.name}.{column} already exists")
        index = KeyIndex(f"{table.name}.{column}", self.token.allocator)
        position = table.column_index(column)
        for rowid, row in self.storages[table.name].scan():
            index.insert(row[position], rowid)
        self.attr_indexes[key] = index

    def create_tselect(self, via_table: str, column: str) -> TselectIndex:
        """Bulk-build a Tselect index for root-anchored predicates."""
        table = self.schema.table(via_table)
        table.column_index(column)
        self.flush()
        tselect = TselectIndex.build(
            table.name,
            column,
            self.tjoin,
            self.storages,
            self.token.allocator,
            self._ram,
        )
        self.tselects[(table.name, column)] = tselect
        return tselect

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, query: Query) -> tuple[list[tuple], ExecutionStats]:
        """Execute a select-project-join query; returns rows + cost stats."""
        self.token.require_trusted()
        self.flush()
        flash = self.token.flash
        page_size = flash.geometry.page_size
        reads_before = flash.stats.page_reads
        cache = self.token.allocator.page_cache
        cache_before = cache.stats.snapshot() if cache is not None else None
        self._ram.reset_high_water()
        # One page buffer per Tselect stream + one joined-row buffer; in
        # batch mode the joined-row buffer becomes the output batch (8 B
        # per row slot, never charged below one page).
        num_streams = sum(
            1 for t, c, _ in query.filters if (t, c) in self.tselects
        )
        batch_rows = self.batch_size
        pipeline_bytes = self._pipeline_bytes(num_streams, page_size)
        with obs.span(
            "db.query", filters=len(query.filters)
        ) as span, self._ram.reservation(pipeline_bytes, tag="query:pipeline"):
            if batch_rows:
                batches, explain = plan_batches(
                    query, self.tjoin, self.storages, self.tselects, batch_rows
                )
                rows: list[tuple] = []
                num_batches = 0
                for chunk in batches:
                    rows.extend(chunk)
                    num_batches += 1
                span.set(
                    rows_out=len(rows),
                    root_scan=explain.root_scan,
                    batches=num_batches,
                    batch_rows=batch_rows,
                )
            else:
                iterator, explain = plan(
                    query, self.tjoin, self.storages, self.tselects
                )
                rows = list(iterator)
                span.set(rows_out=len(rows), root_scan=explain.root_scan)
        stats = ExecutionStats(
            rows_out=len(rows),
            flash_page_reads=flash.stats.page_reads - reads_before,
            ram_high_water=self._ram.high_water,
            explain=explain,
            cache=(
                cache.stats.delta(cache_before)
                if cache is not None
                else CacheStats()
            ),
        )
        return rows, stats

    def _pipeline_bytes(self, num_streams: int, page_size: int) -> int:
        """RAM reservation for the query pipeline's working buffers.

        Legacy: one page buffer per Tselect stream + one joined-row page.
        Batch: the per-stream pages plus the output batch (8 bytes per
        buffered row slot), charged at least one page so the default batch
        size reserves exactly what the legacy pipeline does.
        """
        if self.batch_size:
            return num_streams * page_size + max(
                page_size, self.batch_size * 8
            )
        return (num_streams + 1) * page_size

    def aggregate(
        self,
        filters,
        aggregate: tuple[str, str, str | None],
        group_by: tuple[str, str] | None = None,
    ) -> tuple[dict, ExecutionStats]:
        """Grouped aggregate over the joined pipeline (PicoDBMS-style).

        ``aggregate`` is ``(function, table, column)`` with function in
        COUNT/SUM/AVG (column ignored for COUNT); ``group_by`` an optional
        ``(table, column)``. Rows stream through the same Tselect/Tjoin
        plan; RAM grows only with the number of *groups* (charged to the
        arena), never with the number of rows — aggregation is the last
        pipeline stage, as in the embedded literature.
        """
        function, agg_table, agg_column = aggregate
        if function not in ("COUNT", "SUM", "AVG"):
            raise QueryError(f"unsupported aggregate {function!r}")
        if function != "COUNT" and agg_column is None:
            raise QueryError(f"{function} needs a column")
        projection = []
        if group_by is not None:
            projection.append(group_by)
        projection.append(
            (agg_table, agg_column)
            if agg_column is not None
            else (agg_table, self.schema.table(agg_table).columns[0].name)
        )
        query = Query.build(filters=filters, projection=projection)
        self.token.require_trusted()
        self.flush()
        flash = self.token.flash
        reads_before = flash.stats.page_reads
        cache = self.token.allocator.page_cache
        cache_before = cache.stats.snapshot() if cache is not None else None
        self._ram.reset_high_water()
        num_streams = sum(
            1 for t, c, _ in query.filters if (t, c) in self.tselects
        )
        sums: dict = {}
        counts: dict = {}
        batch_rows = self.batch_size
        pipeline_bytes = self._pipeline_bytes(
            num_streams, flash.geometry.page_size
        )
        with obs.span(
            "db.aggregate", function=function, grouped=group_by is not None
        ), self._ram.reservation(pipeline_bytes, tag="agg:pipeline"):
            groups_handle = self._ram.allocate(0, tag="agg:groups")
            try:
                if batch_rows:
                    batches, explain = plan_batches(
                        query,
                        self.tjoin,
                        self.storages,
                        self.tselects,
                        batch_rows,
                    )
                    iterator = (row for chunk in batches for row in chunk)
                else:
                    iterator, explain = plan(
                        query, self.tjoin, self.storages, self.tselects
                    )
                for row in iterator:
                    group = row[0] if group_by is not None else "*"
                    value = row[-1]
                    if group not in sums:
                        sums[group] = 0.0
                        counts[group] = 0
                        self._ram.resize(groups_handle, len(sums) * 32)
                    if function != "COUNT":
                        sums[group] += float(value)
                    counts[group] += 1
            finally:
                self._ram.free(groups_handle)
        if function == "COUNT":
            result = {group: float(count) for group, count in counts.items()}
        elif function == "SUM":
            result = dict(sums)
        else:
            result = {
                group: sums[group] / counts[group] for group in sums
            }
        stats = ExecutionStats(
            rows_out=len(result),
            flash_page_reads=flash.stats.page_reads - reads_before,
            ram_high_water=self._ram.high_water,
            explain=explain,
            cache=(
                cache.stats.delta(cache_before)
                if cache is not None
                else CacheStats()
            ),
        )
        return result, stats

    def lookup(self, table_name: str, column: str, value) -> list[int]:
        """Rowids of ``table`` where ``column == value`` (index or scan)."""
        table = self.schema.table(table_name)
        key = (table.name, column)
        if key in self.attr_indexes:
            self.attr_indexes[key].flush()
            return self.attr_indexes[key].lookup(value)
        if table.primary_key == column:
            index = self.pk_indexes[table.name]
            index.flush()
            return index.lookup(value)
        # Fallback scan: flush first, like the indexed paths above, so the
        # visibility contract doesn't depend on the write buffer's scan
        # behavior.
        position = table.column_index(column)
        storage = self.storages[table.name]
        storage.flush()
        if self.batch_size:
            rowids: list[int] = []
            for first, mask in storage.scan_mask(column, value):
                rowids.extend(compress(range(first, first + len(mask)), mask))
            return rowids
        return [
            rowid for rowid, row in storage.scan() if row[position] == value
        ]
