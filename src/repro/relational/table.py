"""Table storage: tuples in a sequential data log with rowid addressing.

Tuples are appended to a :class:`~repro.storage.log.RecordLog` (the data is
itself a log — "Log1" of the tutorial's vertical-partition picture). Rows are
variable length, so a parallel *address log* with fixed 8-byte entries maps
``rowid -> (page position, slot)``; fetching a row by rowid costs at most two
page reads (address page + data page), with no per-row RAM.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import StorageError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.relational.schema import TableSchema
from repro.relational.tuples import deserialize_row, serialize_row
from repro.storage import pager
from repro.storage.log import RecordAddress, RecordLog

_ADDRESS = struct.Struct("<IH")  # page position, slot
_ADDRESS_SIZE = _ADDRESS.size


class TableStorage:
    """One table's data log + rowid address log on a token's flash."""

    def __init__(
        self,
        schema: TableSchema,
        allocator: BlockAllocator,
        ram: RamArena | None = None,
    ) -> None:
        self.schema = schema
        self.data = RecordLog(allocator, name=f"{schema.name}:data", ram=ram)
        self.addresses = RecordLog(allocator, name=f"{schema.name}:addr", ram=ram)
        self._row_count = 0

    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def data_pages(self) -> int:
        """Flushed data pages (the page count a full scan reads)."""
        return self.data.page_count

    def insert(self, values: tuple) -> int:
        """Append one row; returns its rowid (dense, append-ordered)."""
        address = self.data.append(serialize_row(self.schema, values))
        self.addresses.append(_ADDRESS.pack(address.position, address.slot))
        rowid = self._row_count
        self._row_count += 1
        return rowid

    def flush(self) -> None:
        self.data.flush()
        self.addresses.flush()

    # ------------------------------------------------------------------
    def read(self, rowid: int) -> tuple:
        """Fetch one row by rowid."""
        if not 0 <= rowid < self._row_count:
            raise StorageError(
                f"table {self.schema.name!r}: rowid {rowid} out of range "
                f"[0, {self._row_count})"
            )
        # Address entries are fixed-size, so the address log packs the same
        # number per page and the target page/slot is computable directly.
        per_page = (self.data.pages.page_size - 2) // (2 + _ADDRESS_SIZE)
        raw = self.addresses.read(
            RecordAddress(position=rowid // per_page, slot=rowid % per_page)
        )
        position, slot = _ADDRESS.unpack(raw)
        return deserialize_row(
            self.schema, self.data.read(RecordAddress(position, slot))
        )

    def value(self, rowid: int, column: str) -> object:
        """Fetch one column of one row."""
        return self.read(rowid)[self.schema.column_index(column)]

    @property
    def addresses_per_page(self) -> int:
        """Fixed-size address entries packed per address-log page."""
        return (self.data.pages.page_size - 2) // (2 + _ADDRESS_SIZE)

    def read_batch(
        self, rowids, columns: list[str] | None = None
    ) -> dict[str, list]:
        """Columnar fetch: ``{column: [values...]}`` aligned to ``rowids``.

        Issues exactly the page accesses :meth:`read` would — one address
        page plus one data page per rowid, in rowid-list order — but decodes
        each touched page once into column vectors instead of once per row.
        ``columns`` defaults to the full schema.
        """
        from repro.relational.batch import TableGather

        names = (
            list(columns)
            if columns is not None
            else [column.name for column in self.schema.columns]
        )
        positions = [self.schema.column_index(name) for name in names]
        gather = TableGather(self, positions)
        out: dict[str, list] = {name: [] for name in names}
        for rowid in rowids:
            page_columns, slot = gather.fetch(rowid)
            for name, position in zip(names, positions):
                out[name].append(page_columns[position][slot])
        return out

    def scan_columns(self, columns: list[str]) -> Iterator[tuple[int, dict]]:
        """Columnar full scan: ``(first_rowid, {column: [values...]})`` per page.

        Reads the same data pages as :meth:`scan` (one access each, write
        buffer included last) but decodes each page once into vectors of
        just the requested columns — the batch path of summary-scan style
        predicates.
        """
        from repro.relational.tuples import make_column_decoder

        positions = [self.schema.column_index(name) for name in columns]
        decode = make_column_decoder(self.schema, positions)
        rowid = 0
        for position in range(len(self.data.pages)):
            records = pager.unpack_records(self.data.pages.read_page(position))
            decoded = decode(records)
            yield rowid, {
                name: decoded[pos] for name, pos in zip(columns, positions)
            }
            rowid += len(records)
        buffered = self.data.buffered_records()
        if buffered:
            decoded = decode(buffered)
            yield rowid, {
                name: decoded[pos] for name, pos in zip(columns, positions)
            }

    def scan_mask(
        self, column: str, value
    ) -> Iterator[tuple[int, list[bool]]]:
        """Columnar predicate scan: ``(first_rowid, match mask)`` per page.

        Same page reads as :meth:`scan` (buffer included), but each page is
        reduced to an equality mask by :func:`repro.relational.tuples.
        make_predicate_mask` — comparing encoded bytes where possible, so
        a summary-scan style ``count`` never materializes row values.
        """
        from repro.relational.tuples import make_predicate_mask

        mask = make_predicate_mask(
            self.schema, self.schema.column_index(column), value
        )
        # Encoded-value masks expose the bytes a matching row must contain;
        # pages without them (the vast majority under a selective
        # predicate) yield an all-False mask with no record unpacking —
        # only the count header is read. Never a false negative: records
        # are verbatim slices of the page.
        needle = getattr(mask, "needle", None)
        rowid = 0
        for position in range(len(self.data.pages)):
            page = self.data.pages.read_page(position)
            if needle is not None and needle not in page:
                count = pager.unpack_u16(page, 0) if page else 0
                yield rowid, [False] * count
                rowid += count
                continue
            records = pager.unpack_records(page)
            yield rowid, mask(records)
            rowid += len(records)
        buffered = self.data.buffered_records()
        if buffered:
            yield rowid, mask(buffered)

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield ``(rowid, row)`` in rowid order (a full sequential scan)."""
        for rowid, (_, record) in enumerate(self.data.scan()):
            yield rowid, deserialize_row(self.schema, record)
