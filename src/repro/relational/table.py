"""Table storage: tuples in a sequential data log with rowid addressing.

Tuples are appended to a :class:`~repro.storage.log.RecordLog` (the data is
itself a log — "Log1" of the tutorial's vertical-partition picture). Rows are
variable length, so a parallel *address log* with fixed 8-byte entries maps
``rowid -> (page position, slot)``; fetching a row by rowid costs at most two
page reads (address page + data page), with no per-row RAM.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import StorageError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.relational.schema import TableSchema
from repro.relational.tuples import deserialize_row, serialize_row
from repro.storage.log import RecordAddress, RecordLog

_ADDRESS = struct.Struct("<IH")  # page position, slot
_ADDRESS_SIZE = _ADDRESS.size


class TableStorage:
    """One table's data log + rowid address log on a token's flash."""

    def __init__(
        self,
        schema: TableSchema,
        allocator: BlockAllocator,
        ram: RamArena | None = None,
    ) -> None:
        self.schema = schema
        self.data = RecordLog(allocator, name=f"{schema.name}:data", ram=ram)
        self.addresses = RecordLog(allocator, name=f"{schema.name}:addr", ram=ram)
        self._row_count = 0

    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def data_pages(self) -> int:
        """Flushed data pages (the page count a full scan reads)."""
        return self.data.page_count

    def insert(self, values: tuple) -> int:
        """Append one row; returns its rowid (dense, append-ordered)."""
        address = self.data.append(serialize_row(self.schema, values))
        self.addresses.append(_ADDRESS.pack(address.position, address.slot))
        rowid = self._row_count
        self._row_count += 1
        return rowid

    def flush(self) -> None:
        self.data.flush()
        self.addresses.flush()

    # ------------------------------------------------------------------
    def read(self, rowid: int) -> tuple:
        """Fetch one row by rowid."""
        if not 0 <= rowid < self._row_count:
            raise StorageError(
                f"table {self.schema.name!r}: rowid {rowid} out of range "
                f"[0, {self._row_count})"
            )
        # Address entries are fixed-size, so the address log packs the same
        # number per page and the target page/slot is computable directly.
        per_page = (self.data.pages.page_size - 2) // (2 + _ADDRESS_SIZE)
        raw = self.addresses.read(
            RecordAddress(position=rowid // per_page, slot=rowid % per_page)
        )
        position, slot = _ADDRESS.unpack(raw)
        return deserialize_row(
            self.schema, self.data.read(RecordAddress(position, slot))
        )

    def value(self, rowid: int, column: str) -> object:
        """Fetch one column of one row."""
        return self.read(rowid)[self.schema.column_index(column)]

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Yield ``(rowid, row)`` in rowid order (a full sequential scan)."""
        for rowid, (_, record) in enumerate(self.data.scan()):
            yield rowid, deserialize_row(self.schema, record)
