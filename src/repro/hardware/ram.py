"""Byte-accounted RAM arena: the scarcest resource of a secure token.

The microcontrollers targeted by the tutorial expose **less than 128 KB** of
RAM, and every Part II algorithm is shaped by that bound (pipelined
evaluation, one-page-per-keyword merges, summary scans). The simulator makes
the bound *operational*: embedded algorithms must reserve their working
buffers from a :class:`RamArena`, and reserving past the budget raises
:class:`~repro.errors.RamBudgetExceeded` instead of silently spilling to an
imaginary heap.

The arena also records a high-water mark, which is the quantity the E2/E4
benchmarks report ("RAM consumption of the pipelined plan stays flat while
the baseline grows with the data").
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import RamBudgetExceeded


@dataclass
class _Allocation:
    size: int
    tag: str


class RamArena:
    """A bounded allocator that only tracks *sizes*, not actual memory.

    Algorithms call :meth:`allocate` for each working buffer (sort areas,
    page buffers, per-keyword merge heads, ...) and :meth:`free` when the
    buffer's lifetime ends, typically via the :meth:`reservation` context
    manager. Python's own object memory is irrelevant here — the arena models
    what the *embedded* implementation would need on the MCU.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError("RAM budget must be positive")
        self.budget_bytes = budget_bytes
        self._in_use = 0
        self._high_water = 0
        self._next_handle = 0
        self._allocations: dict[int, _Allocation] = {}

    # ------------------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Bytes currently reserved."""
        return self._in_use

    @property
    def high_water(self) -> int:
        """Largest number of bytes ever simultaneously reserved."""
        return self._high_water

    @property
    def available(self) -> int:
        return self.budget_bytes - self._in_use

    def allocate(self, size: int, tag: str = "") -> int:
        """Reserve ``size`` bytes; returns an opaque handle for :meth:`free`."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        if self._in_use + size > self.budget_bytes:
            raise RamBudgetExceeded(
                f"allocating {size} B ({tag or 'untagged'}) would use "
                f"{self._in_use + size} B of a {self.budget_bytes} B budget"
            )
        handle = self._next_handle
        self._next_handle += 1
        self._allocations[handle] = _Allocation(size, tag)
        self._in_use += size
        self._high_water = max(self._high_water, self._in_use)
        return handle

    def free(self, handle: int) -> None:
        """Release a reservation made by :meth:`allocate`."""
        allocation = self._allocations.pop(handle, None)
        if allocation is None:
            raise KeyError(f"unknown or already-freed RAM handle {handle}")
        self._in_use -= allocation.size

    def resize(self, handle: int, new_size: int) -> None:
        """Grow or shrink an existing reservation (e.g. a result buffer)."""
        allocation = self._allocations.get(handle)
        if allocation is None:
            raise KeyError(f"unknown RAM handle {handle}")
        grow = new_size - allocation.size
        if grow > 0 and self._in_use + grow > self.budget_bytes:
            raise RamBudgetExceeded(
                f"resizing {allocation.tag or 'buffer'} to {new_size} B would "
                f"use {self._in_use + grow} B of a {self.budget_bytes} B budget"
            )
        allocation.size = new_size
        self._in_use += grow
        self._high_water = max(self._high_water, self._in_use)

    @contextmanager
    def reservation(self, size: int, tag: str = "") -> Iterator[int]:
        """Scope-bound reservation: freed automatically on exit."""
        handle = self.allocate(size, tag)
        try:
            yield handle
        finally:
            self.free(handle)

    def reset_high_water(self) -> None:
        """Restart high-water tracking from the current usage level."""
        self._high_water = self._in_use

    def usage_by_tag(self) -> dict[str, int]:
        """Current reserved bytes grouped by allocation tag (for reports)."""
        by_tag: dict[str, int] = {}
        for allocation in self._allocations.values():
            by_tag[allocation.tag] = by_tag.get(allocation.tag, 0) + allocation.size
        return by_tag
