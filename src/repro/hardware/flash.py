"""NAND flash simulator: the storage substrate of a secure portable token.

The tutorial's Part II rests on two physical facts about NAND flash that this
module enforces rather than merely documents:

* **Write-by-page, erase-by-block.** A page can only be *programmed* once
  after the erase of its enclosing block; rewriting a page in place is a
  :class:`~repro.errors.FlashViolation`.
* **Sequential programming inside a block.** Real NAND chips require pages of
  a block to be programmed in increasing order; honouring it here means any
  data structure that "randomly writes" simply cannot be built on this model,
  which is exactly the design pressure that leads to the log-only structures
  of the paper.

Every operation is metered by a :class:`FlashCostModel` so benchmarks can
report IO counts and simulated latencies (the "17 IOs vs 640 IOs" style of
numbers in the slides).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import FlashViolation

_ERASED = None  # sentinel content of a page that has been erased


@dataclass(frozen=True)
class FlashCostModel:
    """Latency model of one NAND operation, in microseconds.

    Defaults follow typical SLC NAND datasheet figures quoted in the
    flash-aware indexing literature the tutorial cites (BFTL, PBFilter):
    reads are cheap, programs ~10x dearer, erases ~60x dearer still.
    """

    read_us: float = 25.0
    program_us: float = 200.0
    erase_us: float = 1500.0


@dataclass
class FlashStats:
    """Mutable operation counters for one flash chip."""

    page_reads: int = 0
    page_programs: int = 0
    block_erases: int = 0

    def time_us(self, cost: FlashCostModel) -> float:
        """Total simulated time of all operations under ``cost``."""
        return (
            self.page_reads * cost.read_us
            + self.page_programs * cost.program_us
            + self.block_erases * cost.erase_us
        )

    def snapshot(self) -> "FlashStats":
        """Return an independent copy (for before/after deltas in benches)."""
        return FlashStats(self.page_reads, self.page_programs, self.block_erases)

    def delta(self, before: "FlashStats") -> "FlashStats":
        """Operations performed since ``before`` was snapshotted."""
        return FlashStats(
            self.page_reads - before.page_reads,
            self.page_programs - before.page_programs,
            self.block_erases - before.block_erases,
        )


@dataclass(frozen=True)
class FlashGeometry:
    """Physical layout of a NAND chip."""

    page_size: int = 2048
    pages_per_block: int = 64
    num_blocks: int = 1024

    @property
    def num_pages(self) -> int:
        return self.pages_per_block * self.num_blocks

    @property
    def capacity_bytes(self) -> int:
        return self.num_pages * self.page_size

    def block_of(self, page_no: int) -> int:
        return page_no // self.pages_per_block

    def page_index_in_block(self, page_no: int) -> int:
        return page_no % self.pages_per_block

    def first_page_of(self, block_no: int) -> int:
        return block_no * self.pages_per_block


class NandFlash:
    """A simulated NAND flash chip with strict programming-order rules.

    Pages hold arbitrary ``bytes`` up to ``geometry.page_size``. The chip
    starts fully erased. All constraint violations raise
    :class:`FlashViolation` so higher layers cannot accidentally rely on
    behaviour real hardware forbids.
    """

    def __init__(
        self,
        geometry: FlashGeometry | None = None,
        cost_model: FlashCostModel | None = None,
    ) -> None:
        self.geometry = geometry or FlashGeometry()
        self.cost_model = cost_model or FlashCostModel()
        self.stats = FlashStats()
        self._pages: list[bytes | None] = [_ERASED] * self.geometry.num_pages
        # Next programmable page index inside each block (sequential rule).
        self._write_cursor: list[int] = [0] * self.geometry.num_blocks
        self._erase_counts: list[int] = [0] * self.geometry.num_blocks
        # Mutation observers (page caches invalidate through these).
        self._on_program: list = []
        self._on_erase: list = []
        #: Read observer installed by :meth:`repro.obs.Tracer.watch_flash`
        #: (None when tracing is off — the hot path pays one None check).
        self.trace_read = None

    def subscribe(self, on_program=None, on_erase=None) -> None:
        """Register callbacks fired after a successful program / erase.

        ``on_program(page_no)`` runs after a page is programmed and
        ``on_erase(block_no)`` after a block is erased — the two events
        that can change what a page reads back, hence the complete
        invalidation feed for any cache sitting above the chip.
        """
        if on_program is not None:
            self._on_program.append(on_program)
        if on_erase is not None:
            self._on_erase.append(on_erase)

    def unsubscribe(self, on_program=None, on_erase=None) -> None:
        """Remove callbacks previously registered with :meth:`subscribe`."""
        if on_program is not None and on_program in self._on_program:
            self._on_program.remove(on_program)
        if on_erase is not None and on_erase in self._on_erase:
            self._on_erase.remove(on_erase)

    # ------------------------------------------------------------------
    # Raw page/block operations
    # ------------------------------------------------------------------
    def read_page(self, page_no: int) -> bytes:
        """Read one page; erased pages read back as empty bytes."""
        self._check_page(page_no)
        self.stats.page_reads += 1
        if self.trace_read is not None:
            self.trace_read(page_no)
        content = self._pages[page_no]
        return b"" if content is _ERASED else content

    def program_page(self, page_no: int, data: bytes) -> None:
        """Program an erased page, respecting in-block sequential order."""
        self._check_page(page_no)
        if len(data) > self.geometry.page_size:
            raise FlashViolation(
                f"page data of {len(data)} B exceeds page size "
                f"{self.geometry.page_size} B"
            )
        if self._pages[page_no] is not _ERASED:
            raise FlashViolation(
                f"page {page_no} already programmed; erase block "
                f"{self.geometry.block_of(page_no)} first (no in-place rewrite)"
            )
        block = self.geometry.block_of(page_no)
        expected = self._write_cursor[block]
        actual = self.geometry.page_index_in_block(page_no)
        if actual != expected:
            raise FlashViolation(
                f"block {block}: pages must be programmed sequentially; "
                f"expected in-block index {expected}, got {actual}"
            )
        self._pages[page_no] = bytes(data)
        self._write_cursor[block] = actual + 1
        self.stats.page_programs += 1
        for callback in self._on_program:
            callback(page_no)

    def erase_block(self, block_no: int) -> None:
        """Erase a whole block, resetting its write cursor."""
        self._check_block(block_no)
        start = self.geometry.first_page_of(block_no)
        for page_no in range(start, start + self.geometry.pages_per_block):
            self._pages[page_no] = _ERASED
        self._write_cursor[block_no] = 0
        self._erase_counts[block_no] += 1
        self.stats.block_erases += 1
        for callback in self._on_erase:
            callback(block_no)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_erased(self, page_no: int) -> bool:
        self._check_page(page_no)
        return self._pages[page_no] is _ERASED

    def next_free_page(self, block_no: int) -> int | None:
        """In-block index of the next programmable page, or None if full."""
        self._check_block(block_no)
        cursor = self._write_cursor[block_no]
        if cursor >= self.geometry.pages_per_block:
            return None
        return cursor

    def erase_count(self, block_no: int) -> int:
        """Wear counter: how many times ``block_no`` has been erased."""
        self._check_block(block_no)
        return self._erase_counts[block_no]

    def total_time_us(self) -> float:
        return self.stats.time_us(self.cost_model)

    # ------------------------------------------------------------------
    def _check_page(self, page_no: int) -> None:
        if not 0 <= page_no < self.geometry.num_pages:
            raise FlashViolation(
                f"page {page_no} out of range [0, {self.geometry.num_pages})"
            )

    def _check_block(self, block_no: int) -> None:
        if not 0 <= block_no < self.geometry.num_blocks:
            raise FlashViolation(
                f"block {block_no} out of range [0, {self.geometry.num_blocks})"
            )


class BlockAllocator:
    """Wear-aware, block-granularity allocator over a :class:`NandFlash`.

    The tutorial's log framework allocates and reclaims flash space on a
    *block* basis precisely so partial garbage collection never happens; this
    allocator is the embodiment of that rule. Freeing a block erases it
    (paying the erase cost) and returns it to the free pool.

    Allocation is **wear-levelled**: among free blocks, the least-erased one
    is handed out first, so reorganization churn (allocate/drop cycles)
    spreads erases across the chip instead of hammering a hot region —
    NAND blocks endure a finite erase count, and log-structured designs
    live or die by this.
    """

    def __init__(self, flash: NandFlash) -> None:
        self.flash = flash
        #: Optional :class:`~repro.storage.cache.PageCache` every log built
        #: on this allocator reads through (see ``attach_cache``). Kept here
        #: because the allocator is the one object all storage structures
        #: already share.
        self.page_cache = None
        # Heap of (erase_count, block); counts are refreshed lazily on pop.
        self._free: list[tuple[int, int]] = [
            (0, block) for block in range(flash.geometry.num_blocks)
        ]
        heapq.heapify(self._free)
        self._allocated: set[int] = set()

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def allocated_blocks(self) -> int:
        return len(self._allocated)

    def attach_cache(self, cache) -> None:
        """Route every log read through ``cache`` (None to detach)."""
        self.page_cache = cache

    def allocate(self) -> int:
        """Pop the least-worn free (erased) block; raises when full."""
        if not self._free:
            raise FlashViolation("flash chip is full: no free blocks")
        _, block = heapq.heappop(self._free)
        self._allocated.add(block)
        return block

    def free(self, block_no: int) -> None:
        """Erase and recycle a previously allocated block."""
        if block_no not in self._allocated:
            raise FlashViolation(f"block {block_no} is not allocated")
        self._allocated.remove(block_no)
        self.flash.erase_block(block_no)
        heapq.heappush(self._free, (self.flash.erase_count(block_no), block_no))

    def wear_spread(self) -> tuple[int, int]:
        """(min, max) erase counts across the chip — the levelling metric."""
        counts = [
            self.flash.erase_count(block)
            for block in range(self.flash.geometry.num_blocks)
        ]
        return min(counts), max(counts)
