"""NAND flash simulator: the storage substrate of a secure portable token.

The tutorial's Part II rests on two physical facts about NAND flash that this
module enforces rather than merely documents:

* **Write-by-page, erase-by-block.** A page can only be *programmed* once
  after the erase of its enclosing block; rewriting a page in place is a
  :class:`~repro.errors.FlashViolation`.
* **Sequential programming inside a block.** Real NAND chips require pages of
  a block to be programmed in increasing order; honouring it here means any
  data structure that "randomly writes" simply cannot be built on this model,
  which is exactly the design pressure that leads to the log-only structures
  of the paper.

Every operation is metered by a :class:`FlashCostModel` so benchmarks can
report IO counts and simulated latencies (the "17 IOs vs 640 IOs" style of
numbers in the slides).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import FlashViolation, PowerLossError

_ERASED = None  # sentinel content of a page that has been erased


@dataclass(frozen=True)
class FlashCostModel:
    """Latency model of one NAND operation, in microseconds.

    Defaults follow typical SLC NAND datasheet figures quoted in the
    flash-aware indexing literature the tutorial cites (BFTL, PBFilter):
    reads are cheap, programs ~10x dearer, erases ~60x dearer still.
    """

    read_us: float = 25.0
    program_us: float = 200.0
    erase_us: float = 1500.0


@dataclass
class FlashStats:
    """Mutable operation counters for one flash chip.

    ``spare_bytes`` meters the out-of-band page-header bytes programmed
    alongside page payloads (the cost of the self-describing pages that
    make crash recovery possible); it rides inside the same program
    operation so it adds no IOs, only metadata volume.
    """

    page_reads: int = 0
    page_programs: int = 0
    block_erases: int = 0
    spare_bytes: int = 0

    def time_us(self, cost: FlashCostModel) -> float:
        """Total simulated time of all operations under ``cost``."""
        return (
            self.page_reads * cost.read_us
            + self.page_programs * cost.program_us
            + self.block_erases * cost.erase_us
        )

    def snapshot(self) -> "FlashStats":
        """Return an independent copy (for before/after deltas in benches)."""
        return FlashStats(
            self.page_reads,
            self.page_programs,
            self.block_erases,
            self.spare_bytes,
        )

    def delta(self, before: "FlashStats") -> "FlashStats":
        """Operations performed since ``before`` was snapshotted."""
        return FlashStats(
            self.page_reads - before.page_reads,
            self.page_programs - before.page_programs,
            self.block_erases - before.block_erases,
            self.spare_bytes - before.spare_bytes,
        )


@dataclass(frozen=True)
class FlashGeometry:
    """Physical layout of a NAND chip.

    ``spare_size`` is the out-of-band (OOB) area every real NAND page
    carries next to its data area — the place firmware keeps ECC and
    logical-page metadata. The simulator stores per-page log headers
    there, so header overhead never eats into payload capacity and the
    record-packing arithmetic of every log is unchanged by durability.
    """

    page_size: int = 2048
    pages_per_block: int = 64
    num_blocks: int = 1024
    spare_size: int = 64

    @property
    def num_pages(self) -> int:
        return self.pages_per_block * self.num_blocks

    @property
    def capacity_bytes(self) -> int:
        return self.num_pages * self.page_size

    def block_of(self, page_no: int) -> int:
        return page_no // self.pages_per_block

    def page_index_in_block(self, page_no: int) -> int:
        return page_no % self.pages_per_block

    def first_page_of(self, block_no: int) -> int:
        return block_no * self.pages_per_block


class NandFlash:
    """A simulated NAND flash chip with strict programming-order rules.

    Pages hold arbitrary ``bytes`` up to ``geometry.page_size``. The chip
    starts fully erased. All constraint violations raise
    :class:`FlashViolation` so higher layers cannot accidentally rely on
    behaviour real hardware forbids.
    """

    def __init__(
        self,
        geometry: FlashGeometry | None = None,
        cost_model: FlashCostModel | None = None,
    ) -> None:
        self.geometry = geometry or FlashGeometry()
        self.cost_model = cost_model or FlashCostModel()
        self.stats = FlashStats()
        self._pages: list[bytes | None] = [_ERASED] * self.geometry.num_pages
        self._spares: list[bytes] = [b""] * self.geometry.num_pages
        # Next programmable page index inside each block (sequential rule).
        self._write_cursor: list[int] = [0] * self.geometry.num_blocks
        self._erase_counts: list[int] = [0] * self.geometry.num_blocks
        # Mutation observers (page caches invalidate through these).
        self._on_program: list = []
        self._on_erase: list = []
        self._on_power_cycle: list = []
        #: Read observer installed by :meth:`repro.obs.Tracer.watch_flash`
        #: (None when tracing is off — the hot path pays one None check).
        self.trace_read = None
        #: Optional :class:`~repro.fault.FaultPlan` intercepting programs
        #: and erases (None on the default, fault-free path).
        self.fault_injector = None

    def subscribe(
        self, on_program=None, on_erase=None, on_power_cycle=None
    ) -> None:
        """Register callbacks fired after a successful program / erase.

        ``on_program(page_no)`` runs after a page is programmed and
        ``on_erase(block_no)`` after a block is erased — the two events
        that can change what a page reads back, hence the complete
        invalidation feed for any cache sitting above the chip.
        ``on_power_cycle()`` fires when the chip loses power, before every
        subscription is dropped — the last chance for volatile layers
        (page caches) to reset alongside the RAM they live in.
        """
        if on_program is not None:
            self._on_program.append(on_program)
        if on_erase is not None:
            self._on_erase.append(on_erase)
        if on_power_cycle is not None:
            self._on_power_cycle.append(on_power_cycle)

    def unsubscribe(
        self, on_program=None, on_erase=None, on_power_cycle=None
    ) -> None:
        """Remove callbacks previously registered with :meth:`subscribe`."""
        if on_program is not None and on_program in self._on_program:
            self._on_program.remove(on_program)
        if on_erase is not None and on_erase in self._on_erase:
            self._on_erase.remove(on_erase)
        if on_power_cycle is not None and on_power_cycle in self._on_power_cycle:
            self._on_power_cycle.remove(on_power_cycle)

    # ------------------------------------------------------------------
    # Raw page/block operations
    # ------------------------------------------------------------------
    def read_page(self, page_no: int) -> bytes:
        """Read one page; erased pages read back as empty bytes."""
        self._check_page(page_no)
        self.stats.page_reads += 1
        if self.trace_read is not None:
            self.trace_read(page_no)
        content = self._pages[page_no]
        return b"" if content is _ERASED else content

    def read_page_with_spare(self, page_no: int) -> tuple[bytes, bytes]:
        """Read one page's data and spare (OOB) area in a single operation.

        This is the mount/recovery read path: real NAND transfers the spare
        area in the same page read, so the scan is metered as exactly one
        read per programmed page.
        """
        self._check_page(page_no)
        self.stats.page_reads += 1
        if self.trace_read is not None:
            self.trace_read(page_no)
        content = self._pages[page_no]
        if content is _ERASED:
            return b"", b""
        return content, self._spares[page_no]

    def program_page(self, page_no: int, data: bytes, spare: bytes = b"") -> None:
        """Program an erased page, respecting in-block sequential order.

        ``spare`` lands in the page's out-of-band area (page headers); it is
        written by the same program operation as the data area.
        """
        self._check_page(page_no)
        if len(data) > self.geometry.page_size:
            raise FlashViolation(
                f"page data of {len(data)} B exceeds page size "
                f"{self.geometry.page_size} B"
            )
        if len(spare) > self.geometry.spare_size:
            raise FlashViolation(
                f"spare data of {len(spare)} B exceeds spare size "
                f"{self.geometry.spare_size} B"
            )
        if self._pages[page_no] is not _ERASED:
            raise FlashViolation(
                f"page {page_no} already programmed; erase block "
                f"{self.geometry.block_of(page_no)} first (no in-place rewrite)"
            )
        block = self.geometry.block_of(page_no)
        expected = self._write_cursor[block]
        actual = self.geometry.page_index_in_block(page_no)
        if actual != expected:
            raise FlashViolation(
                f"block {block}: pages must be programmed sequentially; "
                f"expected in-block index {expected}, got {actual}"
            )
        fault = None
        if self.fault_injector is not None:
            fault = self.fault_injector.on_program(page_no, data, spare)
            if fault is not None:
                data, spare = fault.data, fault.spare
        self._pages[page_no] = bytes(data)
        self._spares[page_no] = bytes(spare)
        self._write_cursor[block] = actual + 1
        self.stats.page_programs += 1
        self.stats.spare_bytes += len(spare)
        if fault is not None and fault.kill:
            # Power died mid-program: the (torn) page is on silicon but the
            # host never learns — observers are RAM and RAM is gone.
            raise PowerLossError(
                f"power lost during program of page {page_no}"
            )
        for callback in self._on_program:
            callback(page_no)

    def erase_block(self, block_no: int) -> None:
        """Erase a whole block, resetting its write cursor."""
        self._check_block(block_no)
        fault = None
        if self.fault_injector is not None:
            fault = self.fault_injector.on_erase(block_no)
        if fault is not None and fault.kill and not fault.perform:
            # Power died before the erase pulse took effect.
            self.stats.block_erases += 1
            raise PowerLossError(
                f"power lost before erase of block {block_no}"
            )
        start = self.geometry.first_page_of(block_no)
        for page_no in range(start, start + self.geometry.pages_per_block):
            self._pages[page_no] = _ERASED
            self._spares[page_no] = b""
        self._write_cursor[block_no] = 0
        self._erase_counts[block_no] += 1
        self.stats.block_erases += 1
        if fault is not None and fault.kill:
            raise PowerLossError(
                f"power lost right after erase of block {block_no}"
            )
        for callback in self._on_erase:
            callback(block_no)

    # ------------------------------------------------------------------
    # Power loss
    # ------------------------------------------------------------------
    def power_cycle(self) -> None:
        """Simulate unplugging the token: volatile state dies, silicon stays.

        Programmed pages (data + spare), erase counts and the operation
        meter survive — they are physical. Everything host-side is dropped:
        program/erase/power subscribers (page caches get one last
        ``on_power_cycle`` so they can reset with the RAM they live in),
        the trace hook, and any attached fault injector. Write cursors are
        recomputed from page state, exactly as a NAND controller rediscovers
        them at boot.
        """
        for callback in self._on_power_cycle:
            callback()
        self._on_program.clear()
        self._on_erase.clear()
        self._on_power_cycle.clear()
        self.trace_read = None
        self.fault_injector = None
        pages_per_block = self.geometry.pages_per_block
        for block in range(self.geometry.num_blocks):
            start = self.geometry.first_page_of(block)
            cursor = 0
            while (
                cursor < pages_per_block
                and self._pages[start + cursor] is not _ERASED
            ):
                cursor += 1
            self._write_cursor[block] = cursor

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_erased(self, page_no: int) -> bool:
        self._check_page(page_no)
        return self._pages[page_no] is _ERASED

    def next_free_page(self, block_no: int) -> int | None:
        """In-block index of the next programmable page, or None if full."""
        self._check_block(block_no)
        cursor = self._write_cursor[block_no]
        if cursor >= self.geometry.pages_per_block:
            return None
        return cursor

    def erase_count(self, block_no: int) -> int:
        """Wear counter: how many times ``block_no`` has been erased."""
        self._check_block(block_no)
        return self._erase_counts[block_no]

    def total_time_us(self) -> float:
        return self.stats.time_us(self.cost_model)

    # ------------------------------------------------------------------
    def _check_page(self, page_no: int) -> None:
        if not 0 <= page_no < self.geometry.num_pages:
            raise FlashViolation(
                f"page {page_no} out of range [0, {self.geometry.num_pages})"
            )

    def _check_block(self, block_no: int) -> None:
        if not 0 <= block_no < self.geometry.num_blocks:
            raise FlashViolation(
                f"block {block_no} out of range [0, {self.geometry.num_blocks})"
            )


class BlockAllocator:
    """Wear-aware, block-granularity allocator over a :class:`NandFlash`.

    The tutorial's log framework allocates and reclaims flash space on a
    *block* basis precisely so partial garbage collection never happens; this
    allocator is the embodiment of that rule. Freeing a block erases it
    (paying the erase cost) and returns it to the free pool.

    Allocation is **wear-levelled**: among free blocks, the least-erased one
    is handed out first, so reorganization churn (allocate/drop cycles)
    spreads erases across the chip instead of hammering a hot region —
    NAND blocks endure a finite erase count, and log-structured designs
    live or die by this.
    """

    def __init__(self, flash: NandFlash, allocated=()) -> None:
        self.flash = flash
        #: Optional :class:`~repro.storage.cache.PageCache` every log built
        #: on this allocator reads through (see ``attach_cache``). Kept here
        #: because the allocator is the one object all storage structures
        #: already share.
        self.page_cache = None
        self._allocated: set[int] = set(allocated)
        # Heap of (erase_count, block); counts are refreshed lazily on pop.
        # Priorities are seeded from the chip's real wear counters so an
        # allocator built over a used chip (the mount/recovery path) still
        # levels wear instead of assuming a factory-fresh device.
        self._free: list[tuple[int, int]] = [
            (flash.erase_count(block), block)
            for block in range(flash.geometry.num_blocks)
            if block not in self._allocated
        ]
        heapq.heapify(self._free)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def allocated_blocks(self) -> int:
        return len(self._allocated)

    def attach_cache(self, cache) -> None:
        """Route every log read through ``cache`` (None to detach)."""
        self.page_cache = cache

    def allocate(self) -> int:
        """Pop the least-worn free (erased) block; raises when full."""
        while self._free:
            priority, block = heapq.heappop(self._free)
            current = self.flash.erase_count(block)
            if priority != current:
                # Stale priority (the block wore since it was pushed):
                # re-queue at its true wear level and keep popping.
                heapq.heappush(self._free, (current, block))
                continue
            self._allocated.add(block)
            return block
        raise FlashViolation("flash chip is full: no free blocks")

    def free(self, block_no: int) -> None:
        """Erase and recycle a previously allocated block."""
        if block_no not in self._allocated:
            raise FlashViolation(f"block {block_no} is not allocated")
        self._allocated.remove(block_no)
        self.flash.erase_block(block_no)
        heapq.heappush(self._free, (self.flash.erase_count(block_no), block_no))

    def wear_spread(self) -> tuple[int, int]:
        """(min, max) erase counts across the chip — the levelling metric."""
        counts = [
            self.flash.erase_count(block)
            for block in range(self.flash.geometry.num_blocks)
        ]
        return min(counts), max(counts)
