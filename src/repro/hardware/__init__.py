"""Secure-hardware simulation substrate (tokens, NAND flash, bounded RAM).

The tutorial's PDS architecture runs on *secure portable tokens*: a
tamper-resistant microcontroller with very small RAM attached to gigabytes of
NAND flash. We obviously cannot ship that silicon, so this package simulates
it faithfully enough that every algorithmic constraint of the paper is
enforced in software — see DESIGN.md, "Substitutions".
"""

from repro.hardware.flash import (
    BlockAllocator,
    FlashCostModel,
    FlashGeometry,
    FlashStats,
    NandFlash,
)
from repro.hardware.mcu import CpuCostModel, CpuStats, Microcontroller
from repro.hardware.profiles import (
    ALL_PROFILES,
    HardwareProfile,
    by_name,
    contactless_badge,
    flash_sensor,
    plug_server,
    secure_microsd,
    smart_usb_token,
)
from repro.hardware.ram import RamArena
from repro.hardware.token import KeyStore, SecurePortableToken

__all__ = [
    "ALL_PROFILES",
    "BlockAllocator",
    "CpuCostModel",
    "CpuStats",
    "FlashCostModel",
    "FlashGeometry",
    "FlashStats",
    "HardwareProfile",
    "KeyStore",
    "Microcontroller",
    "NandFlash",
    "RamArena",
    "SecurePortableToken",
    "by_name",
    "contactless_badge",
    "flash_sensor",
    "plug_server",
    "secure_microsd",
    "smart_usb_token",
]
