"""Secure microcontroller model: CPU cycle accounting plus a crypto engine.

The MCU is deliberately thin — data-management cost in the tutorial's setting
is dominated by flash IO and bounded by RAM, so the MCU's job here is to
(1) own the :class:`~repro.hardware.ram.RamArena`, (2) meter CPU work so
protocol benchmarks can compare crypto-heavy and crypto-light designs, and
(3) expose a small crypto-engine cost model (hardware AES/SHA blocks are
standard on secure MCUs, so symmetric work is cheap relative to modular
exponentiation, which is the asymmetry E6/E7 exhibit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.profiles import HardwareProfile
from repro.hardware.ram import RamArena


@dataclass(frozen=True)
class CpuCostModel:
    """Cycle charges for the operation classes the benchmarks distinguish."""

    cycles_per_byte_copy: float = 1.0
    cycles_per_compare: float = 4.0
    cycles_per_hash_byte: float = 12.0        # hardware-assisted SHA-256
    cycles_per_sym_byte: float = 10.0         # hardware-assisted AES/PRF
    cycles_per_modexp_bit: float = 40_000.0   # software big-number modexp


@dataclass
class CpuStats:
    """Cycle counters, split by operation class."""

    copy_cycles: float = 0.0
    compare_cycles: float = 0.0
    hash_cycles: float = 0.0
    symmetric_cycles: float = 0.0
    modexp_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        return (
            self.copy_cycles
            + self.compare_cycles
            + self.hash_cycles
            + self.symmetric_cycles
            + self.modexp_cycles
        )


class Microcontroller:
    """A metered secure MCU with a RAM arena and a cycle budget.

    All charges are *advisory accounting*: they never block execution, they
    only accumulate so that experiments can report simulated time at the
    profile's clock rate.
    """

    def __init__(
        self,
        profile: HardwareProfile,
        cost_model: CpuCostModel | None = None,
    ) -> None:
        self.profile = profile
        self.cost_model = cost_model or CpuCostModel()
        self.ram = RamArena(profile.ram_bytes)
        self.stats = CpuStats()

    # ------------------------------------------------------------------
    # Charging interface used by embedded algorithms and protocols
    # ------------------------------------------------------------------
    def charge_copy(self, num_bytes: int) -> None:
        self.stats.copy_cycles += num_bytes * self.cost_model.cycles_per_byte_copy

    def charge_compares(self, count: int) -> None:
        self.stats.compare_cycles += count * self.cost_model.cycles_per_compare

    def charge_hash(self, num_bytes: int) -> None:
        self.stats.hash_cycles += num_bytes * self.cost_model.cycles_per_hash_byte

    def charge_symmetric(self, num_bytes: int) -> None:
        self.stats.symmetric_cycles += (
            num_bytes * self.cost_model.cycles_per_sym_byte
        )

    def charge_modexp(self, modulus_bits: int, count: int = 1) -> None:
        """Charge ``count`` modular exponentiations at ``modulus_bits``."""
        self.stats.modexp_cycles += (
            count * modulus_bits * self.cost_model.cycles_per_modexp_bit
        )

    # ------------------------------------------------------------------
    def elapsed_us(self) -> float:
        """Simulated CPU time at the profile's clock frequency."""
        return self.stats.total_cycles / self.profile.cpu_mhz
