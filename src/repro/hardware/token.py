"""Secure Portable Token (SPT): the trusted element of the PDS architecture.

A token bundles the three properties the tutorial's "Why trust personal
secure HW solutions?" slide enumerates:

* a **tamper-resistant MCU** — modelled by :class:`Microcontroller` plus a
  tamper latch that, once tripped, destroys all key material and refuses
  further service (the cost/benefit asymmetry of physical attacks);
* **NAND flash storage** for GBs of personal data;
* a **keystore** holding the owner's cryptographic keys, accessible only to
  code running *inside* the token.

Tokens are the unit of trust everywhere above this layer: the embedded
engines of Part II run against ``token.flash``/``token.mcu``, and the global
protocols of Part III treat the set of tokens as mutually trusted elements
behind individually untrusted infrastructure.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools

from repro.errors import TamperedTokenError
from repro.hardware.flash import BlockAllocator, NandFlash
from repro.hardware.mcu import Microcontroller
from repro.hardware.profiles import HardwareProfile, smart_usb_token

_token_serial = itertools.count(1)


class KeyStore:
    """Named symmetric keys sealed inside the token's secure perimeter."""

    def __init__(self) -> None:
        self._keys: dict[str, bytes] = {}

    def install(self, name: str, key: bytes) -> None:
        if not key:
            raise ValueError("refusing to install an empty key")
        self._keys[name] = bytes(key)

    def get(self, name: str) -> bytes:
        try:
            return self._keys[name]
        except KeyError:
            raise KeyError(f"no key named {name!r} in this token") from None

    def names(self) -> list[str]:
        return sorted(self._keys)

    def destroy_all(self) -> None:
        """Zeroize every key (tamper response)."""
        self._keys.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._keys

    def __len__(self) -> int:
        return len(self._keys)


class SecurePortableToken:
    """One user's trusted device: MCU + flash + keystore + tamper latch."""

    def __init__(
        self,
        profile: HardwareProfile | None = None,
        owner: str = "",
        cache_pages: int = 0,
        flash: NandFlash | None = None,
        allocator: BlockAllocator | None = None,
    ) -> None:
        """``flash``/``allocator`` rebuild a token around surviving silicon.

        The default is a factory-fresh chip. After a power loss the flash
        contents outlive the token object, so the recovery path passes the
        same :class:`NandFlash` back in, along with the allocator the mount
        scan rebuilt from it (see :mod:`repro.storage.recovery`).
        """
        self.profile = profile or smart_usb_token()
        self.serial = next(_token_serial)
        self.owner = owner or f"user-{self.serial}"
        self.mcu = Microcontroller(self.profile)
        if allocator is not None and flash is None:
            flash = allocator.flash
        self.flash = flash or NandFlash(
            self.profile.flash_geometry, self.profile.flash_cost
        )
        if allocator is not None and allocator.flash is not self.flash:
            raise ValueError("allocator does not manage the provided flash")
        self.allocator = allocator or BlockAllocator(self.flash)
        self.keystore = KeyStore()
        self._tampered = False
        self.page_cache = None
        if cache_pages > 0:
            self.enable_page_cache(cache_pages)

    # ------------------------------------------------------------------
    # Page cache (RAM-charged hot-read layer over the flash chip)
    # ------------------------------------------------------------------
    def enable_page_cache(self, capacity_pages: int):
        """Install an LRU page cache charged against the MCU's RAM arena.

        All logs built on this token's allocator immediately read through
        it; returns the :class:`~repro.storage.cache.PageCache` so callers
        can inspect its stats. Enabling with 0 pages is allowed (a pure
        pass-through that still counts misses), matching the benchmarks'
        cache-disabled baseline.
        """
        from repro.storage.cache import PageCache  # avoid layering cycle

        if self.page_cache is not None:
            self.disable_page_cache()
        self.page_cache = PageCache(
            self.flash,
            capacity_pages,
            ram=self.mcu.ram,
            tag=f"pagecache:{self.owner}",
        )
        self.allocator.attach_cache(self.page_cache)
        return self.page_cache

    def disable_page_cache(self) -> None:
        """Remove the page cache, returning its RAM to the arena."""
        if self.page_cache is None:
            return
        self.allocator.attach_cache(None)
        self.page_cache.close()
        self.page_cache = None

    # ------------------------------------------------------------------
    @property
    def tampered(self) -> bool:
        return self._tampered

    def tamper(self) -> None:
        """Simulate a detected physical attack: zeroize and brick the token.

        A non-tamper-resistant profile (e.g. a plug server) cannot defend
        itself; tampering then succeeds *silently* — keys survive for the
        attacker — which is exactly why the PDS architecture insists on
        tamper-resistant hardware.
        """
        self._tampered = True
        if self.profile.tamper_resistant:
            self.keystore.destroy_all()

    def require_trusted(self) -> None:
        """Gate used by all secure entry points of the token firmware."""
        if self._tampered and self.profile.tamper_resistant:
            raise TamperedTokenError(
                f"token {self.serial} ({self.owner}) detected tampering and "
                "destroyed its key material"
            )

    # ------------------------------------------------------------------
    # Minimal in-token crypto primitives (metered through the MCU).
    # Heavier schemes live in repro.crypto; these cover the PRF/MAC needs
    # of storage encryption and protocol message authentication.
    # ------------------------------------------------------------------
    def prf(self, key_name: str, message: bytes) -> bytes:
        """Keyed PRF (HMAC-SHA256) evaluated inside the secure perimeter."""
        self.require_trusted()
        key = self.keystore.get(key_name)
        self.mcu.charge_hash(len(message))
        return hmac.new(key, message, hashlib.sha256).digest()

    def mac(self, key_name: str, message: bytes) -> bytes:
        """Message authentication code over ``message`` (same PRF, own name)."""
        return self.prf(key_name, b"mac|" + message)

    def verify_mac(self, key_name: str, message: bytes, tag: bytes) -> bool:
        self.require_trusted()
        expected = self.mac(key_name, message)
        return hmac.compare_digest(expected, tag)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SecurePortableToken(serial={self.serial}, owner={self.owner!r}, "
            f"profile={self.profile.name!r})"
        )
