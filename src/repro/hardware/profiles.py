"""Hardware profiles of the devices pictured in the tutorial.

Part II's "Target hardware" slide shows a spectrum of secure devices — smart
USB tokens, secure microSD cards, contactless badges, flash-equipped sensors
— all sharing one architecture: a tamper-resistant MCU with tiny RAM driving
gigabytes of NAND flash. Each profile below fixes the simulator parameters
for one such device so benchmarks can be run "on" different hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.flash import FlashCostModel, FlashGeometry

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class HardwareProfile:
    """Parameters of one secure device class."""

    name: str
    ram_bytes: int
    cpu_mhz: float
    flash_geometry: FlashGeometry
    flash_cost: FlashCostModel
    tamper_resistant: bool

    @property
    def flash_capacity_bytes(self) -> int:
        return self.flash_geometry.capacity_bytes


def smart_usb_token() -> HardwareProfile:
    """Smart USB token (Eurosmart-style): secure MCU + 8 GB-class NAND.

    We scale the flash down to 128 MB so simulations stay laptop-sized; the
    page/block structure — which is what the algorithms see — is unchanged.
    """
    return HardwareProfile(
        name="smart-usb-token",
        ram_bytes=64 * KB,
        cpu_mhz=50.0,
        flash_geometry=FlashGeometry(page_size=2048, pages_per_block=64, num_blocks=1024),
        flash_cost=FlashCostModel(read_us=25.0, program_us=200.0, erase_us=1500.0),
        tamper_resistant=True,
    )


def secure_microsd() -> HardwareProfile:
    """Secure microSD: a secure chip implanted in a 4 GB-class memory card."""
    return HardwareProfile(
        name="secure-microsd",
        ram_bytes=128 * KB,
        cpu_mhz=120.0,
        flash_geometry=FlashGeometry(page_size=4096, pages_per_block=128, num_blocks=512),
        flash_cost=FlashCostModel(read_us=25.0, program_us=250.0, erase_us=2000.0),
        tamper_resistant=True,
    )


def contactless_badge() -> HardwareProfile:
    """Contactless smart badge (the medical-folder sync carrier)."""
    return HardwareProfile(
        name="contactless-badge",
        ram_bytes=32 * KB,
        cpu_mhz=25.0,
        flash_geometry=FlashGeometry(page_size=2048, pages_per_block=64, num_blocks=256),
        flash_cost=FlashCostModel(read_us=35.0, program_us=300.0, erase_us=2500.0),
        tamper_resistant=True,
    )


def flash_sensor() -> HardwareProfile:
    """Sensor node with a flash memory card (Snoogle/Microsearch class)."""
    return HardwareProfile(
        name="flash-sensor",
        ram_bytes=16 * KB,
        cpu_mhz=8.0,
        flash_geometry=FlashGeometry(page_size=512, pages_per_block=32, num_blocks=512),
        flash_cost=FlashCostModel(read_us=50.0, program_us=350.0, erase_us=3000.0),
        tamper_resistant=False,
    )


def plug_server() -> HardwareProfile:
    """FreedomBox-style plug server: roomy but *not* tamper resistant.

    Used as the untrusted/weak end of the spectrum in Part I comparisons.
    """
    return HardwareProfile(
        name="plug-server",
        ram_bytes=256 * MB,
        cpu_mhz=1200.0,
        flash_geometry=FlashGeometry(page_size=4096, pages_per_block=128, num_blocks=2048),
        flash_cost=FlashCostModel(read_us=20.0, program_us=150.0, erase_us=1200.0),
        tamper_resistant=False,
    )


ALL_PROFILES = {
    profile().name: profile
    for profile in (
        smart_usb_token,
        secure_microsd,
        contactless_badge,
        flash_sensor,
        plug_server,
    )
}


def by_name(name: str) -> HardwareProfile:
    """Look up a profile by its ``name`` field."""
    try:
        return ALL_PROFILES[name]()
    except KeyError:
        known = ", ".join(sorted(ALL_PROFILES))
        raise KeyError(f"unknown hardware profile {name!r}; known: {known}") from None
