"""Deterministic power-loss and corruption injection for the flash layer.

The tutorial's design case is explicit that secure portable tokens are
unplugged without warning; this module turns that threat into a test
instrument. A :class:`FaultPlan` attaches to a
:class:`~repro.hardware.flash.NandFlash` and intercepts every program and
erase:

* **kill-at-k** — at the k-th IO (programs and erases share one counter)
  power is lost: programs land *torn* (a prefix of the payload, no spare
  header), erases complete or not per the seeded RNG, and
  :class:`~repro.errors.PowerLossError` propagates to the workload;
* **torn writes** — the torn prefix length is drawn from the plan's RNG,
  so a given ``(seed, kill_at)`` pair always produces the same silicon
  state — the property sweeps rely on this determinism;
* **bit flips** — independent of kills, each programmed page is corrupted
  with probability ``bit_flip_rate`` (one random bit of the payload),
  which is what the CRC detection tests feed on.

Everything is driven by one ``random.Random(seed)``, mirroring how the
``repro.net`` loss/churn knobs are seeded, so a network churn schedule and
a fault plan can share a seed and compose into one reproducible scenario.
An external scheduler (e.g. a churn callback) can also call
:meth:`FaultPlan.kill_now` to unplug at the next IO regardless of ``k``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro import obs
from repro.errors import PowerLossError


@dataclass(frozen=True)
class ProgramFault:
    """What actually reaches the silicon for one intercepted program."""

    data: bytes
    spare: bytes
    kill: bool


@dataclass(frozen=True)
class EraseFault:
    """Outcome of one intercepted erase: did the pulse land, does power die?"""

    perform: bool
    kill: bool


class FaultPlan:
    """Seeded, composable fault injector for one :class:`NandFlash`.

    ``kill_at`` is an op index (or iterable of indexes) counted over
    programs *and* erases, starting at 0; the plan kills execution at each
    scheduled op exactly once. With ``torn_writes`` (default) a killed
    program leaves a prefix-only payload and no spare header — the shape a
    real interrupted NAND program leaves behind. ``bit_flip_rate`` is a
    per-page probability of silent payload corruption, applied to
    non-killed programs.
    """

    def __init__(
        self,
        kill_at: int | None = None,
        *,
        torn_writes: bool = True,
        bit_flip_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        if kill_at is None:
            self._kill_at: set[int] = set()
        elif isinstance(kill_at, int):
            self._kill_at = {kill_at}
        else:
            self._kill_at = set(kill_at)
        if any(k < 0 for k in self._kill_at):
            raise ValueError("kill_at op indexes must be >= 0")
        if not 0.0 <= bit_flip_rate <= 1.0:
            raise ValueError("bit_flip_rate must be within [0, 1]")
        self.torn_writes = torn_writes
        self.bit_flip_rate = bit_flip_rate
        self.seed = seed
        self._rng = random.Random(seed)
        self._kill_next = False
        #: Programs + erases observed so far (the kill_at index space).
        self.ops_seen = 0
        #: Kills delivered (a plan can schedule several).
        self.kills = 0
        #: Pages whose payload was silently bit-flipped.
        self.flipped_pages: list[int] = []
        #: Pages left torn by a kill (empty payload counts as torn too).
        self.torn_pages: list[int] = []

    # ------------------------------------------------------------------
    def attach(self, flash) -> "FaultPlan":
        """Install on ``flash``; returns self for chaining."""
        flash.fault_injector = self
        return self

    def kill_now(self) -> None:
        """Unplug at the next IO — the hook external schedulers drive.

        A ``repro.net`` churn callback can call this when a node leaves
        the network, turning a churn event into a token unplug.
        """
        self._kill_next = True

    def _take_kill(self) -> bool:
        op = self.ops_seen
        self.ops_seen += 1
        if self._kill_next or op in self._kill_at:
            self._kill_next = False
            self._kill_at.discard(op)
            self.kills += 1
            # The flight recorder triggers on this event: an injected kill
            # is exactly the anomaly whose preceding spans matter.
            obs.event("fault.kill", op=op, kills=self.kills)
            return True
        return False

    # ------------------------------------------------------------------
    # NandFlash hooks
    # ------------------------------------------------------------------
    def on_program(
        self, page_no: int, data: bytes, spare: bytes
    ) -> ProgramFault | None:
        if self._take_kill():
            if self.torn_writes:
                cut = self._rng.randrange(len(data) + 1) if data else 0
                self.torn_pages.append(page_no)
                # The interrupted program charges cells up to the cut and
                # never reaches the spare area: no header, broken CRC.
                return ProgramFault(data=data[:cut], spare=b"", kill=True)
            return ProgramFault(data=data, spare=spare, kill=True)
        if self.bit_flip_rate and self._rng.random() < self.bit_flip_rate and data:
            bit = self._rng.randrange(len(data) * 8)
            corrupted = bytearray(data)
            corrupted[bit >> 3] ^= 1 << (bit & 7)
            self.flipped_pages.append(page_no)
            return ProgramFault(data=bytes(corrupted), spare=spare, kill=False)
        return None

    def on_erase(self, block_no: int) -> EraseFault | None:
        if self._take_kill():
            # An interrupted erase either completed the pulse or left the
            # block untouched; the seeded RNG decides, deterministically.
            return EraseFault(perform=self._rng.random() < 0.5, kill=True)
        return None


def unplug(flash) -> None:
    """Simulate yanking the token right now (outside any IO operation).

    Volatile state is discarded exactly as in a mid-IO power loss; since no
    operation was in flight, no page is torn. This is the clean composition
    point for ``repro.net`` churn: when a node churns out, unplug its
    token, and remount when it returns.
    """
    flash.power_cycle()


__all__ = [
    "EraseFault",
    "FaultPlan",
    "PowerLossError",
    "ProgramFault",
    "unplug",
]
