"""Fault injection: power loss, torn writes and bit rot for crash testing.

See :mod:`repro.fault.plan` for the injector and
:mod:`repro.storage.recovery` for the mount path that survives it.
"""

from repro.errors import PowerLossError
from repro.fault.plan import EraseFault, FaultPlan, ProgramFault, unplug

__all__ = [
    "EraseFault",
    "FaultPlan",
    "PowerLossError",
    "ProgramFault",
    "unplug",
]
