"""Exception hierarchy shared by every subsystem of the PDS reproduction.

Each hardware or protocol violation gets its own exception type so tests can
assert on the *precise* constraint that was broken (e.g. an in-place flash
page rewrite vs. a RAM budget overflow), mirroring how the tutorial's
secure-token platform would fail at distinct layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class HardwareError(ReproError):
    """Base class for secure-hardware simulation violations."""


class FlashViolation(HardwareError):
    """An operation violated the NAND flash programming model.

    Raised when code attempts an in-place page rewrite, programs the pages of
    a block out of order, or addresses a page/block outside the chip.
    """


class RamBudgetExceeded(HardwareError):
    """An allocation pushed RAM consumption past the MCU's budget.

    The tutorial's central design constraint is RAM < 128 KB; every embedded
    algorithm must fail loudly (here) rather than silently spill.
    """


class TamperedTokenError(HardwareError):
    """A secure token detected tampering and destroyed its key material."""


class PowerLossError(HardwareError):
    """The token was unplugged mid-operation (simulated power loss).

    Raised by a :class:`~repro.fault.FaultPlan` at the scheduled IO; all
    volatile state (RAM, caches, observers) is gone, flash contents up to
    the interrupted operation survive, and the only way forward is
    :meth:`~repro.hardware.flash.NandFlash.power_cycle` followed by
    :func:`~repro.storage.recovery.mount`.
    """


class StorageError(ReproError):
    """Base class for log-structured storage failures."""


class LogSealedError(StorageError):
    """An append was attempted on a log that has been sealed (made immutable)."""


class RecoveryError(StorageError):
    """A mount/recovery scan found flash state it cannot reconcile.

    Distinct from :class:`StorageError` raised on the live path: recovery
    errors mean the on-flash image itself is inconsistent beyond what the
    crash model allows (e.g. a bucket id outside the directory being
    remounted), not that a caller misused an API.
    """


class AccessDenied(ReproError):
    """An access-control rule rejected an operation on a PDS."""


class ProtocolError(ReproError):
    """A distributed protocol message was malformed or arrived out of order."""


class NetError(ReproError):
    """Base class for simulated-network (``repro.net``) failures."""


class NetTimeout(NetError):
    """A deadline expired while waiting for a frame or delivery slot."""


class RetriesExhausted(NetError):
    """A retried network operation failed on every allowed attempt."""


class IntegrityError(ProtocolError):
    """A verification primitive caught the SSI (or a participant) cheating."""


class QueryError(ReproError):
    """A query referenced unknown tables/columns or used unsupported syntax."""
