"""Embedded store for hierarchical documents (the XML extension).

The log-framework recipe, applied to path postings:

* a **posting log** of backward-chained hash buckets keyed by *path*, each
  entry carrying ``(docid, encoded leaf value)`` — docids increase, so
  bucket chains replay per-path postings in descending docid order (the
  same property the search engine's merge uses);
* a small **path dictionary** (the distinct paths seen so far) kept in RAM
  and mirrored to a flash log — path vocabularies are schema-sized, not
  data-sized, so this respects the RAM budget;
* queries: exact or pattern paths (``//suffix``, ``*``), optional value
  equality, and conjunctions intersected on sorted docids.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import QueryError
from repro.hardware.flash import BlockAllocator
from repro.hardware.ram import RamArena
from repro.hierarchical.paths import flatten, path_matches
from repro.relational.tuples import decode_key, encode_key
from repro.storage.hashbucket import ChainedBucketLog, bucket_of
from repro.storage.log import RecordLog

_DOCID = struct.Struct("<I")


@dataclass
class PathQueryStats:
    """Flash pages touched by the last query."""

    bucket_pages: int = 0


class HierarchicalStore:
    """Tree documents on a token: flatten, post, merge-query."""

    def __init__(
        self,
        allocator: BlockAllocator,
        num_buckets: int = 64,
        ram: RamArena | None = None,
    ) -> None:
        self.buckets = ChainedBucketLog(
            allocator, num_buckets, name="paths", ram=ram
        )
        self.num_buckets = num_buckets
        self._path_dictionary: dict[str, int] = {}  # path -> posting count
        self._path_log = RecordLog(allocator, name="path-dictionary")
        self._doc_count = 0

    # ------------------------------------------------------------------
    @property
    def doc_count(self) -> int:
        return self._doc_count

    @property
    def paths(self) -> list[str]:
        """The distinct paths seen so far (the schema-ish vocabulary)."""
        return sorted(self._path_dictionary)

    def add_document(self, document: dict) -> int:
        """Flatten and index one document; returns its docid."""
        docid = self._doc_count
        for path, value in flatten(document):
            entry = _DOCID.pack(docid) + encode_key(value)
            self.buckets.append(bucket_of(path, self.num_buckets), entry_with_path(path, entry))
            if path not in self._path_dictionary:
                self._path_dictionary[path] = 0
                self._path_log.append(path.encode("utf-8"))
            self._path_dictionary[path] += 1
        self._doc_count += 1
        return docid

    def flush(self) -> None:
        self.buckets.flush_all()
        self._path_log.flush()

    # ------------------------------------------------------------------
    def _paths_for(self, pattern: str) -> list[str]:
        matches = [
            path for path in self._path_dictionary if path_matches(pattern, path)
        ]
        return matches

    def find(self, pattern: str, value=None) -> list[int]:
        """Docids with a leaf at ``pattern`` (optionally equal to ``value``).

        Scans the bucket chain of each concrete path the pattern expands
        to; docids come back ascending and deduplicated.
        """
        docids: set[int] = set()
        wanted = encode_key(value) if value is not None else None
        for path in self._paths_for(pattern):
            for entry_path, docid, encoded in self._iter_path(path):
                if wanted is None or encoded == wanted:
                    docids.add(docid)
        return sorted(docids)

    def values_at(self, pattern: str) -> list[object]:
        """All leaf values under ``pattern`` (duplicates preserved)."""
        values = []
        for path in self._paths_for(pattern):
            for _, _, encoded in self._iter_path(path):
                values.append(decode_key(encoded))
        return values

    def find_range(self, pattern: str, low, high) -> list[int]:
        """Docids with a leaf at ``pattern`` whose value is in [low, high].

        Uses the order-preserving key encoding, so it works for numbers and
        strings alike (within one type).
        """
        low_key, high_key = encode_key(low), encode_key(high)
        if low_key > high_key:
            raise QueryError("empty range: low > high")
        docids: set[int] = set()
        for path in self._paths_for(pattern):
            for _, docid, encoded in self._iter_path(path):
                if low_key <= encoded <= high_key:
                    docids.add(docid)
        return sorted(docids)

    def find_all(self, conditions: list[tuple[str, object]]) -> list[int]:
        """Conjunctive query: docids satisfying every ``(pattern, value)``.

        ``value`` may be None for pure existence conditions.
        """
        if not conditions:
            raise QueryError("need at least one condition")
        result: set[int] | None = None
        for pattern, value in conditions:
            matched = set(self.find(pattern, value))
            result = matched if result is None else (result & matched)
            if not result:
                return []
        return sorted(result or [])

    def _iter_path(self, path: str):
        """Yield ``(path, docid, encoded value)`` for one concrete path."""
        bucket = bucket_of(path, self.num_buckets)
        prefix = path.encode("utf-8") + b"\x00"
        for entry in self.buckets.iter_bucket(bucket):
            if not entry.startswith(prefix):
                continue  # hash collision with another path
            body = entry[len(prefix):]
            (docid,) = _DOCID.unpack_from(body, 0)
            yield path, docid, body[_DOCID.size:]


def entry_with_path(path: str, body: bytes) -> bytes:
    """Posting layout: ``path \\x00 docid value`` (path filters collisions)."""
    return path.encode("utf-8") + b"\x00" + body
