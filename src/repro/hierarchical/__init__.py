"""Hierarchical (XML-like) document storage — the last named extension.

Tree documents are flattened into path postings stored in bucket-chained
flash logs; queries support exact paths, ``//suffix`` and ``*`` patterns,
value equality and conjunctions, all in the token's RAM budget.
"""

from repro.hierarchical.paths import SEP, flatten, path_matches
from repro.hierarchical.store import HierarchicalStore, PathQueryStats

__all__ = [
    "SEP",
    "HierarchicalStore",
    "PathQueryStats",
    "flatten",
    "path_matches",
]
