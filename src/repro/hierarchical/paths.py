"""Hierarchical (XML-like) documents flattened into path postings.

The first item on Part II's extension list is **XML**. Personal data is
full of tree-shaped records (administrative forms, medical reports,
exported profiles); the log framework handles them by *flattening*: a
document becomes a set of ``(path, value)`` pairs, where a path is the
slash-joined chain of element names from the root, e.g.::

    {"person": {"address": {"city": "lyon"}, "age": 34}}
      ->  ("person/address/city", "lyon"), ("person/age", 34)

Lists contribute one posting per element (XML's repeated elements). The
flattening is the bridge between tree documents and the bucket-chained
posting storage of :mod:`repro.hierarchical.store`.
"""

from __future__ import annotations

from repro.errors import QueryError

#: Path component separator (element names must not contain it).
SEP = "/"


def flatten(document: dict) -> list[tuple[str, object]]:
    """All ``(path, leaf value)`` pairs of a nested document, in order."""
    if not isinstance(document, dict):
        raise QueryError("a hierarchical document must be a dict at the root")
    postings: list[tuple[str, object]] = []
    _flatten_into(document, "", postings)
    return postings


def _flatten_into(node, prefix: str, postings: list) -> None:
    if isinstance(node, dict):
        for name in sorted(node):
            if SEP in name:
                raise QueryError(
                    f"element name {name!r} must not contain {SEP!r}"
                )
            child_prefix = f"{prefix}{SEP}{name}" if prefix else name
            _flatten_into(node[name], child_prefix, postings)
    elif isinstance(node, list):
        for element in node:
            _flatten_into(element, prefix, postings)
    elif isinstance(node, (str, int, float)) and not isinstance(node, bool):
        postings.append((prefix, node))
    elif node is None:
        pass  # empty elements contribute nothing
    else:
        raise QueryError(
            f"unsupported leaf type {type(node).__name__} at {prefix!r}"
        )


def path_matches(pattern: str, path: str) -> bool:
    """XPath-flavoured matching against a concrete path.

    Supported patterns:

    * ``a/b/c``   — exact path;
    * ``//c``     — any path *ending* with the suffix ``c`` (descendant
      axis at the start);
    * ``a//c``    — prefix ``a``, then anything, then suffix ``c``;
    * ``*`` as a single component — matches exactly one element name.
    """
    if "//" in pattern:
        head, _, tail = pattern.partition("//")
        if head and not _components_match(
            head.split(SEP), path.split(SEP)[: len(head.split(SEP))]
        ):
            return False
        if not tail:
            return True
        tail_parts = tail.split(SEP)
        path_parts = path.split(SEP)
        if len(path_parts) < len(tail_parts):
            return False
        return _components_match(tail_parts, path_parts[-len(tail_parts):])
    return _components_match(pattern.split(SEP), path.split(SEP))


def _components_match(pattern_parts: list[str], path_parts: list[str]) -> bool:
    if len(pattern_parts) != len(path_parts):
        return False
    return all(
        want in ("*", got) for want, got in zip(pattern_parts, path_parts)
    )
