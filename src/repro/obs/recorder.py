"""Anomaly flight recorder: a bounded ring of recent spans, dumped on demand.

A long-lived SSI runs for hours; keeping every span of every query is
exactly what head sampling exists to avoid. But the traces you most want
are the ones around an *anomaly* — an :class:`~repro.service.admission.
Overloaded` shed, a per-class SLO breach, an injected
:class:`~repro.fault.plan.FaultPlan` kill, a post-crash ``mount()``. The
:class:`FlightRecorder` squares that: it rides the tracer's record hook,
keeping only the last ``capacity`` closed spans (and recent events) in a
ring, and on a trigger freezes that ring into a self-contained JSONL
bundle — spans, events, a metrics-registry snapshot, and whatever the
trigger knew (shed queue depths, breach p99s) — cheap enough to leave on
always, complete enough to reconstruct the minutes before the incident.

Where the recorder runs *on-token*, its ring is charged against the MCU's
128 KB :class:`~repro.hardware.ram.RamArena` like any other buffer (pass
``ram=``); the service-side recorder runs on the untrusted SSI and pays
no token RAM.

Bundle format (one JSON object per line, validated by
:mod:`repro.obs.check`):

* line 1 — ``{"type": "bundle", "schema_version": 2, "reason": ...,
  "details": {...}, "span_count": N, "event_count": M}``;
* then the span records (schema-v2 :func:`~repro.obs.export.span_dict`);
* then the event records;
* last line — ``{"type": "metrics", "snapshot": {...}}``.

:class:`SloMonitor` supplies one of the triggers: per-class tumbling
windows over :class:`~repro.obs.metrics.PercentileHistogram`, firing a
callback whenever a window's p99 exceeds the class SLO.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Callable

from repro.obs.export import SCHEMA_VERSION, _jsonable, span_dict
from repro.obs.metrics import PercentileHistogram, global_registry
from repro.obs.tracer import Tracer

#: RAM charged per ring slot where the recorder runs on-token: a span
#: reference plus its amortized share of counter dicts.
SLOT_BYTES = 96

#: Event names that trigger a dump the moment they are recorded.
TRIGGER_EVENTS = {
    "fault.kill": "fault_kill",
    "recovery.mount": "recovery_mount",
}


class FlightRecorder:
    """Bounded ring of recently-closed spans + events, dumped on triggers."""

    def __init__(
        self,
        capacity: int = 256,
        event_capacity: int | None = None,
        dump_dir=None,
        max_dumps: int = 8,
        ram=None,
        registry=None,
        trigger_events: dict[str, str] | None = None,
    ) -> None:
        self.capacity = capacity
        self.spans: deque = deque(maxlen=capacity)
        self.events: deque = deque(maxlen=event_capacity or capacity)
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.max_dumps = max_dumps
        self.registry = registry
        self.trigger_events = (
            dict(TRIGGER_EVENTS) if trigger_events is None else trigger_events
        )
        self.triggers = 0
        self.dumps: list[Path] = []
        self.last_trigger: dict | None = None
        self._ram = ram
        self._ram_handle = None
        self._tracer: Tracer | None = None
        self._prev_on_record = None
        self._prev_on_event = None

    # ------------------------------------------------------------------
    # Tracer attachment
    # ------------------------------------------------------------------
    def attach(self, tracer: Tracer) -> "FlightRecorder":
        """Start riding ``tracer``'s record/event hooks (chains existing)."""
        if self._tracer is not None:
            return self
        if self._ram is not None:
            self._ram_handle = self._ram.allocate(
                self.capacity * SLOT_BYTES, "obs.flight_recorder"
            )
        self._tracer = tracer
        self._prev_on_record = tracer.on_record
        self._prev_on_event = tracer.on_event
        tracer.on_record = self._on_record
        tracer.on_event = self._on_event
        return self

    def detach(self) -> None:
        """Unhook from the tracer and return any charged RAM (idempotent)."""
        tracer = self._tracer
        if tracer is None:
            return
        if tracer.on_record is self._on_record:
            tracer.on_record = self._prev_on_record
        if tracer.on_event is self._on_event:
            tracer.on_event = self._prev_on_event
        self._tracer = None
        if self._ram_handle is not None:
            self._ram.free(self._ram_handle)
            self._ram_handle = None

    def _on_record(self, span) -> None:
        self.spans.append(span)
        if self._prev_on_record is not None:
            self._prev_on_record(span)

    def _on_event(self, record: dict) -> None:
        self.events.append(record)
        reason = self.trigger_events.get(record["name"])
        if reason is not None:
            self.trigger(reason, **record["attrs"])
        if self._prev_on_event is not None:
            self._prev_on_event(record)

    # ------------------------------------------------------------------
    # Triggering and dumping
    # ------------------------------------------------------------------
    def trigger(self, reason: str, **details) -> Path | None:
        """Freeze the ring into a bundle file (if a dump dir is set).

        Always counts the trigger and remembers it; writes a bundle only
        while under ``max_dumps`` — a shed *storm* must not turn the
        recorder into its own IO incident.
        """
        self.triggers += 1
        self.last_trigger = {"reason": reason, "details": details}
        if self.dump_dir is None or len(self.dumps) >= self.max_dumps:
            return None
        self.dump_dir.mkdir(parents=True, exist_ok=True)
        path = self.dump_dir / f"flight-{self.triggers:04d}-{reason}.jsonl"
        self.dump(path, reason=reason, details=details)
        self.dumps.append(path)
        return path

    def dump(self, path, reason: str = "manual", details: dict | None = None) -> Path:
        """Write the current ring as a self-contained JSONL bundle."""
        path = Path(path)
        spans = list(self.spans)
        events = list(self.events)
        registry = self.registry or global_registry()
        with path.open("w") as fh:
            fh.write(
                json.dumps(
                    {
                        "type": "bundle",
                        "schema_version": SCHEMA_VERSION,
                        "reason": reason,
                        "details": _jsonable(details or {}),
                        "span_count": len(spans),
                        "event_count": len(events),
                        "capacity": self.capacity,
                    }
                )
                + "\n"
            )
            for span in spans:
                fh.write(json.dumps(span_dict(span)) + "\n")
            for event in events:
                fh.write(
                    json.dumps(
                        {
                            "type": "event",
                            "name": event["name"],
                            "ts_us": round(event["ts_us"], 3),
                            "span_id": event["span_id"],
                            "attrs": _jsonable(event["attrs"]),
                        }
                    )
                    + "\n"
                )
            fh.write(
                json.dumps(
                    {"type": "metrics", "snapshot": _jsonable(registry.snapshot())}
                )
                + "\n"
            )
        return path

    def status(self) -> dict:
        return {
            "capacity": self.capacity,
            "spans_buffered": len(self.spans),
            "events_buffered": len(self.events),
            "triggers": self.triggers,
            "dumps": [str(p) for p in self.dumps],
            "last_trigger": _jsonable(self.last_trigger),
        }


class SloMonitor:
    """Per-class tumbling-window p99 monitors over PercentileHistogram.

    ``observe(query_class, latency_ms)`` feeds a completion; every
    ``window`` observations of a class, the window's p99 is compared
    against that class's SLO and ``on_breach(query_class, p99, slo)``
    fires on violation. Tumbling (reset per window) rather than rolling so
    one slow burst cannot poison the percentile forever, and so repeated
    breaches re-trigger — each window is an independent verdict.
    """

    def __init__(
        self,
        slo_p99_ms: dict[str, float],
        window: int = 32,
        on_breach: Callable[[str, float, float], None] | None = None,
    ) -> None:
        self.slo_p99_ms = dict(slo_p99_ms)
        self.window = max(1, window)
        self.on_breach = on_breach
        self.breaches: dict[str, int] = {}
        self.last_p99_ms: dict[str, float] = {}
        self._windows: dict[str, PercentileHistogram] = {}
        self._counts: dict[str, int] = {}

    def observe(self, query_class: str, latency_ms: float) -> None:
        slo = self.slo_p99_ms.get(query_class)
        if slo is None:
            return
        hist = self._windows.get(query_class)
        if hist is None:
            hist = self._windows[query_class] = PercentileHistogram()
        hist.observe(latency_ms)
        count = self._counts.get(query_class, 0) + 1
        if count < self.window:
            self._counts[query_class] = count
            return
        self._counts[query_class] = 0
        self._windows[query_class] = PercentileHistogram()
        p99 = hist.p99
        self.last_p99_ms[query_class] = p99
        if p99 > slo:
            self.breaches[query_class] = self.breaches.get(query_class, 0) + 1
            if self.on_breach is not None:
                self.on_breach(query_class, p99, slo)

    def status(self) -> dict:
        return {
            "slo_p99_ms": self.slo_p99_ms,
            "window": self.window,
            "breaches": dict(self.breaches),
            "last_p99_ms": {
                cls: round(v, 3) for cls, v in self.last_p99_ms.items()
            },
        }


__all__ = ["FlightRecorder", "SloMonitor", "SLOT_BYTES", "TRIGGER_EVENTS"]
