"""Schema checker for trace artifacts: ``python -m repro.obs.check``.

Validates the two files the exporters produce, so CI can prove a traced run
emitted well-formed artifacts without any third-party schema library:

* ``TRACE_*.jsonl`` — line-delimited records. The first line must be a
  ``meta`` record with a known ``schema_version``; every ``span`` record
  needs ids, monotonic ``start_us <= end_us``, numeric counters, a
  ``parent_id`` that refers to a span present in the file (spans are
  recorded on close, children before parents), and ``self_counters`` that
  never exceed the inclusive ``counters``;
* ``TRACE_*.json`` — a Chrome ``trace_event`` document: a ``traceEvents``
  list whose entries carry ``ph``/``name``/``ts`` (and ``dur`` for ``X``
  events).

Exit status 0 when every file passes; 1 with one line per problem
otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.obs.export import SCHEMA_VERSION

_SPAN_REQUIRED = (
    "name", "span_id", "start_us", "end_us", "duration_us",
    "counters", "self_counters",
)


def check_jsonl(path) -> list[str]:
    """Problems found in one JSONL span log (empty list = valid)."""
    problems: list[str] = []
    path = Path(path)
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    if not lines:
        return [f"{path}: empty file"]

    records = []
    for lineno, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{lineno}: invalid JSON ({exc})")
            continue
        if not isinstance(record, dict) or "type" not in record:
            problems.append(f"{path}:{lineno}: record needs a 'type' key")
            continue
        records.append((lineno, record))

    if not records:
        return problems or [f"{path}: no records"]
    first_lineno, first = records[0]
    if first.get("type") != "meta":
        problems.append(f"{path}:{first_lineno}: first record must be meta")
    elif first.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"{path}:{first_lineno}: schema_version "
            f"{first.get('schema_version')!r} != {SCHEMA_VERSION}"
        )

    span_ids: set[int] = set()
    for lineno, record in records:
        if record["type"] == "span":
            problems.extend(
                f"{path}:{lineno}: {problem}"
                for problem in _check_span(record, span_ids)
            )
            if isinstance(record.get("span_id"), int):
                span_ids.add(record["span_id"])
        elif record["type"] == "event":
            if "name" not in record or "ts_us" not in record:
                problems.append(
                    f"{path}:{lineno}: event needs name and ts_us"
                )
        elif record["type"] != "meta":
            problems.append(
                f"{path}:{lineno}: unknown record type {record['type']!r}"
            )
    return problems


def _check_span(record: dict, seen_ids: set[int]) -> list[str]:
    problems = []
    for key in _SPAN_REQUIRED:
        if key not in record:
            problems.append(f"span missing {key!r}")
    if problems:
        return problems
    if not isinstance(record["span_id"], int):
        problems.append("span_id must be an integer")
    if record["start_us"] > record["end_us"]:
        problems.append(
            f"start_us {record['start_us']} > end_us {record['end_us']}"
        )
    parent = record.get("parent_id")
    if parent is not None and parent not in seen_ids:
        # Children close (and are recorded) before their parents, so a
        # valid parent appears *after* its children — track open parents
        # by allowing forward references only to larger ids.
        if not (isinstance(parent, int) and parent < record["span_id"]):
            problems.append(f"parent_id {parent!r} is not a plausible span")
    for field in ("counters", "self_counters"):
        values = record[field]
        if not isinstance(values, dict):
            problems.append(f"{field} must be an object")
            continue
        for key, value in values.items():
            if not isinstance(value, (int, float)):
                problems.append(f"{field}[{key!r}] is not numeric")
    if isinstance(record["counters"], dict) and isinstance(
        record["self_counters"], dict
    ):
        for key, value in record["self_counters"].items():
            total = record["counters"].get(key)
            if isinstance(value, (int, float)) and isinstance(
                total, (int, float)
            ) and value > total + 1e-9:
                problems.append(
                    f"self_counters[{key!r}]={value} exceeds inclusive "
                    f"counters[{key!r}]={total}"
                )
    return problems


def check_chrome(path) -> list[str]:
    """Problems found in one Chrome trace_event file."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON ({exc})"]
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: traceEvents must be a non-empty list"]
    problems = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"{path}: traceEvents[{index}] is not an object")
            continue
        for key in ("ph", "name", "pid"):
            if key not in event:
                problems.append(
                    f"{path}: traceEvents[{index}] missing {key!r}"
                )
        if event.get("ph") == "X":
            if "ts" not in event or "dur" not in event:
                problems.append(
                    f"{path}: traceEvents[{index}] 'X' event needs ts + dur"
                )
            elif event["dur"] < 0:
                problems.append(
                    f"{path}: traceEvents[{index}] negative duration"
                )
    return problems


def check_file(path) -> list[str]:
    """Dispatch on extension: ``.jsonl`` span logs, ``.json`` Chrome traces."""
    if str(path).endswith(".jsonl"):
        return check_jsonl(path)
    return check_chrome(path)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print(
            "usage: python -m repro.obs.check TRACE.jsonl [TRACE.json ...]",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for path in argv:
        problems = check_file(path)
        if problems:
            failures += 1
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
