"""Schema checker for trace artifacts: ``python -m repro.obs.check``.

Validates the files the exporters produce, so CI can prove a traced run
emitted well-formed artifacts without any third-party schema library:

* ``TRACE_*.jsonl`` — line-delimited records. The first line must be a
  ``meta`` record with a known ``schema_version``; every ``span`` record
  needs ids, monotonic ``start_us <= end_us``, numeric counters, a
  ``parent_id`` that resolves to a span present in the file (no orphan
  spans), and ``self_counters`` that never exceed the inclusive
  ``counters``. Schema v2 adds the distributed-tracing fields: an
  optional positive ``trace_id``, an optional ``process`` label on spans
  adopted from worker processes, and a ``remote_parent`` flag marking a
  parent id that lives in the *submitting* tracer's id space (exempt
  from local resolution — the one legal kind of cross-file link);
* flight-recorder bundles (also ``.jsonl``) — first line is a ``bundle``
  header whose ``span_count``/``event_count`` must match the records
  that follow, and the last line must be a ``metrics`` snapshot.
  Ring-buffer truncation makes *unresolved* parents legal here (the
  parent span may have been evicted), but every other span rule holds;
* ``TRACE_*.json`` — a Chrome ``trace_event`` document: a
  ``traceEvents`` list whose entries carry ``ph``/``name``/``ts`` (and
  ``dur`` for ``X`` events).

Exit status 0 when every file passes; 1 with one line per problem
otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Accepted stream versions: v1 (single-process) artifacts stay valid.
_SCHEMA_VERSIONS = {1, 2}

_SPAN_REQUIRED = (
    "name", "span_id", "start_us", "end_us", "duration_us",
    "counters", "self_counters",
)


def _parse_lines(path: Path) -> tuple[list[str], list[tuple[int, dict]]]:
    problems: list[str] = []
    try:
        lines = path.read_text().splitlines()
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"], []
    if not lines:
        return [f"{path}: empty file"], []
    records = []
    for lineno, line in enumerate(lines, start=1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{lineno}: invalid JSON ({exc})")
            continue
        if not isinstance(record, dict) or "type" not in record:
            problems.append(f"{path}:{lineno}: record needs a 'type' key")
            continue
        records.append((lineno, record))
    return problems, records


def check_jsonl(path) -> list[str]:
    """Problems found in one JSONL artifact (trace stream or bundle)."""
    path = Path(path)
    problems, records = _parse_lines(path)
    if not records:
        return problems or [f"{path}: no records"]
    if records[0][1].get("type") == "bundle":
        return problems + _check_bundle(path, records)
    return problems + _check_stream(path, records)


def _collect_span_ids(
    path: Path, records: list[tuple[int, dict]]
) -> tuple[list[str], set[int]]:
    problems: list[str] = []
    span_ids: set[int] = set()
    for lineno, record in records:
        if record["type"] != "span":
            continue
        span_id = record.get("span_id")
        if isinstance(span_id, int):
            if span_id in span_ids:
                problems.append(f"{path}:{lineno}: duplicate span_id {span_id}")
            span_ids.add(span_id)
    return problems, span_ids


def _check_stream(path: Path, records: list[tuple[int, dict]]) -> list[str]:
    problems: list[str] = []
    first_lineno, first = records[0]
    if first.get("type") != "meta":
        problems.append(f"{path}:{first_lineno}: first record must be meta")
    elif first.get("schema_version") not in _SCHEMA_VERSIONS:
        problems.append(
            f"{path}:{first_lineno}: schema_version "
            f"{first.get('schema_version')!r} not in "
            f"{sorted(_SCHEMA_VERSIONS)}"
        )
    # Spans record on close (children before parents) and adopted spans
    # land mid-stream, so parent links can point either direction: collect
    # every id first, then demand each local link resolves — exactly.
    id_problems, span_ids = _collect_span_ids(path, records)
    problems.extend(id_problems)
    for lineno, record in records:
        if record["type"] == "span":
            problems.extend(
                f"{path}:{lineno}: {problem}"
                for problem in _check_span(
                    record, span_ids, require_parent=True
                )
            )
        elif record["type"] == "event":
            if "name" not in record or "ts_us" not in record:
                problems.append(
                    f"{path}:{lineno}: event needs name and ts_us"
                )
        elif record["type"] != "meta":
            problems.append(
                f"{path}:{lineno}: unknown record type {record['type']!r}"
            )
    return problems


def _check_bundle(path: Path, records: list[tuple[int, dict]]) -> list[str]:
    problems: list[str] = []
    header_lineno, header = records[0]
    if not isinstance(header.get("reason"), str):
        problems.append(f"{path}:{header_lineno}: bundle needs a reason")
    if header.get("schema_version") not in _SCHEMA_VERSIONS:
        problems.append(
            f"{path}:{header_lineno}: schema_version "
            f"{header.get('schema_version')!r} not in "
            f"{sorted(_SCHEMA_VERSIONS)}"
        )
    id_problems, span_ids = _collect_span_ids(path, records)
    problems.extend(id_problems)
    spans = events = metrics = 0
    for lineno, record in records[1:]:
        kind = record["type"]
        if kind == "span":
            spans += 1
            # The ring may have evicted a span's parent — unresolved
            # parents are legal in a bundle, everything else still holds.
            problems.extend(
                f"{path}:{lineno}: {problem}"
                for problem in _check_span(
                    record, span_ids, require_parent=False
                )
            )
        elif kind == "event":
            events += 1
            if "name" not in record or "ts_us" not in record:
                problems.append(
                    f"{path}:{lineno}: event needs name and ts_us"
                )
        elif kind == "metrics":
            metrics += 1
            if not isinstance(record.get("snapshot"), dict):
                problems.append(
                    f"{path}:{lineno}: metrics record needs a snapshot object"
                )
        else:
            problems.append(
                f"{path}:{lineno}: unknown record type {kind!r}"
            )
    if header.get("span_count") != spans:
        problems.append(
            f"{path}:{header_lineno}: span_count "
            f"{header.get('span_count')!r} != {spans} span records"
        )
    if header.get("event_count") != events:
        problems.append(
            f"{path}:{header_lineno}: event_count "
            f"{header.get('event_count')!r} != {events} event records"
        )
    if metrics != 1:
        problems.append(f"{path}: bundle needs exactly one metrics record")
    elif records[-1][1]["type"] != "metrics":
        problems.append(f"{path}: metrics record must be the bundle's last line")
    return problems


def _check_span(
    record: dict, span_ids: set[int], require_parent: bool
) -> list[str]:
    problems = []
    for key in _SPAN_REQUIRED:
        if key not in record:
            problems.append(f"span missing {key!r}")
    if problems:
        return problems
    if not isinstance(record["span_id"], int):
        problems.append("span_id must be an integer")
    if record["start_us"] > record["end_us"]:
        problems.append(
            f"start_us {record['start_us']} > end_us {record['end_us']}"
        )
    trace_id = record.get("trace_id")
    if trace_id is not None and not (
        isinstance(trace_id, int) and trace_id > 0
    ):
        problems.append(f"trace_id {trace_id!r} must be a positive integer")
    process = record.get("process")
    if process is not None and not isinstance(process, str):
        problems.append(f"process {process!r} must be a string")
    parent = record.get("parent_id")
    if parent is not None and not record.get("remote_parent"):
        if not isinstance(parent, int):
            problems.append(f"parent_id {parent!r} is not an integer")
        elif require_parent and parent not in span_ids:
            problems.append(f"parent_id {parent} is an orphan link")
    for field in ("counters", "self_counters"):
        values = record[field]
        if not isinstance(values, dict):
            problems.append(f"{field} must be an object")
            continue
        for key, value in values.items():
            if not isinstance(value, (int, float)):
                problems.append(f"{field}[{key!r}] is not numeric")
    if isinstance(record["counters"], dict) and isinstance(
        record["self_counters"], dict
    ):
        for key, value in record["self_counters"].items():
            total = record["counters"].get(key)
            if isinstance(value, (int, float)) and isinstance(
                total, (int, float)
            ) and value > total + 1e-9:
                problems.append(
                    f"self_counters[{key!r}]={value} exceeds inclusive "
                    f"counters[{key!r}]={total}"
                )
    return problems


def check_chrome(path) -> list[str]:
    """Problems found in one Chrome trace_event file."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON ({exc})"]
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: traceEvents must be a non-empty list"]
    problems = []
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"{path}: traceEvents[{index}] is not an object")
            continue
        for key in ("ph", "name", "pid"):
            if key not in event:
                problems.append(
                    f"{path}: traceEvents[{index}] missing {key!r}"
                )
        if event.get("ph") == "X":
            if "ts" not in event or "dur" not in event:
                problems.append(
                    f"{path}: traceEvents[{index}] 'X' event needs ts + dur"
                )
            elif event["dur"] < 0:
                problems.append(
                    f"{path}: traceEvents[{index}] negative duration"
                )
    return problems


def check_file(path) -> list[str]:
    """Dispatch on extension: ``.jsonl`` span logs/bundles, ``.json`` Chrome."""
    if str(path).endswith(".jsonl"):
        return check_jsonl(path)
    return check_chrome(path)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print(
            "usage: python -m repro.obs.check ARTIFACT.jsonl [TRACE.json ...]\n"
            "       (accepts trace streams, flight-recorder bundles, and\n"
            "        Chrome trace_event files)",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for path in argv:
        problems = check_file(path)
        if problems:
            failures += 1
            for problem in problems:
                print(problem, file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
