"""Distributed tracing for the live SSI: context, sampling, adoption.

:mod:`repro.obs.tracer` gives one *process* exact nested spans; this module
makes one *query* produce one coherent trace across the whole deployment —
querier wire frame, admission, snapshot execution, and every shard a
:class:`~repro.globalq.parallel.WorkerPool` child process runs:

* :class:`TraceContext` — the compact propagated triple (trace id, parent
  span id, head-sampling decision). It rides as an optional block in
  :mod:`repro.net.codec` frames (17 real wire bytes, so the byte-metered
  links charge for it) and pickles through worker-pool submissions;
* **deterministic head sampling** — :func:`should_sample` hashes
  ``(trace_id, rate)``, so a re-run over the same trace ids samples the
  *same* traces: sampled runs are reproducible, and sampling can never
  change an answer because the decision never feeds any query randomness;
* :func:`remote_recording` — a worker process records its shard spans into
  a throwaway local tracer and ships them home as plain dicts;
  :meth:`Tracer.adopt_remote` re-homes them under the submitting span with
  self-counters intact, preserving the E21 attribution invariant;
* :class:`AdaptiveSampler` — head sampling plus the always-keep rule:
  anomalies (sheds, SLO breaches, fault kills, recovery mounts) are
  recorded regardless of the head decision, because the flight recorder
  (:mod:`repro.obs.recorder`) listens to *events*, which sampling never
  suppresses;
* :class:`Telemetry` — the bundle a long-lived service installs: a
  wall-clock tracer watching the crypto counters, the sampler, a
  :class:`~repro.obs.recorder.FlightRecorder`, and per-class SLO monitors.
"""

from __future__ import annotations

import hashlib
import os
import struct
from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs import tracer as tracer_mod
from repro.obs.export import span_dict
from repro.obs.tracer import Tracer

#: Wire encoding of one TraceContext: trace id, parent span id, flags.
_WIRE = struct.Struct("<QQB")
#: Bytes a propagated context adds to a frame.
WIRE_SIZE = _WIRE.size

_FLAG_SAMPLED = 0x01

#: Hash-space denominator of the sampling decision.
_SAMPLE_SPACE = float(2**64)


@dataclass(frozen=True)
class TraceContext:
    """What crosses a wire or process boundary: id, parent, decision."""

    trace_id: int
    parent_span_id: int = 0
    sampled: bool = True

    def child(self, parent_span_id: int | None) -> "TraceContext":
        """The context to propagate from under ``parent_span_id``."""
        return TraceContext(
            trace_id=self.trace_id,
            parent_span_id=parent_span_id or 0,
            sampled=self.sampled,
        )

    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        flags = _FLAG_SAMPLED if self.sampled else 0
        return _WIRE.pack(
            self.trace_id & 0xFFFFFFFFFFFFFFFF,
            self.parent_span_id & 0xFFFFFFFFFFFFFFFF,
            flags,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "TraceContext":
        trace_id, parent, flags = _WIRE.unpack_from(data, 0)
        return cls(
            trace_id=trace_id,
            parent_span_id=parent,
            sampled=bool(flags & _FLAG_SAMPLED),
        )


def derive_trace_id(*parts) -> int:
    """Deterministic nonzero 64-bit trace id from arbitrary parts."""
    digest = hashlib.sha256(
        "|".join(str(part) for part in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "little") or 1


def should_sample(trace_id: int, rate: float) -> bool:
    """Deterministic head-sampling decision for ``trace_id`` at ``rate``.

    The decision is a pure function of the id and the rate — no RNG, no
    process state — so replaying the same workload samples the same
    traces, and a sampled run's trace set is a strict superset of any
    lower rate's (the hash fraction is compared against the rate).
    """
    if rate <= 0.0:
        return False
    if rate >= 1.0:
        return True
    digest = hashlib.sha256(b"sample:%d" % trace_id).digest()
    fraction = int.from_bytes(digest[:8], "little") / _SAMPLE_SPACE
    return fraction < rate


# ----------------------------------------------------------------------
# In-process context propagation
# ----------------------------------------------------------------------
def current_context() -> TraceContext | None:
    """The active trace context of this task, or None."""
    return tracer_mod.current_trace_context()


@contextmanager
def activate(context: TraceContext | None):
    """Make ``context`` the active trace context for the scope.

    While an *unsampled* context is active, :func:`repro.obs.span` returns
    the shared no-op span — the per-trace off switch head sampling needs.
    Events still record (the always-keep channel).
    """
    if context is None:
        yield None
        return
    token = tracer_mod.set_trace_context(context)
    try:
        yield context
    finally:
        tracer_mod.reset_trace_context(token)


def propagated(parent_span_id: int | None = None) -> TraceContext | None:
    """The context to ship across the next boundary, if any.

    Uses the active context's trace id and decision with the given (or
    current) span as the remote parent. When no context is active but a
    tracer is, an ad-hoc always-sampled context is synthesized so legacy
    profiled runs (``obs.profile``) still get child-process spans back.
    """
    from repro import obs

    context = current_context()
    if context is None:
        if obs.get_tracer() is None:
            return None
        context = TraceContext(trace_id=0, sampled=True)
    if parent_span_id is None:
        from repro import obs as _obs

        parent_span_id = _obs.current_span_id()
    return context.child(parent_span_id)


# ----------------------------------------------------------------------
# Worker-process span recording
# ----------------------------------------------------------------------
@dataclass
class TracedResult:
    """A worker's return value plus the spans it recorded (picklable)."""

    result: object
    spans: list
    process: str


class _RemoteRecording:
    """Handle yielded by :func:`remote_recording`."""

    def __init__(self, tracer: Tracer, process: str) -> None:
        self.tracer = tracer
        self.process = process

    def records(self) -> list[dict]:
        out = []
        for span in self.tracer.spans:
            record = span_dict(span)
            record["process"] = self.process
            out.append(record)
        return out

    def wrap(self, result) -> TracedResult:
        return TracedResult(
            result=result, spans=self.records(), process=self.process
        )


@contextmanager
def remote_recording(context: TraceContext, label: str = ""):
    """Record spans in a worker process for adoption by the submitter.

    Installs a throwaway wall-clock tracer (watching this process's
    ``crypto.modexp_count``), activates ``context``, and yields a handle
    whose :meth:`~_RemoteRecording.wrap` bundles the shard result with the
    recorded span dicts. Yields ``None`` — recording nothing — when the
    context is unsampled or a tracer created *in this process* is active
    (the serial path, where spans record directly). A tracer inherited
    through ``fork`` has a foreign ``pid``: it is the submitter's dead
    copy, so the worker records for shipment instead of writing into it.
    """
    from repro import obs

    if context is None or not context.sampled:
        yield None
        return
    active = obs.get_tracer()
    if active is not None and active.pid == os.getpid():
        yield None
        return
    tracer = Tracer()
    tracer.use_wall_clock()
    tracer.watch_modexp()
    process = label or f"worker-{os.getpid()}"
    handle = _RemoteRecording(tracer, process)
    # A forked worker also inherits the submitter's _CURRENT span; it
    # belongs to the dead tracer copy, and parenting under it would ship
    # a dangling intra-batch link. The batch root's parent is the trace
    # context's remote parent, nothing local.
    current_token = tracer_mod._CURRENT.set(None)
    try:
        with obs.tracing(tracer):
            with activate(context):
                yield handle
    finally:
        tracer_mod._CURRENT.reset(current_token)


def adopt(value, parent) -> object:
    """Unwrap a possibly-traced worker result, adopting its spans.

    ``parent`` is the open span awaiting the worker (a real
    :class:`~repro.obs.tracer.Span` or the shared no-op). Plain results
    pass through untouched, so call sites need no branching.
    """
    if not isinstance(value, TracedResult):
        return value
    from repro import obs

    tracer = obs.get_tracer()
    if tracer is not None and value.spans:
        real_parent = parent if isinstance(parent, tracer_mod.Span) else None
        tracer.adopt_remote(value.spans, real_parent)
    return value.result


# ----------------------------------------------------------------------
# The service bundle
# ----------------------------------------------------------------------
class AdaptiveSampler:
    """Head sampling with counters; anomalies bypass it by construction.

    ``context_for(*parts)`` derives a deterministic trace id from the
    parts (e.g. canonical descriptor + arrival index) and stamps the
    sampling decision. Anomalous traces need no special-casing here: the
    flight recorder triggers on *events*, which :func:`repro.obs.event`
    never samples away.
    """

    def __init__(self, rate: float = 1.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sampling rate must be within [0, 1]")
        self.rate = rate
        self.decisions = 0
        self.kept = 0

    def context_for(self, *parts) -> TraceContext:
        trace_id = derive_trace_id(*parts)
        sampled = should_sample(trace_id, self.rate)
        self.decisions += 1
        if sampled:
            self.kept += 1
        return TraceContext(trace_id=trace_id, sampled=sampled)

    def status(self) -> dict:
        return {
            "rate": self.rate,
            "decisions": self.decisions,
            "kept": self.kept,
        }


class Telemetry:
    """Everything a long-lived service installs to become inspectable.

    One object bundles the wall-clock tracer, the head sampler, the
    flight recorder, and optional per-class SLO monitors; the service
    holds it and the bench/tests read it back. Use as a context manager
    (or call :meth:`install`/:meth:`shutdown`)::

        telemetry = Telemetry(sample_rate=0.01, slo_p99_ms={"agg": 250.0})
        with telemetry:
            service = SsiQueryService(population, config, telemetry=telemetry)
            ...
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        slo_p99_ms: dict[str, float] | None = None,
        slo_window: int = 32,
        recorder_capacity: int = 256,
        dump_dir=None,
        max_dumps: int = 8,
        ram=None,
        max_spans: int = 200_000,
    ) -> None:
        from repro.obs.recorder import FlightRecorder, SloMonitor

        self.tracer = Tracer(max_spans=max_spans)
        self.tracer.use_wall_clock()
        self.tracer.watch_modexp()
        self.sampler = AdaptiveSampler(sample_rate)
        self.recorder = FlightRecorder(
            capacity=recorder_capacity,
            dump_dir=dump_dir,
            max_dumps=max_dumps,
            ram=ram,
        )
        self.slo = SloMonitor(
            slo_p99_ms or {},
            window=slo_window,
            on_breach=self._on_breach,
        )
        self._previous = None
        self._installed = False

    # ------------------------------------------------------------------
    def install(self) -> "Telemetry":
        """Attach the recorder and make the tracer process-active."""
        if self._installed:
            return self
        from repro import obs

        self.recorder.attach(self.tracer)
        self._previous = obs.get_tracer()
        obs.set_tracer(self.tracer)
        self._installed = True
        return self

    def shutdown(self) -> None:
        """Restore the previous tracer and detach every hook (idempotent)."""
        if not self._installed:
            return
        from repro import obs

        obs.set_tracer(self._previous)
        self.recorder.detach()
        self.tracer.close()
        self._installed = False

    def __enter__(self) -> "Telemetry":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def observe_latency(self, query_class: str, latency_ms: float) -> None:
        """Feed one completion into the per-class SLO monitors."""
        self.slo.observe(query_class, latency_ms)

    def _on_breach(self, query_class: str, p99_ms: float, slo_ms: float) -> None:
        from repro import obs

        obs.event(
            "slo.breach",
            query_class=query_class,
            p99_ms=round(p99_ms, 3),
            slo_ms=slo_ms,
        )
        self.recorder.trigger(
            "slo_breach",
            query_class=query_class,
            p99_ms=round(p99_ms, 3),
            slo_ms=slo_ms,
        )

    def status(self) -> dict:
        return {
            "sampler": self.sampler.status(),
            "recorder": self.recorder.status(),
            "slo": self.slo.status(),
            "spans_recorded": len(self.tracer.spans),
            "events_recorded": len(self.tracer.events),
            "dropped_spans": self.tracer.dropped_spans,
        }


__all__ = [
    "AdaptiveSampler",
    "Telemetry",
    "TraceContext",
    "TracedResult",
    "WIRE_SIZE",
    "activate",
    "adopt",
    "current_context",
    "derive_trace_id",
    "propagated",
    "remote_recording",
    "should_sample",
]
