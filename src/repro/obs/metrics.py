"""Process-wide metrics registry: one snapshot for every ``*Stats`` object.

The repo grew more than a dozen ad-hoc stats dataclasses —
:class:`~repro.hardware.flash.FlashStats`,
:class:`~repro.storage.cache.CacheStats`,
:class:`~repro.relational.query.ExecutionStats`,
:class:`~repro.search.engine.SearchStats`,
:class:`~repro.net.metrics.NetMetrics`,
:class:`~repro.smc.parties.CommStats`, the CPU cycle counters … — each
readable only by whoever holds the owning object. The
:class:`MetricsRegistry` rolls them up without breaking any of them: legacy
stats objects register through :meth:`MetricsRegistry.register_stats`, a
*pull* adapter that walks numeric dataclass fields (recursing into nested
stats dataclasses, flattening ``dict``/``Counter`` fields) at snapshot
time. Code that wants first-class instruments uses
:meth:`counter`/:meth:`gauge`/:meth:`histogram`/:meth:`percentiles`
directly.

``registry.snapshot()`` returns one flat JSON-ready dict — the object the
bench harness embeds into ``BENCH_<id>.json`` under ``meta["profile"]``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

#: Default histogram bucket upper bounds (powers of two, open-ended top).
DEFAULT_BOUNDS = tuple(2**i for i in range(0, 21, 2))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (levels, high-waters)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """Keep the running maximum (high-water convenience)."""
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max running summary."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        buckets = {
            f"le_{bound}": count
            for bound, count in zip(self.bounds, self.bucket_counts)
            if count
        }
        if self.bucket_counts[-1]:
            buckets["inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": buckets,
        }


#: Per-bucket growth factor of :class:`PercentileHistogram`. Fixed for the
#: whole process so every instance shares one bucket layout and any two can
#: merge; 2^(1/16) bounds the relative quantile error at ~4.4%.
PERCENTILE_GROWTH = 2.0 ** (1.0 / 16.0)
_LOG_GROWTH = math.log(PERCENTILE_GROWTH)
#: Bucket index collecting all observations <= 0 (latencies never are, but
#: an estimator must not crash on them).
_ZERO_BUCKET = -(2**31)


class PercentileHistogram:
    """Streaming p50/p99/p999 estimator over fixed logarithmic buckets.

    Observations land in geometric buckets ``(g^i, g^(i+1)]`` with
    ``g = PERCENTILE_GROWTH``, stored sparsely — memory is O(distinct
    magnitudes), never O(observations), which is what lets a long-lived
    service track latency forever. The layout is process-wide constant, so
    :meth:`merge` is exact bucket-count addition (shard-local histograms
    roll up to fleet-wide ones without resampling). Quantiles come back as
    the geometric midpoint of the covering bucket, clamped to the observed
    ``[min, max]``: relative error is bounded by the growth factor.
    """

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        index = (
            _ZERO_BUCKET if value <= 0.0
            else math.floor(math.log(value) / _LOG_GROWTH)
        )
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "PercentileHistogram") -> None:
        """Fold ``other`` in exactly (identical fixed layout by design)."""
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
            self.max = other.max if self.max is None else max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate (``0 < q <= 1``); 0.0 when empty."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if not self.count:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                if index == _ZERO_BUCKET:
                    return 0.0
                midpoint = math.exp((index + 0.5) * _LOG_GROWTH)
                return min(max(midpoint, self.min), self.max)
        return self.max  # unreachable; defensive

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def p999(self) -> float:
        return self.quantile(0.999)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
        }


def _flatten_stats(prefix: str, obj, out: dict, depth: int = 0) -> None:
    """Flatten one stats object into dotted numeric entries."""
    if depth > 4:  # defensive: stats objects are shallow by construction
        return
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for field in dataclasses.fields(obj):
            _flatten_stats(
                f"{prefix}.{field.name}", getattr(obj, field.name), out,
                depth + 1,
            )
        return
    if isinstance(obj, dict):
        for key, value in obj.items():
            name = (
                "->".join(str(part) for part in key)
                if isinstance(key, tuple)
                else str(key)
            )
            _flatten_stats(f"{prefix}.{name}", value, out, depth + 1)
        return
    if isinstance(obj, bool):
        out[prefix] = int(obj)
    elif isinstance(obj, (int, float)):
        out[prefix] = obj
    elif isinstance(obj, str):
        out[prefix] = obj
    # Anything else (iterables, objects) is not a metric: skip silently so
    # legacy dataclasses can keep non-numeric bookkeeping fields.


class MetricsRegistry:
    """Named instruments plus pull-registered legacy stats objects."""

    def __init__(self) -> None:
        self._instruments: dict[
            str, Counter | Gauge | Histogram | PercentileHistogram
        ] = {}
        self._pulls: list[tuple[str, Callable[[], object]]] = []

    # ------------------------------------------------------------------
    # First-class instruments
    # ------------------------------------------------------------------
    def _get(self, name: str, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def percentiles(self, name: str) -> PercentileHistogram:
        return self._get(name, PercentileHistogram)

    # ------------------------------------------------------------------
    # Legacy-stats adapters
    # ------------------------------------------------------------------
    def register_stats(self, prefix: str, stats) -> None:
        """Adapt a legacy ``*Stats`` object: read its fields at snapshot.

        ``stats`` may be a dataclass instance (fields are walked
        recursively) or a callable returning one / returning a dict.
        Registration is cheap and non-invasive — the object keeps working
        exactly as before, it is merely *also* visible in snapshots.
        """
        fn = stats if callable(stats) else (lambda: stats)
        self._pulls.append((prefix, fn))

    def unregister(self, prefix: str) -> None:
        self._pulls = [(p, fn) for p, fn in self._pulls if p != prefix]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One flat JSON-ready dict of every instrument and pulled stat."""
        out: dict = {}
        for name, instrument in sorted(self._instruments.items()):
            if isinstance(instrument, (Histogram, PercentileHistogram)):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        for prefix, fn in self._pulls:
            _flatten_stats(prefix, fn(), out)
        return out


#: The process-wide default registry (what ``repro.obs.get_registry()``
#: hands out when no profile is active).
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return _GLOBAL
