"""Process-wide metrics registry: one snapshot for every ``*Stats`` object.

The repo grew more than a dozen ad-hoc stats dataclasses —
:class:`~repro.hardware.flash.FlashStats`,
:class:`~repro.storage.cache.CacheStats`,
:class:`~repro.relational.query.ExecutionStats`,
:class:`~repro.search.engine.SearchStats`,
:class:`~repro.net.metrics.NetMetrics`,
:class:`~repro.smc.parties.CommStats`, the CPU cycle counters … — each
readable only by whoever holds the owning object. The
:class:`MetricsRegistry` rolls them up without breaking any of them: legacy
stats objects register through :meth:`MetricsRegistry.register_stats`, a
*pull* adapter that walks numeric dataclass fields (recursing into nested
stats dataclasses, flattening ``dict``/``Counter`` fields) at snapshot
time. Code that wants first-class instruments uses
:meth:`counter`/:meth:`gauge`/:meth:`histogram` directly.

``registry.snapshot()`` returns one flat JSON-ready dict — the object the
bench harness embeds into ``BENCH_<id>.json`` under ``meta["profile"]``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

#: Default histogram bucket upper bounds (powers of two, open-ended top).
DEFAULT_BOUNDS = tuple(2**i for i in range(0, 21, 2))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (levels, high-waters)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """Keep the running maximum (high-water convenience)."""
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max running summary."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(sorted(bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        buckets = {
            f"le_{bound}": count
            for bound, count in zip(self.bounds, self.bucket_counts)
            if count
        }
        if self.bucket_counts[-1]:
            buckets["inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": buckets,
        }


def _flatten_stats(prefix: str, obj, out: dict, depth: int = 0) -> None:
    """Flatten one stats object into dotted numeric entries."""
    if depth > 4:  # defensive: stats objects are shallow by construction
        return
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for field in dataclasses.fields(obj):
            _flatten_stats(
                f"{prefix}.{field.name}", getattr(obj, field.name), out,
                depth + 1,
            )
        return
    if isinstance(obj, dict):
        for key, value in obj.items():
            name = (
                "->".join(str(part) for part in key)
                if isinstance(key, tuple)
                else str(key)
            )
            _flatten_stats(f"{prefix}.{name}", value, out, depth + 1)
        return
    if isinstance(obj, bool):
        out[prefix] = int(obj)
    elif isinstance(obj, (int, float)):
        out[prefix] = obj
    elif isinstance(obj, str):
        out[prefix] = obj
    # Anything else (iterables, objects) is not a metric: skip silently so
    # legacy dataclasses can keep non-numeric bookkeeping fields.


class MetricsRegistry:
    """Named instruments plus pull-registered legacy stats objects."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._pulls: list[tuple[str, Callable[[], object]]] = []

    # ------------------------------------------------------------------
    # First-class instruments
    # ------------------------------------------------------------------
    def _get(self, name: str, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # ------------------------------------------------------------------
    # Legacy-stats adapters
    # ------------------------------------------------------------------
    def register_stats(self, prefix: str, stats) -> None:
        """Adapt a legacy ``*Stats`` object: read its fields at snapshot.

        ``stats`` may be a dataclass instance (fields are walked
        recursively) or a callable returning one / returning a dict.
        Registration is cheap and non-invasive — the object keeps working
        exactly as before, it is merely *also* visible in snapshots.
        """
        fn = stats if callable(stats) else (lambda: stats)
        self._pulls.append((prefix, fn))

    def unregister(self, prefix: str) -> None:
        self._pulls = [(p, fn) for p, fn in self._pulls if p != prefix]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One flat JSON-ready dict of every instrument and pulled stat."""
        out: dict = {}
        for name, instrument in sorted(self._instruments.items()):
            if isinstance(instrument, Histogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        for prefix, fn in self._pulls:
            _flatten_stats(prefix, fn(), out)
        return out


#: The process-wide default registry (what ``repro.obs.get_registry()``
#: hands out when no profile is active).
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return _GLOBAL
