"""``repro.obs.profile``: one context manager to trace + snapshot a run.

The bench harness (and anything else that wants a self-describing cost
report) wraps a workload in :func:`profile`::

    with obs.profile(token=db.token) as prof:
        rows, stats = db.query(query)
    experiment.meta["profile"] = prof.to_meta()
    prof.write(directory, stem="e20")   # TRACE_e20.json + TRACE_e20.jsonl

The context manager builds a :class:`~repro.obs.tracer.Tracer` watching the
given cost models, installs it as the process-active tracer so every
instrumented hot path starts emitting spans, registers the same stats into
a fresh :class:`~repro.obs.metrics.MetricsRegistry`, and on exit restores
whatever tracer was active before (profiles nest safely) and detaches all
hooks. The result object stays usable after exit — that is when benches
read it.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path

from repro.obs import export
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


class ProfileResult:
    """Everything one profiled run produced: the trace and the rollup."""

    def __init__(self, tracer: Tracer, registry: MetricsRegistry) -> None:
        self.tracer = tracer
        self.registry = registry

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """The registry's flat metrics dict (JSON-ready)."""
        return self.registry.snapshot()

    def spans_by_name(self) -> dict[str, dict]:
        return export.aggregate_by_name(self.tracer)

    def to_meta(self) -> dict:
        """The ``BENCH_<id>.json``-embeddable profile record."""
        return {
            "metrics": self.snapshot(),
            "spans_by_name": self.spans_by_name(),
            "span_count": len(self.tracer.spans),
            "event_count": len(self.tracer.events),
            "dropped_spans": self.tracer.dropped_spans,
            "sim_time_us": round(self.tracer.now_us(), 3),
        }

    def top(self, sort_key: str = "self_time_us", limit: int = 20) -> str:
        return export.top_cost_report(self.tracer, sort_key, limit)

    def flame(self, counter: str | None = None) -> str:
        return export.flame_report(self.tracer, counter)

    def write(self, directory=".", stem: str = "trace") -> dict[str, Path]:
        """Write ``TRACE_<stem>.json`` (Chrome) + ``TRACE_<stem>.jsonl``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        chrome = export.write_chrome_trace(
            self.tracer, directory / f"TRACE_{stem}.json", process_name=stem
        )
        jsonl = export.write_jsonl(
            self.tracer, directory / f"TRACE_{stem}.jsonl"
        )
        return {"chrome": chrome, "jsonl": jsonl}


@contextmanager
def profile(
    token=None,
    tokens=(),
    net_metrics=None,
    mcu=None,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    span_name: str | None = "profile",
):
    """Trace + meter a block of code against the given cost models.

    ``token`` / ``tokens`` watch full secure tokens (flash, CPU, RAM,
    page cache); ``net_metrics`` watches a :class:`NetMetrics`;
    pass a prebuilt ``tracer`` to control sources yourself. The whole run
    is wrapped in one root span (``span_name``; None to skip) so child
    costs always sum into a single tree.
    """
    from repro import obs

    tracer = tracer or Tracer()
    registry = registry or MetricsRegistry()
    watched = list(tokens)
    if token is not None:
        watched.insert(0, token)
    for index, one in enumerate(watched):
        prefix = "" if index == 0 else f"token{index}"
        tracer.watch_token(one, prefix)
        dot = f"{prefix}." if prefix else ""
        registry.register_stats(f"{dot}flash", one.flash.stats)
        registry.register_stats(f"{dot}cpu", one.mcu.stats)
        registry.register_stats(
            f"{dot}ram",
            (lambda ram=one.mcu.ram: {
                "in_use": ram.in_use,
                "high_water": ram.high_water,
                "budget_bytes": ram.budget_bytes,
            }),
        )
        if one.page_cache is not None:
            registry.register_stats(f"{dot}cache", one.page_cache.stats)
    if mcu is not None:
        tracer.watch_mcu(mcu)
        registry.register_stats("cpu", mcu.stats)
    if net_metrics is not None:
        tracer.watch_net(net_metrics)
        registry.register_stats("net", net_metrics)

    result = ProfileResult(tracer, registry)
    previous = obs.get_tracer()
    obs.set_tracer(tracer)
    root = tracer.span(span_name) if span_name else None
    try:
        if root is not None:
            root.__enter__()
        yield result
    finally:
        if root is not None:
            root.close()
        obs.set_tracer(previous)
        tracer.close()
