"""repro.obs — unified tracing, metrics, and flash-cost profiling.

One observability substrate for every layer of the stack:

* :class:`~repro.obs.tracer.Tracer` — nested spans with simulated-time
  durations and exact per-span attribution of flash IO, cache hits, CPU
  cycles and network bytes (see :mod:`repro.obs.tracer`);
* :class:`~repro.obs.metrics.MetricsRegistry` — counters/gauges/histograms
  plus pull adapters that roll every legacy ``*Stats`` dataclass into one
  snapshot (see :mod:`repro.obs.metrics`);
* exporters — JSONL span log, Chrome ``trace_event`` for Perfetto, text
  top-cost and flame reports (see :mod:`repro.obs.export`);
* :func:`~repro.obs.profile.profile` — the bench-harness entry point that
  wires all of the above around one run;
* :mod:`repro.obs.check` — artifact schema validation for CI.

Instrumented hot paths call the module-level helpers below, which are
no-ops costing one ``None`` check while no tracer is installed::

    from repro import obs

    with obs.span("tselect.probe", index=name, value=value):
        ...                      # flash reads land on this span

    obs.event("net.deliver", sender=a, receiver=b)

Install a tracer for a scope with :func:`tracing` (or let
:func:`profile` do it), e.g.::

    tracer = obs.Tracer()
    tracer.watch_token(token)
    with obs.tracing(tracer):
        db.query(query)
    print(obs.top_cost_report(tracer))
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.export import (
    aggregate_by_name,
    chrome_trace,
    flame_report,
    span_dict,
    top_cost_report,
    trace_records,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PercentileHistogram,
    global_registry,
)
from repro.obs.profile import ProfileResult, profile
from repro.obs.tracer import (
    NULL_SPAN,
    NullSpan,
    Span,
    Tracer,
    current_trace_context,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSpan",
    "NULL_SPAN",
    "PercentileHistogram",
    "ProfileResult",
    "Span",
    "Tracer",
    "aggregate_by_name",
    "chrome_trace",
    "current_span_id",
    "current_trace_context",
    "event",
    "flame_report",
    "get_tracer",
    "global_registry",
    "profile",
    "set_tracer",
    "span",
    "span_dict",
    "top_cost_report",
    "trace_records",
    "tracing",
    "write_chrome_trace",
    "write_jsonl",
]

#: The process-active tracer (None = tracing disabled, the default).
_active: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The currently installed tracer, or None when tracing is off."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` as the process-active tracer; returns it."""
    global _active
    _active = tracer
    return tracer


@contextmanager
def tracing(tracer: Tracer):
    """Scope-bound :func:`set_tracer`: restores the previous tracer."""
    global _active
    previous = _active
    _active = tracer
    try:
        yield tracer
    finally:
        _active = previous


def span(name: str, **attrs):
    """A span on the active tracer, or the shared no-op span when off.

    Head sampling hooks in here: while an *unsampled* distributed trace
    context is active (:func:`repro.obs.telemetry.activate`), spans are
    suppressed to the shared no-op — the per-trace off switch. The check
    runs only when a tracer is installed, so the disabled-overhead budget
    stays one ``None`` check. Events are never suppressed (the anomaly
    always-keep channel).
    """
    tracer = _active
    if tracer is None:
        return NULL_SPAN
    context = current_trace_context()
    if context is not None and not context.sampled:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs) -> None:
    """An instant event on the active tracer (no-op when off)."""
    tracer = _active
    if tracer is not None:
        tracer.event(name, **attrs)


def current_span_id() -> int | None:
    """Id of the innermost open span, or None (off / no open span)."""
    tracer = _active
    return tracer.current_span_id() if tracer is not None else None
